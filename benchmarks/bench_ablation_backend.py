"""Ablation — in-memory warehouse vs SQLite recursive CTE.

The paper is tied to one backend (Oracle); this reproduction keeps the
warehouse behind an interface precisely so the recursion mechanism is
swappable.  The ablation compares the two backends on the same recursive
deep-provenance closure and checks they return identical answers (the
conformance tests assert this on small inputs; here it is also measured on
benchmark-sized runs).
"""

from __future__ import annotations

import pytest

from repro.warehouse.memory import InMemoryWarehouse
from repro.warehouse.sqlite import SqliteWarehouse

from .conftest import Workload, print_table

_TIMES = {}


@pytest.fixture(scope="module")
def backends(workload: Workload):
    item = workload.items["Class4"][0]
    result = item.runs["large"][0]
    memory = InMemoryWarehouse()
    sqlite = SqliteWarehouse()
    for backend in (memory, sqlite):
        spec_id = backend.store_spec(item.generated.spec)
        backend.store_run(result.run, spec_id, run_id="backend-run")
    target = sorted(result.run.final_outputs())[0]
    yield {"memory": memory, "sqlite": sqlite}, target
    sqlite.close()


@pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
def test_backend_closure_cost(benchmark, backends, backend_name):
    stores, target = backends
    backend = stores[backend_name]

    result = benchmark(
        lambda: backend.admin_deep_provenance("backend-run", target)
    )
    assert result.num_tuples() > 0
    _TIMES[backend_name] = benchmark.stats.stats.mean * 1000
    benchmark.extra_info["tuples"] = result.num_tuples()


def test_backends_agree(benchmark, backends):
    stores, target = backends

    def compare():
        return (
            stores["memory"].admin_deep_provenance("backend-run", target),
            stores["sqlite"].admin_deep_provenance("backend-run", target),
        )

    mem_result, sql_result = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert mem_result == sql_result
    if {"memory", "sqlite"} <= set(_TIMES):
        print_table(
            "Backend ablation: recursive closure on a large run "
            "(%d tuples)" % mem_result.num_tuples(),
            ["memory ms", "sqlite ms"],
            [["%.2f" % _TIMES["memory"], "%.2f" % _TIMES["sqlite"]]],
        )
