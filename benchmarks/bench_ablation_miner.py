"""Ablation — the pattern miner recovers the generator's ground truth.

The paper's workload methodology extracts pattern statistics from
collected workflows and generates synthetic ones from those statistics.
This ablation closes the loop: workflows generated from the Table I
profiles are mined back (`repro.core.structured`), and the recovered
pattern counts are compared against the generator's ground truth — per
class, for loops and parallel regions (sequence runs fragment differently
around splits/joins, so only their module coverage is checked).  The
benchmarked operation is mining itself.
"""

from __future__ import annotations

import random

import pytest

from repro.core.structured import mine_structure
from repro.workloads.classes import WORKFLOW_CLASSES
from repro.workloads.generator import generate_workflows

from .conftest import print_table


@pytest.mark.parametrize("class_name", sorted(WORKFLOW_CLASSES))
def test_miner_recovers_generator_census(benchmark, class_name):
    workflow_class = WORKFLOW_CLASSES[class_name]
    rng = random.Random(13)
    batch = generate_workflows(workflow_class, 10, rng, target_size=25)

    sample = batch[0].spec
    report = benchmark(lambda: mine_structure(sample))
    assert report.structured

    rows = []
    for generated in batch:
        mined = mine_structure(generated.spec)
        assert mined.structured, generated.spec.name
        truth_loops = sum(1 for p in generated.patterns if p.kind == "loop")
        truth_parallel = sum(
            1 for p in generated.patterns
            if p.kind in ("parallel_process", "parallel_input",
                          "synchronization")
        )
        rows.append([
            generated.spec.name,
            truth_loops, len(mined.loops),
            truth_parallel, len(mined.parallel_regions),
        ])
        # Loop recovery is exact; parallel regions may merge when adjacent
        # (two branch joins collapsing into one region), so mined <= truth
        # with equality in the common case.
        assert len(mined.loops) == truth_loops
        assert len(mined.parallel_regions) <= truth_parallel
        assert sorted(mined.region.modules()) == sorted(generated.spec.modules)
    print_table(
        "Miner vs generator / %s" % class_name,
        ["workflow", "loops (truth)", "loops (mined)",
         "parallel (truth)", "parallel (mined)"],
        rows,
    )


def test_miner_flags_the_paper_example(benchmark):
    """The phylogenomic workflow is genuinely unstructured; the miner says
    so while still extracting its loop."""
    from repro.workloads.phylogenomic import phylogenomic_spec

    spec = phylogenomic_spec()
    report = benchmark(lambda: mine_structure(spec))
    assert not report.structured
    assert report.loops == [3]
    print_table(
        "Miner on the paper's Fig. 1 workflow",
        ["structured", "irreducible kernel", "loop bodies"],
        [[report.structured, ", ".join(report.leftover_nodes),
          report.loops]],
    )
