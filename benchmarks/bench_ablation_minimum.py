"""Ablation — RelevUserViewBuilder vs local search vs the exact minimum.

The paper proves the algorithm minimal but not *minimum* and leaves the
existence of a polynomial minimum algorithm open (Fig. 7 exhibits a gap of
one composite).  This ablation quantifies the gap and the cost along three
rungs: the polynomial builder, the local-search optimiser (which adds
composite-evacuation moves), and exhaustive branch-and-bound — on small
random specifications plus the reconstructed Fig. 7 gap instance, where
the builder is provably stuck one composite above the optimum and the
local search escapes.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.builder import build_user_view
from repro.core.minimum import gap_example, minimum_view_size
from repro.core.optimize import local_search_minimize
from repro.workloads.classes import CLASS3
from repro.workloads.generator import generate_workflow, random_relevant

from .conftest import print_table

N_INSTANCES = 10
_TIMES = {}


@pytest.fixture(scope="module")
def instances():
    """Small specs with random relevant sets, solvable exactly."""
    rng = random.Random(77)
    cases = []
    while len(cases) < N_INSTANCES:
        generated = generate_workflow(CLASS3, rng, target_size=8)
        if len(generated.spec) > 10:
            continue
        relevant = random_relevant(generated.spec, 0.3, rng)
        cases.append((generated.spec, relevant))
    return cases


def test_builder_cost(benchmark, instances):
    def build_all():
        return [build_user_view(spec, relevant).size()
                for spec, relevant in instances]

    sizes = benchmark(build_all)
    assert len(sizes) == N_INSTANCES
    _TIMES["builder_ms"] = benchmark.stats.stats.mean * 1000


def test_exact_cost(benchmark, instances):
    def solve_all():
        return [minimum_view_size(spec, relevant)
                for spec, relevant in instances]

    sizes = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    assert len(sizes) == N_INSTANCES
    _TIMES["exact_ms"] = benchmark.stats.stats.mean * 1000


def test_gap_report(benchmark, instances):
    def gaps() -> List[Dict[str, int]]:
        out = []
        for spec, relevant in list(instances) + [gap_example()]:
            built = build_user_view(spec, relevant).size()
            optimised = local_search_minimize(spec, relevant).size()
            optimum = minimum_view_size(spec, relevant)
            out.append({
                "name": spec.name,
                "modules": len(spec),
                "relevant": len(relevant),
                "builder": built,
                "local_search": optimised,
                "minimum": optimum,
                "gap": built - optimum,
            })
        return out

    results = benchmark.pedantic(gaps, rounds=1, iterations=1)
    rows = [
        [r["name"], r["modules"], r["relevant"], r["builder"],
         r["local_search"], r["minimum"], r["gap"]]
        for r in results
    ]
    print_table(
        "Minimum-view ablation (paper Fig. 7: gaps exist but are rare)",
        ["instance", "modules", "|R|", "builder", "local search",
         "minimum", "builder gap"],
        rows,
    )
    if "builder_ms" in _TIMES and "exact_ms" in _TIMES:
        print_table(
            "Cost of exactness (%d instances)" % N_INSTANCES,
            ["builder ms", "exhaustive ms"],
            [["%.2f" % _TIMES["builder_ms"], "%.2f" % _TIMES["exact_ms"]]],
        )
    # Soundness: never below the optimum; gaps stay small on these sizes.
    for r in results:
        assert r["minimum"] <= r["local_search"] <= r["builder"]
        assert r["gap"] <= 2
    # The engineered Fig. 7 instance shows a real gap that local search
    # closes.
    fig7 = next(r for r in results if r["name"] == "fig7-gap")
    assert fig7["gap"] == 1
    assert fig7["local_search"] == fig7["minimum"]
