"""Ablation — the paper's caching strategy vs naive recomputation.

Section V reports that the authors "tested various strategies" and that the
winner computes UAdmin once and projects per view, making subsequent view
switches nearly free.  This ablation quantifies that design choice in our
implementation: a sequence of queries under changing views is answered by

* the ``cached`` reasoner (materialised run, memoised composite structures
  and closures — the paper's strategy), and
* the ``uncached`` reasoner (every query rebuilds everything from the
  warehouse — the naive baseline).

Both must return identical answers; the cached strategy must win on time.
"""

from __future__ import annotations

import random

import pytest

from repro.core.builder import build_user_view
from repro.provenance.reasoner import ProvenanceReasoner
from repro.warehouse.sqlite import SqliteWarehouse
from repro.workloads.generator import random_relevant

from .conftest import Workload, print_table

_TIMES = {}


@pytest.fixture(scope="module")
def ablation_setup(workload: Workload):
    item = workload.items["Class3"][0]
    result = item.runs["medium"][0]
    warehouse = SqliteWarehouse()
    spec_id = warehouse.store_spec(item.generated.spec)
    run_id = warehouse.store_run(result.run, spec_id, run_id="ablation-run")
    rng = random.Random(5)
    views = [item.ubio] + [
        build_user_view(
            item.generated.spec,
            random_relevant(item.generated.spec, fraction, rng),
            name="UV%d" % index,
        )
        for index, fraction in enumerate((0.2, 0.4, 0.6, 0.8))
    ]
    yield warehouse, run_id, views
    warehouse.close()


def _query_sequence(reasoner, run_id, views):
    return [
        reasoner.final_output_deep(run_id, view=view).num_tuples()
        for view in views
    ]


@pytest.mark.parametrize("strategy", ["cached", "uncached"])
def test_strategy_cost(benchmark, ablation_setup, strategy):
    warehouse, run_id, views = ablation_setup
    reasoner = ProvenanceReasoner(warehouse, strategy=strategy)
    if strategy == "cached":
        # Warm once; the measured loop is the steady interactive state.
        _query_sequence(reasoner, run_id, views)

    sizes = benchmark(lambda: _query_sequence(reasoner, run_id, views))
    assert len(sizes) == len(views)
    _TIMES[strategy] = benchmark.stats.stats.mean * 1000
    benchmark.extra_info["views"] = len(views)
    stats = reasoner.stats()
    _TIMES["%s_hit_rate" % strategy] = stats["composites"]["hit_rate"]
    benchmark.extra_info["composite_hit_rate"] = stats["composites"]["hit_rate"]


def test_strategies_agree_and_cached_wins(benchmark, ablation_setup):
    warehouse, run_id, views = ablation_setup

    def compare():
        cached = ProvenanceReasoner(warehouse, strategy="cached")
        uncached = ProvenanceReasoner(warehouse, strategy="uncached")
        cached_answers = _query_sequence(cached, run_id, views)
        uncached_answers = _query_sequence(uncached, run_id, views)
        return cached_answers, uncached_answers

    cached_answers, uncached_answers = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert cached_answers == uncached_answers
    if {"cached", "uncached"} <= set(_TIMES):
        print_table(
            "Strategy ablation: %d-view switch sequence" % len(views),
            ["cached ms", "uncached ms", "speedup", "cached hit rate"],
            [["%.2f" % _TIMES["cached"], "%.2f" % _TIMES["uncached"],
              "%.1fx" % (_TIMES["uncached"] / max(_TIMES["cached"], 1e-9)),
              "%.0f%%" % (100 * _TIMES.get("cached_hit_rate", 0.0))]],
        )
        assert _TIMES["cached"] < _TIMES["uncached"]
