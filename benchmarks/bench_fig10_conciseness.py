"""Figure 10 — size of the deep-provenance query result.

For each workflow class and run kind, the deep provenance of the run's
final output is computed under the three views of the paper: UAdmin (every
module relevant), UBio (built by RelevUserViewBuilder from the emulated
biologist-picked relevant set) and UBlackBox (one composite).  The figure's
claims to reproduce:

* result sizes are ordered UBlackBox <= UBio <= UAdmin everywhere;
* UBio is a strong filter on medium/large runs (the paper reports ~20 % of
  UAdmin's tuples);
* loop-heavy Class 4 workflows benefit the most, since entire loop
  iterations hide inside composite executions (up to 90 % in the paper).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.core.composite import CompositeRun
from repro.provenance.queries import deep_provenance

from .conftest import Workload, print_table

KINDS = ["small", "medium", "large"]
VIEWS = ["UAdmin", "UBio", "UBlackBox"]

_CELLS: Dict[str, Dict[str, Dict[str, float]]] = {}


def _final_output(run):
    return sorted(run.final_outputs())[0]


def _measure(workload: Workload, kind: str) -> Dict[str, Dict[str, float]]:
    """Average tuple counts per class and view for one run kind."""
    per_class: Dict[str, Dict[str, List[int]]] = {}
    for class_name, item in workload.all_items():
        bucket = per_class.setdefault(
            class_name, {view: [] for view in VIEWS}
        )
        for result in item.runs[kind]:
            target = _final_output(result.run)
            for view_name, view in (
                ("UAdmin", item.uadmin),
                ("UBio", item.ubio),
                ("UBlackBox", item.ublackbox),
            ):
                answer = deep_provenance(CompositeRun(result.run, view), target)
                bucket[view_name].append(answer.num_tuples())
    return {
        class_name: {
            view: sum(values) / len(values) for view, values in buckets.items()
        }
        for class_name, buckets in per_class.items()
    }


@pytest.mark.parametrize("kind", KINDS)
def test_fig10_result_sizes(benchmark, workload, kind):
    averages = benchmark.pedantic(
        lambda: _measure(workload, kind), rounds=1, iterations=1
    )
    _CELLS[kind] = averages
    rows = [
        [class_name,
         "%.0f" % views["UAdmin"],
         "%.0f" % views["UBio"],
         "%.0f" % views["UBlackBox"],
         "%.0f%%" % (100 * views["UBio"] / max(views["UAdmin"], 1))]
        for class_name, views in sorted(averages.items())
    ]
    print_table(
        "Fig. 10 / %s runs: avg deep-provenance tuples per view" % kind,
        ["class", "UAdmin", "UBio", "UBlackBox", "UBio/UAdmin"],
        rows,
    )
    for class_name, views in averages.items():
        assert views["UBlackBox"] <= views["UBio"] <= views["UAdmin"], class_name


def test_fig10_ubio_filters_larger_runs(benchmark, workload):
    """On medium/large runs UBio returns a fraction of UAdmin's tuples."""

    def fractions():
        out = {}
        for kind in ("medium", "large"):
            averages = _CELLS.get(kind) or _measure(workload, kind)
            ratios = [
                views["UBio"] / max(views["UAdmin"], 1)
                for views in averages.values()
            ]
            out[kind] = sum(ratios) / len(ratios)
        return out

    ratios = benchmark.pedantic(fractions, rounds=1, iterations=1)
    print_table(
        "Fig. 10 / UBio as a fraction of UAdmin (paper: ~20 %)",
        ["medium", "large"],
        [["%.0f%%" % (100 * ratios["medium"]), "%.0f%%" % (100 * ratios["large"])]],
    )
    assert ratios["medium"] < 0.7
    assert ratios["large"] < 0.7


def test_fig10_class4_hides_loops(benchmark, workload):
    """Loop-heavy Class 4 workflows benefit the most from UBio views."""

    def reduction_by_class():
        averages = _CELLS.get("large") or _measure(workload, "large")
        return {
            class_name: 1 - views["UBio"] / max(views["UAdmin"], 1)
            for class_name, views in averages.items()
        }

    reductions = benchmark.pedantic(reduction_by_class, rounds=1, iterations=1)
    rows = [[c, "%.0f%%" % (100 * r)] for c, r in sorted(reductions.items())]
    print_table(
        "Fig. 10 / hidden fraction on large runs (paper: Class4 up to 90 %)",
        ["class", "hidden by UBio"],
        rows,
    )
    # Class 4 hides at least as much as the linear class, and a lot overall.
    assert reductions["Class4"] >= 0.5
    assert reductions["Class4"] >= reductions["Class2"] - 0.05
