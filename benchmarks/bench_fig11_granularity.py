"""Figure 11 — result size as a function of the % of relevant modules.

Random user views are built for 0-100 % relevant modules (steps of 10) and
the deep provenance of each run's final output is measured.  The figure's
claims to reproduce:

* the average result size increases monotonically (allowing sampling
  noise) with the percentage of relevant modules;
* larger run kinds sit above smaller ones at every percentage;
* for Class 4 (loop-heavy) workflows the growth is steeper than linear —
  randomly flagged loop modules expose unrolled iterations.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.builder import build_user_view
from repro.core.composite import CompositeRun
from repro.provenance.queries import deep_provenance
from repro.workloads.generator import random_relevant

from .conftest import Workload, print_table

PERCENTAGES = list(range(0, 101, 10))
TRIALS = 3

_SERIES: Dict[str, Dict[int, float]] = {}


def _series_for_kind(workload: Workload, kind: str, classes=None) -> Dict[int, float]:
    rng = random.Random(61)
    totals: Dict[int, List[int]] = {p: [] for p in PERCENTAGES}
    for class_name, item in workload.all_items():
        if classes is not None and class_name not in classes:
            continue
        spec = item.generated.spec
        for result in item.runs[kind]:
            target = sorted(result.run.final_outputs())[0]
            for percent in PERCENTAGES:
                for _trial in range(TRIALS):
                    relevant = random_relevant(spec, percent / 100.0, rng)
                    view = build_user_view(spec, relevant)
                    answer = deep_provenance(
                        CompositeRun(result.run, view), target
                    )
                    totals[percent].append(answer.num_tuples())
    return {p: sum(v) / len(v) for p, v in totals.items()}


@pytest.mark.parametrize("kind", ["small", "medium", "large"])
def test_fig11_series(benchmark, workload, kind):
    series = benchmark.pedantic(
        lambda: _series_for_kind(workload, kind), rounds=1, iterations=1
    )
    _SERIES[kind] = series
    print_table(
        "Fig. 11 / %s runs: avg tuples vs %% relevant" % kind,
        ["% relevant"] + ["%d" % p for p in PERCENTAGES],
        [["avg tuples"] + ["%.0f" % series[p] for p in PERCENTAGES]],
    )
    # Broad monotone growth: the curve's endpoints and midpoint are ordered.
    assert series[0] <= series[50] <= series[100]
    # And the 0 % (UBlackBox-like) point is a genuine filter.
    assert series[0] < series[100]


def test_fig11_kinds_nested(benchmark, workload):
    """Larger run kinds dominate smaller ones at the curve endpoints."""

    def collect():
        return {
            kind: _SERIES.get(kind) or _series_for_kind(workload, kind)
            for kind in ("small", "medium", "large")
        }

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [kind, "%.0f" % series[kind][0], "%.0f" % series[kind][100]]
        for kind in ("small", "medium", "large")
    ]
    print_table(
        "Fig. 11 / run-kind nesting (tuples at 0 %% and 100 %% relevant)",
        ["kind", "0%", "100%"],
        rows,
    )
    assert series["small"][100] < series["medium"][100] < series["large"][100]


def test_fig11_class4_superlinear(benchmark, workload):
    """Class 4's growth outpaces the linear class (loops get exposed)."""

    def growth():
        out = {}
        for classes in (("Class2",), ("Class4",)):
            series = _series_for_kind(workload, "medium", classes=set(classes))
            # Normalised slope of the upper half vs the lower half.
            lower = series[50] - series[0]
            upper = series[100] - series[50]
            out[classes[0]] = (lower, upper, series)
        return out

    measured = benchmark.pedantic(growth, rounds=1, iterations=1)
    rows = [
        [name, "%.0f" % lower, "%.0f" % upper]
        for name, (lower, upper, _s) in sorted(measured.items())
    ]
    print_table(
        "Fig. 11 / growth by half-range on medium runs "
        "(paper: Class4 more than linear)",
        ["class", "tuples gained 0-50%", "tuples gained 50-100%"],
        rows,
    )
    class4_lower, class4_upper, _ = measured["Class4"]
    # Superlinearity: the second half adds at least as much as the first.
    assert class4_upper >= 0.8 * max(class4_lower, 1)
