"""Ingestion throughput: serial loader vs. the batched pipeline.

Three ways of ingesting the same workload into a file-backed SQLite
warehouse:

``serial``
    the reference :func:`~repro.warehouse.loader.load_dataset` loop — one
    run at a time, per-run lint, per-run transaction;
``batched``
    :func:`~repro.warehouse.pipeline.ingest_dataset` with ``jobs=0`` — the
    same per-run prepare work inline, but rows shaped exactly once, whole
    batches gated and committed in single ``executemany`` transactions,
    and the ``bulk=True`` connection profile (``synchronous = OFF``,
    deferred ``io`` secondary indexes);
``parallel``
    the same plus a 4-worker thread pool for the prepare stage, which
    overlaps row shaping/linting of batch *k+1* with the commit of
    batch *k*.

The timed path ingests with ``index=False`` — the loader default.
Closure materialisation is a separate, explicitly requested phase
(``zoom index build``); its cost is dominated by the lineage-row insert
floor, which both ingestion paths share, so timing it here would only
dilute the comparison being made.

Tier selection honours ``ZOOM_BENCH_INGEST_TIERS`` (comma-separated
subset of ``small,medium,large``) so CI smoke runs can stay cheap.  The
final test writes ``BENCH_ingest_time.json`` at the repository root and
asserts the pipeline claim: batched+parallel ingestion is at least twice
as fast as the serial reference on the large workload.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro.warehouse.loader import load_dataset
from repro.warehouse.pipeline import ingest_dataset
from repro.warehouse.sqlite import SqliteWarehouse
from repro.workloads.classes import RUN_CLASSES, WORKFLOW_CLASSES
from repro.workloads.generator import generate_workflow
from repro.workloads.runs import generate_run

from .conftest import print_table

#: (number of specs, runs per spec, target spec size) per tier.  Many
#: modest runs over mid-size specs — the regime a warehouse bulk-load
#: actually sees, and the one where per-run overheads dominate.
TIERS = {
    "small": (2, 6, 12),
    "medium": (3, 12, 15),
    "large": (4, 40, 12),
}

MODES = ["serial", "batched", "parallel"]

_SELECTED = [
    tier for tier in os.environ.get(
        "ZOOM_BENCH_INGEST_TIERS", "small,medium,large"
    ).split(",") if tier
]

_TIMES = {}
_RUN_COUNTS = {}

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest_time.json"


def _workload(tier: str):
    n_specs, n_runs, size = TIERS[tier]
    rng = random.Random(20080407)
    classes = sorted(WORKFLOW_CLASSES)
    items = []
    for i in range(n_specs):
        generated = generate_workflow(
            WORKFLOW_CLASSES[classes[i % len(classes)]], rng,
            target_size=size, name="%s-wf%d" % (tier, i),
        )
        runs = [
            generate_run(generated.spec, RUN_CLASSES["small"], rng,
                         run_id="r%d" % n)
            for n in range(n_runs)
        ]
        items.append((generated.spec, runs))
    return items


@pytest.fixture(scope="module")
def workloads():
    return {tier: _workload(tier) for tier in _SELECTED}


@pytest.mark.parametrize("tier", [t for t in TIERS if t in _SELECTED])
@pytest.mark.parametrize("mode", MODES)
def test_ingest_time(benchmark, workloads, tmp_path_factory, mode, tier):
    items = workloads[tier]
    n_runs = sum(len(runs) for _spec, runs in items)
    root = tmp_path_factory.mktemp("ingest-%s-%s" % (tier, mode))
    fresh = {"count": 0}

    def setup():
        fresh["count"] += 1
        path = str(root / ("round%d.sqlite" % fresh["count"]))
        bulk = mode != "serial"
        return (SqliteWarehouse(path, bulk=bulk),), {}

    def ingest(warehouse):
        if mode == "serial":
            load_dataset(warehouse, items)
        elif mode == "batched":
            ingest_dataset(warehouse, items, jobs=0, batch_size=32)
        else:
            ingest_dataset(warehouse, items, jobs=4, batch_size=32)
        warehouse.close()

    benchmark.pedantic(ingest, setup=setup, rounds=3, warmup_rounds=1)
    total_ms = benchmark.stats.stats.min * 1000
    _TIMES[(tier, mode)] = total_ms
    _RUN_COUNTS[tier] = n_runs
    benchmark.extra_info["runs"] = n_runs
    benchmark.extra_info["ms_per_run"] = total_ms / n_runs
    print_table(
        "Ingestion / %s workload / %s" % (tier, mode),
        ["runs", "total ms", "ms/run"],
        [[n_runs, "%.1f" % total_ms, "%.2f" % (total_ms / n_runs)]],
    )


def test_ingest_time_report(benchmark):
    """Emit BENCH_ingest_time.json; the pipeline must win 2x on large."""

    def snapshot():
        return dict(_TIMES)

    times = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    expected = [(tier, mode) for tier in _SELECTED for mode in MODES]
    if any(key not in times for key in expected):
        pytest.skip("needs the full (tier x mode) matrix in one session")
    payload = {
        tier: dict(
            {"runs": _RUN_COUNTS[tier]},
            **{mode: round(times[(tier, mode)], 2) for mode in MODES},
        )
        for tier in _SELECTED
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print_table(
        "Ingestion, total ms (min of 3 rounds)",
        ["tier", "runs"] + MODES,
        [[tier, payload[tier]["runs"]]
         + ["%.1f" % payload[tier][mode] for mode in MODES]
         for tier in _SELECTED],
    )
    if "large" in _SELECTED:
        large = payload["large"]
        assert large["parallel"] * 2 <= large["serial"], large
        assert large["batched"] < large["serial"], large
