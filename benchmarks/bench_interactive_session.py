"""Section V-B "Interactive capability of ZOOM*UserViews" — session level.

The paper measures the cost of a user *evolving* their view: flagging more
modules (finer provenance) and immediately re-reading the answer.  The
reasoner-level half of that experiment lives in ``bench_view_switch``;
this benchmark drives the full interactive stack — ``Session.flag`` (which
re-runs RelevUserViewBuilder), then the deep-provenance query under the
new view — across a granularity ladder, reporting the per-step latency a
user would feel and the growing answer size (the Fig. 11 effect, live).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.warehouse.sqlite import SqliteWarehouse
from repro.zoom.session import Session

from .conftest import Workload, print_table


@pytest.fixture(scope="module")
def session_env(workload: Workload):
    item = workload.items["Class4"][0]
    result = item.runs["medium"][0]
    warehouse = SqliteWarehouse()
    spec_id = warehouse.store_spec(item.generated.spec)
    run_id = warehouse.store_run(result.run, spec_id, run_id="interactive")
    modules = sorted(item.generated.spec.modules)
    # The flagging ladder: priority modules first, then the rest.
    priority = sorted(item.generated.suggested_relevant)
    ladder = priority + [m for m in modules if m not in priority]
    yield warehouse, spec_id, run_id, ladder
    warehouse.close()


def test_interactive_flag_and_query(benchmark, session_env):
    """One flag-then-query interaction at growing granularity."""
    warehouse, spec_id, run_id, ladder = session_env
    session = Session(warehouse, spec_id, user="interactive")
    position = 0

    def interact():
        nonlocal position
        module = ladder[position % len(ladder)]
        position += 1
        if module in session.relevant:
            session.unflag(module)
        else:
            session.flag(module)
        return session.final_output_provenance(run_id).num_tuples()

    tuples = benchmark(interact)
    assert tuples >= 0
    benchmark.extra_info["modules"] = len(ladder)


def test_granularity_ladder(benchmark, session_env):
    """Walk the whole ladder once; report size and growth per rung."""
    warehouse, spec_id, run_id, ladder = session_env

    def walk() -> List[Dict[str, int]]:
        session = Session(warehouse, spec_id, user="ladder")
        rungs = []
        for count in range(0, len(ladder) + 1, max(1, len(ladder) // 6)):
            session.set_relevant(ladder[:count])
            answer = session.final_output_provenance(run_id)
            rungs.append({
                "flagged": count,
                "view_size": session.view.size(),
                "tuples": answer.num_tuples(),
            })
        return rungs

    rungs = benchmark.pedantic(walk, rounds=1, iterations=1)
    print_table(
        "Interactive granularity ladder (medium Class4 run)",
        ["flagged", "view size", "answer tuples"],
        [[r["flagged"], r["view_size"], r["tuples"]] for r in rungs],
    )
    # The answer grows as granularity increases (endpoints ordering).
    assert rungs[0]["tuples"] <= rungs[-1]["tuples"]
    # View size tracks the number of flagged modules within small slack.
    for rung in rungs[1:]:
        assert rung["view_size"] >= max(1, rung["flagged"])


def test_undo_is_free(benchmark, session_env):
    """Stepping back to a previous granularity costs no rebuild."""
    warehouse, spec_id, run_id, ladder = session_env
    session = Session(warehouse, spec_id, user="undoer")
    session.set_relevant(ladder[:3])
    session.final_output_provenance(run_id)
    session.flag(ladder[3])
    session.final_output_provenance(run_id)

    def undo_redo():
        session.undo()
        answer = session.final_output_provenance(run_id)
        session.flag(ladder[3])
        session.final_output_provenance(run_id)
        return answer.num_tuples()

    tuples = benchmark(undo_redo)
    assert tuples > 0
