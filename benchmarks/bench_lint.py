"""provlint cost — lint wall-time against spec size and run volume.

The lint pass (docs/linting.md) is a constant number of linear graph
traversals plus two reachability sweeps per spec, so its cost should grow
roughly linearly with specification size and with event-log length.  This
benchmark times ``lint_spec`` on generated specifications from 50 to 1000
modules and ``lint_log`` on the simulated runs of a mid-size spec, then
reprints the sweep as one table.  A super-linear regression here means a
rule started re-walking the graph per node.
"""

from __future__ import annotations

import random

import pytest

from repro.lint import Linter
from repro.run.executor import ExecutionParams, simulate
from repro.workloads.classes import CLASS2
from repro.workloads.generator import generate_workflow

from .conftest import print_table

SIZES = [50, 100, 250, 500, 1000]

_RESULTS = {}


def _linter() -> Linter:
    # Metrics off: the benchmark times the rules, not counter upkeep.
    return Linter(emit_metrics=False)


@pytest.mark.parametrize("size", SIZES)
def test_lint_spec_scaling(benchmark, size):
    """Time one full spec lint at each specification size."""
    rng = random.Random(size)
    generated = generate_workflow(CLASS2, rng, target_size=size)
    spec = generated.spec
    linter = _linter()

    report = benchmark(lambda: linter.lint_spec(spec))

    assert report.ok()  # generated specs are clean (loops are info-only)
    mean_ms = benchmark.stats.stats.mean * 1000
    _RESULTS[size] = (len(spec), len(report.findings), mean_ms)
    benchmark.extra_info["modules"] = len(spec)
    print_table(
        "Lint spec @ %d nodes" % size,
        ["modules", "findings", "mean ms"],
        [[len(spec), len(report.findings), "%.2f" % mean_ms]],
    )
    # Same generous bound as the builder benchmark: interactive even on
    # slow machines, tight enough to catch a complexity regression.
    assert mean_ms < 2000


def test_lint_log_volume(benchmark):
    """Time an event-log lint against a loop-heavy simulated run."""
    rng = random.Random(7)
    generated = generate_workflow(CLASS2, rng, target_size=100)
    spec = generated.spec
    result = simulate(
        spec,
        params=ExecutionParams(loop_iterations_range=(3, 5)),
        rng=random.Random(8),
        run_id="lint-bench",
    )
    log = result.log
    linter = _linter()

    report = benchmark(lambda: linter.lint_log(log, spec=spec))

    assert report.ok()  # orphan-write warnings are fine; no errors
    mean_ms = benchmark.stats.stats.mean * 1000
    print_table(
        "Lint log (%d events)" % len(log),
        ["events", "steps", "findings", "mean ms"],
        [[len(log), len(result.run.steps()), len(report.findings),
          "%.2f" % mean_ms]],
    )
    assert mean_ms < 2000


def test_lint_summary(benchmark):
    """Aggregate view of the spec sweep (reprints all measured sizes)."""

    def noop():
        return sorted(_RESULTS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    rows = [
        [size, _RESULTS[size][0], _RESULTS[size][1], "%.2f" % _RESULTS[size][2]]
        for size in sorted(_RESULTS)
    ]
    print_table(
        "Lint scalability summary (expect ~linear growth in spec size)",
        ["target size", "modules", "findings", "mean ms"],
        rows,
    )
