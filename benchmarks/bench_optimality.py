"""Section V-B "Optimality" — composites created per relevant module.

The paper increases the percentage of relevant modules and counts the
composite modules created, observing that "adding one relevant class in a
workflow creates only one new composite class" — i.e. the algorithm rarely
needs extra non-relevant composites.  This benchmark sweeps 0-100 % in
steps of 10 with several random draws each (the paper uses 10) and reports
the average view size against the lower bound |R|.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.builder import build_user_view
from repro.workloads.classes import CLASS2, CLASS3
from repro.workloads.generator import generate_workflow, random_relevant

from .conftest import print_table

PERCENTAGES = list(range(0, 101, 10))
TRIALS = 5


def _sweep(spec, rng) -> List[Dict[str, float]]:
    rows = []
    for percent in PERCENTAGES:
        sizes = []
        extras = []
        for _trial in range(TRIALS):
            relevant = random_relevant(spec, percent / 100.0, rng)
            view = build_user_view(spec, relevant)
            sizes.append(view.size())
            extras.append(view.size() - len(relevant))
        rows.append({
            "percent": percent,
            "avg_size": sum(sizes) / len(sizes),
            "avg_extra": sum(extras) / len(extras),
        })
    return rows


@pytest.mark.parametrize("workflow_class", [CLASS2, CLASS3],
                         ids=lambda c: c.name)
def test_optimality_sweep(benchmark, workflow_class):
    rng = random.Random(17)
    generated = generate_workflow(workflow_class, rng, target_size=30)
    spec = generated.spec

    rows = benchmark.pedantic(
        lambda: _sweep(spec, random.Random(99)), rounds=1, iterations=1
    )

    table = [
        [row["percent"],
         round(row["percent"] / 100.0 * len(spec)),
         "%.1f" % row["avg_size"],
         "%.1f" % row["avg_extra"]]
        for row in rows
    ]
    print_table(
        "Optimality / %s (%d modules): view size vs relevant count"
        % (workflow_class.name, len(spec)),
        ["% relevant", "|R|", "avg view size", "avg non-relevant composites"],
        table,
    )
    # The paper's observation: the number of *extra* (non-relevant)
    # composites stays small and does not grow with |R| — adding a
    # relevant module adds about one composite.
    for row in rows:
        if row["percent"] >= 50:
            assert row["avg_extra"] <= 4
    # View size grows with the relevant percentage overall.
    assert rows[-1]["avg_size"] >= rows[0]["avg_size"]
    # At 100% relevant the view is exactly UAdmin: no extra composites.
    assert rows[-1]["avg_extra"] == 0
