"""Section V-B "Query response time" — deep provenance per run kind.

The paper reports average response times of 23 ms (small runs), 213 ms
(medium) and 1.1 s (large) for the most expensive query — the deep
provenance of the run's final output — with every query under 30 s, using
the compute-UAdmin-then-project strategy over the Oracle warehouse.

Here the same query runs against the SQLite warehouse (recursive CTE) via
the reasoner.  Absolute constants differ from the paper's hardware; the
reproduced shape is the roughly order-of-magnitude growth from small to
medium to large and the absolute numbers staying interactive.
"""

from __future__ import annotations

import pytest

from repro.provenance.reasoner import ProvenanceReasoner
from repro.warehouse.sqlite import SqliteWarehouse

from .conftest import Workload, print_table

KINDS = ["small", "medium", "large"]

_TIMES = {}


@pytest.fixture(scope="module")
def loaded_sqlite(workload: Workload):
    """A SQLite warehouse holding one run of each kind per workflow."""
    warehouse = SqliteWarehouse()
    handles = {kind: [] for kind in KINDS}
    for class_name, item in workload.all_items():
        spec_id = warehouse.store_spec(item.generated.spec)
        for kind in KINDS:
            result = item.runs[kind][0]
            run_id = warehouse.store_run(result.run, spec_id,
                                         run_id=result.run.run_id)
            handles[kind].append((run_id, item.ubio))
    yield warehouse, handles
    warehouse.close()


@pytest.mark.parametrize("kind", KINDS)
def test_query_time_per_kind(benchmark, loaded_sqlite, kind):
    """Deep provenance of the final output, cold reasoner each round."""
    warehouse, handles = loaded_sqlite
    runs = handles[kind]

    def query_all():
        reasoner = ProvenanceReasoner(warehouse)  # cold caches
        total_tuples = 0
        for run_id, ubio in runs:
            total_tuples += reasoner.final_output_deep(run_id, view=ubio).num_tuples()
        return total_tuples

    total = benchmark(query_all)
    assert total >= 0
    per_query_ms = benchmark.stats.stats.mean * 1000 / len(runs)
    _TIMES[kind] = per_query_ms
    benchmark.extra_info["per_query_ms"] = per_query_ms
    print_table(
        "Query time / %s runs" % kind,
        ["runs", "mean ms/query"],
        [[len(runs), "%.2f" % per_query_ms]],
    )
    # The paper's ceiling: even the largest queries stay under 30 s.
    assert per_query_ms < 30_000


def test_query_time_growth(benchmark):
    """Times grow with run kind (paper: 23 ms -> 213 ms -> 1.1 s)."""

    def snapshot():
        return dict(_TIMES)

    times = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    if len(times) == len(KINDS):
        print_table(
            "Query time growth (paper: ~10x then ~5x)",
            KINDS,
            [["%.2f ms" % times[k] for k in KINDS]],
        )
        assert times["small"] <= times["medium"] <= times["large"]
