"""Section V-B "Query response time" — deep provenance per run kind.

The paper reports average response times of 23 ms (small runs), 213 ms
(medium) and 1.1 s (large) for the most expensive query — the deep
provenance of the run's final output — with every query under 30 s, using
the compute-UAdmin-then-project strategy over the Oracle warehouse.

Here the same query runs against the SQLite warehouse under four
reasoner strategies:

``cached`` / ``uncached``
    the recursive-CTE closure (the paper's query plan), with and without
    the reasoner's memoisation — the reasoner is re-created *cold* every
    round, so ``cached`` pays the closure too and the two mostly tie;
``indexed``
    the materialised lineage-closure index
    (:mod:`repro.provenance.index`): the closure was paid once at
    ingestion time, each query is a single range scan;
``labeled``
    the compact reachability labels (:mod:`repro.provenance.labels`):
    one interval + remainder row per *step* instead of one closure row
    per (data, ancestor, input) triple — O(V) storage against the
    closure's worst-case quadratic blow-up, at the price of a short
    label traversal per query.

Three warehouses hold identical runs: the closure index is built only on
the second and the labels only on the third, because the warehouse
transparently serves ``admin_deep_provenance`` from an existing index —
benchmarking ``cached`` against an indexed warehouse would measure the
index twice, not the CTE.

The final test writes ``BENCH_query_time.json`` at the repository root:
``times_ms`` (mean ms/query per kind and strategy), ``build_ms`` (total
index build time per kind and index kind) and ``storage_bytes`` (closure
vs label rows, summed text lengths).  It asserts the amortisation claim
(on medium and large runs an indexed query is at least twice as fast as
a cold cached one) and the compactness claim (on large runs the labels
take at least five times less space than the closure while answering
within twice the indexed lookup time).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.provenance.reasoner import ProvenanceReasoner
from repro.warehouse.sqlite import SqliteWarehouse

from .conftest import Workload, print_table

KINDS = ["small", "medium", "large"]
STRATEGIES = ["cached", "uncached", "indexed", "labeled"]

#: Index kinds whose build time and storage footprint the report compares.
INDEX_KINDS = ["closure", "labeled"]

_TIMES = {}
_BUILD_MS = {}
_STORAGE = {}

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_query_time.json"


def _load(workload: Workload, index_kind=None):
    """A SQLite warehouse holding one run of each kind per workflow.

    ``index_kind`` is ``None`` (no index), ``"closure"`` or ``"labeled"``;
    when an index is built, the per-run-kind build time is accumulated.
    """
    warehouse = SqliteWarehouse()
    handles = {kind: [] for kind in KINDS}
    build_ms = {kind: 0.0 for kind in KINDS}
    for _class_name, item in workload.all_items():
        spec_id = warehouse.store_spec(item.generated.spec)
        for kind in KINDS:
            result = item.runs[kind][0]
            run_id = warehouse.store_run(result.run, spec_id,
                                         run_id=result.run.run_id)
            if index_kind == "closure":
                start = time.perf_counter()
                warehouse.build_lineage_index(run_id)
                build_ms[kind] += (time.perf_counter() - start) * 1000
            elif index_kind == "labeled":
                start = time.perf_counter()
                warehouse.build_label_index(run_id)
                build_ms[kind] += (time.perf_counter() - start) * 1000
            handles[kind].append(run_id)
    return warehouse, handles, build_ms


def _closure_bytes(warehouse, run_ids):
    """Total text bytes of the materialised closure rows of ``run_ids``."""
    total = 0
    for run_id in run_ids:
        for row in warehouse.lineage_rows_raw(run_id):
            total += len(run_id) + sum(len(column) for column in row)
    return total


def _label_bytes(warehouse, run_ids):
    """Total text bytes of the reachability-label rows of ``run_ids``."""
    total = 0
    for run_id in run_ids:
        for step_id, pre, post, parent, rest in warehouse.label_rows_raw(run_id):
            total += (len(run_id) + len(step_id) + len(str(pre))
                      + len(str(post)) + len(parent) + len(rest))
    return total


@pytest.fixture(scope="module")
def plain_sqlite(workload: Workload):
    """Un-indexed warehouse: queries recurse (cached/uncached strategies)."""
    warehouse, handles, _build_ms = _load(workload)
    yield warehouse, handles
    warehouse.close()


@pytest.fixture(scope="module")
def indexed_sqlite(workload: Workload):
    """Warehouse with every run's lineage closure prebuilt at ingestion."""
    warehouse, handles, build_ms = _load(workload, index_kind="closure")
    for kind in KINDS:
        _BUILD_MS.setdefault(kind, {})["closure"] = build_ms[kind]
        _STORAGE.setdefault(kind, {})["closure"] = _closure_bytes(
            warehouse, handles[kind]
        )
    yield warehouse, handles
    warehouse.close()


@pytest.fixture(scope="module")
def labeled_sqlite(workload: Workload):
    """Warehouse with every run's reachability labels prebuilt."""
    warehouse, handles, build_ms = _load(workload, index_kind="labeled")
    for kind in KINDS:
        _BUILD_MS.setdefault(kind, {})["labeled"] = build_ms[kind]
        _STORAGE.setdefault(kind, {})["labeled"] = _label_bytes(
            warehouse, handles[kind]
        )
    yield warehouse, handles
    warehouse.close()


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_query_time_per_kind(benchmark, plain_sqlite, indexed_sqlite,
                             labeled_sqlite, strategy, kind):
    """Deep provenance of the final output, cold reasoner each round."""
    warehouse, handles = {
        "indexed": indexed_sqlite,
        "labeled": labeled_sqlite,
    }.get(strategy, plain_sqlite)
    runs = handles[kind]

    def query_all():
        reasoner = ProvenanceReasoner(warehouse, strategy=strategy)  # cold
        total_tuples = 0
        for run_id in runs:
            total_tuples += reasoner.final_output_deep(run_id).num_tuples()
        return total_tuples

    total = benchmark(query_all)
    assert total >= 0
    per_query_ms = benchmark.stats.stats.mean * 1000 / len(runs)
    _TIMES[(kind, strategy)] = per_query_ms
    benchmark.extra_info["per_query_ms"] = per_query_ms
    print_table(
        "Query time / %s runs / %s strategy" % (kind, strategy),
        ["runs", "mean ms/query"],
        [[len(runs), "%.2f" % per_query_ms]],
    )
    # The paper's ceiling: even the largest queries stay under 30 s.
    assert per_query_ms < 30_000


def test_query_time_report(benchmark, indexed_sqlite, labeled_sqlite):
    """Emit BENCH_query_time.json; the index must amortise on big runs."""

    def snapshot():
        return dict(_TIMES)

    times = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    if len(times) < len(KINDS) * len(STRATEGIES):
        pytest.skip("needs the full (kind x strategy) matrix in one session")
    payload = {
        "times_ms": {
            kind: {
                strategy: round(times[(kind, strategy)], 3)
                for strategy in STRATEGIES
            }
            for kind in KINDS
        },
        "build_ms": {
            kind: {
                index_kind: round(_BUILD_MS[kind][index_kind], 3)
                for index_kind in INDEX_KINDS
            }
            for kind in KINDS
        },
        "storage_bytes": {
            kind: {
                index_kind: _STORAGE[kind][index_kind]
                for index_kind in INDEX_KINDS
            }
            for kind in KINDS
        },
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    times_ms = payload["times_ms"]
    print_table(
        "Query time, mean ms/query (paper: 23 ms -> 213 ms -> 1.1 s)",
        ["kind"] + STRATEGIES,
        [[kind] + ["%.2f" % times_ms[kind][s] for s in STRATEGIES]
         for kind in KINDS],
    )
    print_table(
        "Index build time and storage (closure vs labels)",
        ["kind", "closure ms", "labeled ms", "closure B", "labeled B"],
        [[kind,
          "%.1f" % payload["build_ms"][kind]["closure"],
          "%.1f" % payload["build_ms"][kind]["labeled"],
          payload["storage_bytes"][kind]["closure"],
          payload["storage_bytes"][kind]["labeled"]]
         for kind in KINDS],
    )
    # Times grow with run kind under the recursive strategies.
    assert times_ms["small"]["cached"] <= times_ms["medium"]["cached"] \
        <= times_ms["large"]["cached"]
    # The amortisation claim: once the ingestion-time closure is paid, a
    # medium/large query from the index beats the cold recursive path 2x+.
    for kind in ("medium", "large"):
        assert times_ms[kind]["indexed"] * 2 <= times_ms[kind]["cached"], (
            kind, times_ms[kind],
        )
    # The compactness claim: on the deepest runs the labels take at least
    # five times less space than the closure, and answer within twice the
    # indexed lookup time.
    storage = payload["storage_bytes"]["large"]
    assert storage["labeled"] * 5 <= storage["closure"], storage
    assert times_ms["large"]["labeled"] <= times_ms["large"]["indexed"] * 2, (
        times_ms["large"],
    )
