"""Section V-B "Query response time" — deep provenance per run kind.

The paper reports average response times of 23 ms (small runs), 213 ms
(medium) and 1.1 s (large) for the most expensive query — the deep
provenance of the run's final output — with every query under 30 s, using
the compute-UAdmin-then-project strategy over the Oracle warehouse.

Here the same query runs against the SQLite warehouse under all three
reasoner strategies:

``cached`` / ``uncached``
    the recursive-CTE closure (the paper's query plan), with and without
    the reasoner's memoisation — the reasoner is re-created *cold* every
    round, so ``cached`` pays the closure too and the two mostly tie;
``indexed``
    the materialised lineage-closure index
    (:mod:`repro.provenance.index`): the closure was paid once at
    ingestion time, each query is a single range scan.

Two warehouses hold identical runs: the index is built only on the second,
because the warehouse transparently serves ``admin_deep_provenance`` from
an existing index — benchmarking ``cached`` against an indexed warehouse
would measure the index twice, not the CTE.

The final test writes ``BENCH_query_time.json`` (mean ms/query per kind
and strategy) at the repository root and asserts the amortisation claim:
on medium and large runs an indexed query is at least twice as fast as a
cold cached one.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.provenance.reasoner import ProvenanceReasoner
from repro.warehouse.sqlite import SqliteWarehouse

from .conftest import Workload, print_table

KINDS = ["small", "medium", "large"]
STRATEGIES = ["cached", "uncached", "indexed"]

_TIMES = {}

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_query_time.json"


def _load(workload: Workload, index: bool):
    """A SQLite warehouse holding one run of each kind per workflow."""
    warehouse = SqliteWarehouse()
    handles = {kind: [] for kind in KINDS}
    for _class_name, item in workload.all_items():
        spec_id = warehouse.store_spec(item.generated.spec)
        for kind in KINDS:
            result = item.runs[kind][0]
            run_id = warehouse.store_run(result.run, spec_id,
                                         run_id=result.run.run_id)
            if index:
                warehouse.build_lineage_index(run_id)
            handles[kind].append(run_id)
    return warehouse, handles


@pytest.fixture(scope="module")
def plain_sqlite(workload: Workload):
    """Un-indexed warehouse: queries recurse (cached/uncached strategies)."""
    warehouse, handles = _load(workload, index=False)
    yield warehouse, handles
    warehouse.close()


@pytest.fixture(scope="module")
def indexed_sqlite(workload: Workload):
    """Warehouse with every run's lineage index prebuilt at ingestion."""
    warehouse, handles = _load(workload, index=True)
    yield warehouse, handles
    warehouse.close()


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_query_time_per_kind(benchmark, plain_sqlite, indexed_sqlite,
                             strategy, kind):
    """Deep provenance of the final output, cold reasoner each round."""
    warehouse, handles = (
        indexed_sqlite if strategy == "indexed" else plain_sqlite
    )
    runs = handles[kind]

    def query_all():
        reasoner = ProvenanceReasoner(warehouse, strategy=strategy)  # cold
        total_tuples = 0
        for run_id in runs:
            total_tuples += reasoner.final_output_deep(run_id).num_tuples()
        return total_tuples

    total = benchmark(query_all)
    assert total >= 0
    per_query_ms = benchmark.stats.stats.mean * 1000 / len(runs)
    _TIMES[(kind, strategy)] = per_query_ms
    benchmark.extra_info["per_query_ms"] = per_query_ms
    print_table(
        "Query time / %s runs / %s strategy" % (kind, strategy),
        ["runs", "mean ms/query"],
        [[len(runs), "%.2f" % per_query_ms]],
    )
    # The paper's ceiling: even the largest queries stay under 30 s.
    assert per_query_ms < 30_000


def test_query_time_report(benchmark):
    """Emit BENCH_query_time.json; the index must amortise on big runs."""

    def snapshot():
        return dict(_TIMES)

    times = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    if len(times) < len(KINDS) * len(STRATEGIES):
        pytest.skip("needs the full (kind x strategy) matrix in one session")
    payload = {
        kind: {
            strategy: round(times[(kind, strategy)], 3)
            for strategy in STRATEGIES
        }
        for kind in KINDS
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print_table(
        "Query time, mean ms/query (paper: 23 ms -> 213 ms -> 1.1 s)",
        ["kind"] + STRATEGIES,
        [[kind] + ["%.2f" % payload[kind][s] for s in STRATEGIES]
         for kind in KINDS],
    )
    # Times grow with run kind under the recursive strategies.
    assert payload["small"]["cached"] <= payload["medium"]["cached"] \
        <= payload["large"]["cached"]
    # The amortisation claim: once the ingestion-time closure is paid, a
    # medium/large query from the index beats the cold recursive path 2x+.
    for kind in ("medium", "large"):
        assert payload[kind]["indexed"] * 2 <= payload[kind]["cached"], (
            kind, payload[kind],
        )
