"""Section V-B "Scalability" — RelevUserViewBuilder on growing specs.

The paper runs the algorithm on 1000 increasingly large randomised
specifications (50-1000 nodes) and reports every execution under 80 ms.
This benchmark times the builder at several sizes across that range (the
paper's hardware constant differs; the claim to reproduce is that the
per-execution cost stays in the tens of milliseconds and grows
polynomially, not explosively).
"""

from __future__ import annotations

import random

import pytest

from repro.core.builder import build_user_view
from repro.workloads.classes import CLASS2
from repro.workloads.generator import generate_workflow, random_relevant

from .conftest import print_table

SIZES = [50, 100, 250, 500, 1000]

_RESULTS = {}


@pytest.mark.parametrize("size", SIZES)
def test_scalability(benchmark, size):
    """Time one build at each specification size."""
    rng = random.Random(size)
    generated = generate_workflow(CLASS2, rng, target_size=size)
    relevant = random_relevant(generated.spec, 0.2, rng)

    view = benchmark(lambda: build_user_view(generated.spec, relevant))

    assert view.size() >= max(1, len(relevant))
    mean_ms = benchmark.stats.stats.mean * 1000
    _RESULTS[size] = (len(generated.spec), mean_ms)
    benchmark.extra_info["modules"] = len(generated.spec)
    print_table(
        "Scalability @ %d nodes" % size,
        ["modules", "relevant", "view size", "mean ms"],
        [[len(generated.spec), len(relevant), view.size(), "%.2f" % mean_ms]],
    )
    # The paper's bound: each execution under 80 ms.  Allow generous slack
    # for slower machines while still catching complexity regressions.
    assert mean_ms < 2000


def test_scalability_summary(benchmark):
    """Aggregate view of the sweep (reprints all measured sizes)."""

    def noop():
        return sorted(_RESULTS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    rows = [
        [size, _RESULTS[size][0], "%.2f" % _RESULTS[size][1]]
        for size in sorted(_RESULTS)
    ]
    print_table(
        "Scalability summary (paper: < 80 ms per execution up to 1000 nodes)",
        ["target size", "modules", "mean ms"],
        rows,
    )
