"""Concurrent serving benchmark — ``BENCH_serve.json``.

The paper's evaluation is single-user; this benchmark asks what the same
warehouse sustains when served concurrently: a :class:`repro.serve.QueryService`
with >= 4 worker threads answers a mixed load (deep provenance of the final
output under UAdmin and UBio, reverse provenance, zoom across three views)
pushed by twice as many client threads.  The same request sequence runs
twice — cold (empty result cache) and hot (every answer cached) — and the
payload records p50/p95/p99 latency and sustained QPS for both phases.

Assertions:

* zero ``sqlite3.ProgrammingError`` — the per-thread read-connection pool
  really does end SQLite thread-affinity crashes;
* zero other errors (no deadlocks: every request completes);
* hot phase at least 5x faster than cold on mean latency — the per-view
  result cache claim.

Run standalone for CI (``python benchmarks/bench_serve.py --smoke``) or
under pytest with the other benchmarks; both write ``BENCH_serve.json`` at
the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.serve.bench import run_serving_benchmark, smoke_params  # noqa: E402

_JSON_PATH = _REPO_ROOT / "BENCH_serve.json"

#: The cached-view hit path must beat the cold path by at least this much.
MIN_HOT_SPEEDUP = 5.0

#: The full (non-smoke) workload: every run kind, 4 workers, 8 clients.
FULL_PARAMS = dict(
    kinds=("small", "medium", "large"),
    requests=300,
    workers=4,
    client_threads=8,
    workflows_per_class=1,
)


def _write(payload: dict, out: Path) -> None:
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _print_summary(payload: dict) -> None:
    print("\n== Concurrent serving (%d workers, %d clients) =="
          % (payload["workers"], payload["client_threads"]))
    header = "  %-6s %9s %9s %9s %9s %10s" % (
        "phase", "p50 ms", "p95 ms", "p99 ms", "mean ms", "QPS")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name in ("cold", "hot"):
        phase = payload["phases"][name]
        print("  %-6s %9.3f %9.3f %9.3f %9.3f %10.1f"
              % (name, phase["p50_ms"], phase["p95_ms"], phase["p99_ms"],
                 phase["mean_ms"], phase["qps"]))
    print("  hot speedup: %.2fx   programming errors: %d   rejected retries: %d"
          % (payload["hot_speedup"], payload["programming_errors"],
             payload["phases"]["cold"]["admission_retries"]
             + payload["phases"]["hot"]["admission_retries"]))


def _check(payload: dict, smoke: bool) -> None:
    assert payload["programming_errors"] == 0, (
        "cross-thread sqlite access: %s" % payload["error_samples"]
    )
    assert payload["errors"] == 0, (
        "serving errors (deadlock/timeout?): %s" % payload["error_samples"]
    )
    cold = payload["phases"]["cold"]
    hot = payload["phases"]["hot"]
    assert cold["completed"] == cold["requests"], "cold phase dropped requests"
    assert hot["completed"] == hot["requests"], "hot phase dropped requests"
    if not smoke:
        assert payload["hot_speedup"] >= MIN_HOT_SPEEDUP, (
            "cached-view hit path only %.2fx faster than cold (need >= %.1fx)"
            % (payload["hot_speedup"], MIN_HOT_SPEEDUP)
        )


def test_bench_serve(record_property=None) -> None:
    """Pytest entry point: full workload, writes BENCH_serve.json."""
    payload = run_serving_benchmark(**FULL_PARAMS)
    _write(payload, _JSON_PATH)
    _print_summary(payload)
    _check(payload, smoke=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced CI workload (small runs only)")
    parser.add_argument("--out", default=str(_JSON_PATH),
                        help="where to write the JSON payload")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the worker-thread count")
    parser.add_argument("--requests", type=int, default=None,
                        help="override requests per phase")
    args = parser.parse_args(argv)

    params = dict(smoke_params()) if args.smoke else dict(FULL_PARAMS)
    if args.workers is not None:
        params["workers"] = args.workers
    if args.requests is not None:
        params["requests"] = args.requests

    payload = run_serving_benchmark(**params)
    _write(payload, Path(args.out))
    _print_summary(payload)
    try:
        _check(payload, smoke=args.smoke)
    except AssertionError as exc:
        print("FAILED: %s" % exc, file=sys.stderr)
        return 1
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
