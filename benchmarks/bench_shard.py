"""Sharded-warehouse scaling: parallel ingest and scatter-gather reads.

Two phases, each timed against a plain single-file warehouse and
federations of 1/2/4/8 shards:

``ingest``
    the write path of :meth:`store_many` over pre-prepared batches
    carrying their lineage closures and labels.  The prepare stage (row
    shaping, lint, closure computation) is deliberately done *before*
    the clock starts — it is identical for every backend and GIL-bound,
    so timing it would only dilute the thing sharding changes: each
    shard's writer thread commits its slice of every batch concurrently,
    and the dominant cost (the closure's ``INSERT ... SELECT``
    expansion) runs in SQLite's C core with the GIL released, so the
    commits genuinely overlap on a multi-core host.
``query``
    the cross-run scatter-gather reads (``list_runs``, per-run row
    fetches, index status) a federation must answer by merging every
    shard — the price paid for the parallel writes, bounded by the
    acceptance claim "within 2x of the single file".

Tier selection honours ``ZOOM_BENCH_SHARD_TIERS`` (comma-separated
subset of ``small,large``); CI smoke runs set ``small``.  The final
report test writes ``BENCH_shard.json`` at the repository root and
asserts the scaling claims — strictly on the large workload (>=2x
ingest speedup at 4 shards, scatter-gather within 2x), leniently on the
small one (no pathological inversion).  Parallel speedup needs
parallel hardware: on hosts with fewer than 4 CPUs every shard commit
shares one core, so the strict gate degrades to the lenient one and the
recorded ``cpus`` field says why.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro.warehouse.pipeline import _PrepareTask, prepare_run
from repro.warehouse.sharded import ShardedWarehouse
from repro.warehouse.sqlite import SqliteWarehouse
from repro.workloads.classes import RUN_CLASSES, WORKFLOW_CLASSES
from repro.workloads.generator import generate_workflow
from repro.workloads.runs import generate_run

from .conftest import print_table

#: (number of specs, runs per spec, target spec size, run class) per
#: tier.  The large tier uses medium runs so the closure expansion — the
#: parallelizable C-side work — dominates each shard's commit.
TIERS = {
    "small": (2, 6, 10, "small"),
    "large": (3, 16, 14, "medium"),
}

#: Benchmarked backends: the plain single-file warehouse, then
#: federations at every shard count of the acceptance matrix.
BACKENDS = ["file", "shard1", "shard2", "shard4", "shard8"]

BATCH = 32

_SELECTED = [
    tier for tier in os.environ.get(
        "ZOOM_BENCH_SHARD_TIERS", "small,large"
    ).split(",") if tier
]

_INGEST = {}
_QUERY = {}
_RUN_COUNTS = {}

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _workload(tier):
    n_specs, n_runs, size, run_class = TIERS[tier]
    rng = random.Random(20080407)
    classes = sorted(WORKFLOW_CLASSES)
    items = []
    for i in range(n_specs):
        generated = generate_workflow(
            WORKFLOW_CLASSES[classes[i % len(classes)]], rng,
            target_size=size, name="%s-wf%d" % (tier, i),
        )
        runs = [
            generate_run(generated.spec, RUN_CLASSES[run_class], rng,
                         run_id="r%d" % n)
            for n in range(n_runs)
        ]
        items.append((generated.spec, runs))
    return items


def _prepared_batches(items):
    """The workload reduced to store_many-ready batches, prepare done.

    ``index=True``/``labels=True`` attach each run's lineage closure and
    reachability labels, making the timed commit the index-materialising
    ingest configuration — the heaviest one, and the one whose cost
    lives in SQLite's C core rather than under the GIL.
    """
    prepared = []
    for spec, results in items:
        for number, result in enumerate(results, start=1):
            task = _PrepareTask(
                run=result.run, spec_id=spec.name,
                run_id="%s/run%d" % (spec.name, number),
                index=True, labels=True,
            )
            prepared.append(prepare_run(task))
    return [prepared[i:i + BATCH] for i in range(0, len(prepared), BATCH)]


def _make_warehouse(backend, path):
    if backend == "file":
        return SqliteWarehouse(str(path) + ".db", bulk=True)
    shards = int(backend[len("shard"):])
    return ShardedWarehouse(str(path), shards=shards, bulk=True)


@pytest.fixture(scope="module")
def workloads():
    return {tier: _workload(tier) for tier in _SELECTED}


@pytest.fixture(scope="module")
def batches(workloads):
    return {tier: _prepared_batches(workloads[tier]) for tier in _SELECTED}


@pytest.mark.parametrize("tier", [t for t in TIERS if t in _SELECTED])
@pytest.mark.parametrize("backend", BACKENDS)
def test_shard_ingest(benchmark, workloads, batches, tmp_path_factory,
                      backend, tier):
    items = workloads[tier]
    tier_batches = batches[tier]
    n_runs = sum(len(runs) for _spec, runs in items)
    root = tmp_path_factory.mktemp("shard-%s-%s" % (tier, backend))
    fresh = {"count": 0}

    def setup():
        fresh["count"] += 1
        warehouse = _make_warehouse(
            backend, root / ("round%d" % fresh["count"])
        )
        for spec, _runs in items:
            warehouse.store_spec(spec)
        return (warehouse,), {}

    def ingest(warehouse):
        for batch in tier_batches:
            warehouse.store_many(batch)
        warehouse.close()

    rounds = 3 if tier == "small" else 2
    benchmark.pedantic(ingest, setup=setup, rounds=rounds, warmup_rounds=1)
    total_ms = benchmark.stats.stats.min * 1000
    _INGEST[(tier, backend)] = total_ms
    _RUN_COUNTS[tier] = n_runs
    benchmark.extra_info["runs"] = n_runs
    print_table(
        "Shard ingest / %s workload / %s" % (tier, backend),
        ["runs", "total ms", "ms/run"],
        [[n_runs, "%.1f" % total_ms, "%.2f" % (total_ms / n_runs)]],
    )


@pytest.mark.parametrize("tier", [t for t in TIERS if t in _SELECTED])
@pytest.mark.parametrize("backend", BACKENDS)
def test_shard_query(benchmark, workloads, batches, tmp_path_factory,
                     backend, tier):
    items = workloads[tier]
    warehouse = _make_warehouse(
        backend, tmp_path_factory.mktemp("q-%s-%s" % (tier, backend)) / "wh"
    )
    for spec, _runs in items:
        warehouse.store_spec(spec)
    for batch in batches[tier]:
        warehouse.store_many(batch)
    run_ids = warehouse.list_runs()
    probes = run_ids[:: max(1, len(run_ids) // 8)]

    def scatter_gather():
        listing = warehouse.list_runs()
        warehouse.list_specs()
        warehouse.lineage_index_status()
        for run_id in probes:
            warehouse.io_rows(run_id)
            warehouse.final_outputs(run_id)
        return len(listing)

    try:
        result = benchmark.pedantic(
            scatter_gather, rounds=20, warmup_rounds=3, iterations=3
        )
        assert result == len(run_ids)
    finally:
        warehouse.close()
    latency_ms = benchmark.stats.stats.min * 1000
    _QUERY[(tier, backend)] = latency_ms
    print_table(
        "Scatter-gather / %s workload / %s" % (tier, backend),
        ["runs", "latency ms"],
        [[len(run_ids), "%.2f" % latency_ms]],
    )


def test_shard_report(benchmark):
    """Emit BENCH_shard.json; 4 shards must ingest 2x faster on large."""

    def snapshot():
        return dict(_INGEST), dict(_QUERY)

    ingest, query = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    expected = [
        (tier, backend) for tier in _SELECTED for backend in BACKENDS
    ]
    if any(key not in ingest or key not in query for key in expected):
        pytest.skip("needs the full (tier x backend) matrix in one session")
    cpus = os.cpu_count() or 1
    payload = {"cpus": cpus}
    for tier in _SELECTED:
        payload[tier] = {
            "runs": _RUN_COUNTS[tier],
            "ingest_ms": {
                backend: round(ingest[(tier, backend)], 2)
                for backend in BACKENDS
            },
            "query_ms": {
                backend: round(query[(tier, backend)], 3)
                for backend in BACKENDS
            },
        }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print_table(
        "Sharded warehouse, total ingest ms (min over rounds)",
        ["tier", "runs"] + BACKENDS,
        [[tier, payload[tier]["runs"]]
         + ["%.1f" % payload[tier]["ingest_ms"][b] for b in BACKENDS]
         for tier in _SELECTED],
    )
    for tier in _SELECTED:
        ingest_ms = payload[tier]["ingest_ms"]
        query_ms = payload[tier]["query_ms"]
        if tier == "large" and cpus >= 4:
            # The acceptance claims, verbatim.  They need parallel
            # hardware to be meaningful: with the shard commits pinned
            # to one core there is nothing for the federation to
            # overlap, so single-core hosts fall through to the
            # no-inversion gate below (the payload's "cpus" records it).
            assert ingest_ms["shard4"] * 2 <= ingest_ms["shard1"], ingest_ms
            assert query_ms["shard8"] <= 2 * query_ms["file"], query_ms
        else:
            # CI smoke / small hosts: fixed per-shard overheads dominate,
            # so only rule out a pathological inversion.
            assert ingest_ms["shard4"] <= 2.5 * ingest_ms["shard1"], ingest_ms
            assert query_ms["shard8"] <= 6 * query_ms["file"], query_ms
