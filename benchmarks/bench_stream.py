"""Streaming ingestion benchmark — ``BENCH_stream.json``.

Three claims of the crash-safe streaming protocol, measured end to end on
a SQLite warehouse:

* **append throughput** — events/s sustained by the journaled epoch
  protocol (open, chunked appends, finalize) across a batch of runs;
* **delta vs rebuild** — per-epoch incremental maintenance of the
  lineage-closure index (``closure_delta_rows``) against rebuilding it
  from scratch after every epoch, reported as total maintenance overhead
  over the same stream.  Reachability labels are excluded on purpose:
  their interval encoding is global, so ``try_extend`` only handles
  epochs that add forest roots and chained steps legitimately rebuild
  (see the ``try_extend`` docstring) — the closure is where the
  incremental path must win;
* **watch latency** — p50/p95 of :meth:`repro.zoom.session.RunWatch.poll`
  observing each committed epoch (stream-state read + reasoner refresh).

Assertions:

* canonical (frontier-shaped) chunks never force a rebuild
  (``stream.rebuild`` == 0 while ``stream.delta`` counts every epoch);
* the checksum the producer computed matches the stored rows;
* full mode only: per-epoch rebuilds cost more than the delta path.

Run standalone for CI (``python benchmarks/bench_stream.py --smoke``) or
under pytest with the other benchmarks; both write ``BENCH_stream.json``
at the repository root.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs import MetricsRegistry, set_registry  # noqa: E402
from repro.run.log import log_from_run  # noqa: E402
from repro.warehouse.recovery import checksum_stored_run  # noqa: E402
from repro.warehouse.sqlite import SqliteWarehouse  # noqa: E402
from repro.warehouse.streaming import (  # noqa: E402
    StreamingIngestor,
    chunk_log,
)
from repro.workloads.classes import (  # noqa: E402
    RUN_CLASSES,
    WORKFLOW_CLASSES,
)
from repro.workloads.generator import generate_workflow  # noqa: E402
from repro.workloads.runs import generate_run  # noqa: E402
from repro.zoom.session import Session  # noqa: E402

_JSON_PATH = _REPO_ROOT / "BENCH_stream.json"

FULL_PARAMS = dict(runs=5, target_size=16, run_class="small", max_events=8)
SMOKE_PARAMS = dict(runs=3, target_size=10, run_class="small", max_events=6)


def _percentile(samples, q):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _make_logs(runs, target_size, run_class, seed=7):
    """(spec, [(run_id, log)]) for one generated workflow."""
    rng = random.Random(seed)
    generated = generate_workflow(
        WORKFLOW_CLASSES["Class2"], rng, target_size=target_size,
        name="bench-stream",
    )
    logs = []
    for number in range(runs):
        record = generate_run(
            generated.spec, RUN_CLASSES[run_class], rng,
            run_id="r%d" % number,
        )
        logs.append((
            "%s/run%d" % (generated.spec.name, number + 1),
            log_from_run(record.run),
        ))
    return generated.spec, logs


def _stream(warehouse, spec_id, run_id, chunks, *, before_epoch=None,
            after_epoch=None, session=None):
    """Stream one chunked run; returns (elapsed_s, per-epoch durations)."""
    ingestor = StreamingIngestor(
        warehouse,
        reasoner=None if session is None else session.reasoner,
    )
    watch = None if session is None else session.watch(run_id)
    poll_latencies = []
    epoch_durations = []
    started = time.perf_counter()
    ingestor.open_run(run_id, spec_id)
    if before_epoch is not None:
        before_epoch(run_id)
    for chunk in chunks:
        tick = time.perf_counter()
        ingestor.ingest_events(run_id, chunk)
        epoch_durations.append(time.perf_counter() - tick)
        if after_epoch is not None:
            after_epoch(run_id)
        if watch is not None:
            tick = time.perf_counter()
            update = watch.poll()
            poll_latencies.append(time.perf_counter() - tick)
            assert update is not None and not update.final
    checksum = ingestor.finalize_run(run_id)
    elapsed = time.perf_counter() - started
    assert checksum == checksum_stored_run(warehouse, run_id)
    return elapsed, epoch_durations, poll_latencies


def run_streaming_benchmark(runs, target_size, run_class, max_events):
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        spec, logs = _make_logs(runs, target_size, run_class)
        chunked = [
            (run_id, chunk_log(log, max_events=max_events))
            for run_id, log in logs
        ]
        total_events = sum(len(log) for _r, log in logs)
        total_epochs = sum(len(chunks) for _r, chunks in chunked)

        with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp:
            # Phase 1 — plain append throughput + watch latency (no
            # persistent indexes in the way).
            warehouse = SqliteWarehouse(str(Path(tmp) / "plain.sqlite"))
            spec_id = warehouse.store_spec(spec)
            session = Session(warehouse, spec_id)
            append_time = 0.0
            polls = []
            for run_id, chunks in chunked:
                elapsed, _epochs, latencies = _stream(
                    warehouse, spec_id, run_id, chunks, session=session,
                )
                append_time += elapsed
                polls.extend(latencies)
            warehouse.close()

            # Phase 2 — live incremental maintenance: indexes built at
            # epoch 1, epoch deltas keep them current.
            warehouse = SqliteWarehouse(str(Path(tmp) / "delta.sqlite"))
            spec_id = warehouse.store_spec(spec)

            def build_once(run_id):
                warehouse.build_lineage_index(run_id)

            delta_time = 0.0
            for run_id, chunks in chunked:
                elapsed, _epochs, _polls = _stream(
                    warehouse, spec_id, run_id, chunks,
                    before_epoch=build_once,
                )
                delta_time += elapsed
            delta_count = registry.counter("stream.delta").value
            rebuild_count = registry.counter("stream.rebuild").value
            warehouse.close()

            # Phase 3 — the alternative the delta path replaces: rebuild
            # both indexes from scratch after every committed epoch.
            warehouse = SqliteWarehouse(str(Path(tmp) / "rebuild.sqlite"))
            spec_id = warehouse.store_spec(spec)

            def rebuild(run_id):
                warehouse.build_lineage_index(run_id, rebuild=True)

            rebuild_time = 0.0
            for run_id, chunks in chunked:
                elapsed, _epochs, _polls = _stream(
                    warehouse, spec_id, run_id, chunks, after_epoch=rebuild,
                )
                rebuild_time += elapsed
            warehouse.close()

        delta_overhead = max(delta_time - append_time, 0.0)
        rebuild_overhead = max(rebuild_time - append_time, 0.0)
        return {
            "runs": runs,
            "epochs": total_epochs,
            "events": total_events,
            "max_events": max_events,
            "append_s": round(append_time, 6),
            "events_per_s": round(total_events / append_time, 1),
            "delta": {
                "count": delta_count,
                "total_s": round(delta_time, 6),
                "overhead_s": round(delta_overhead, 6),
            },
            "rebuild": {
                "count": rebuild_count,
                "total_s": round(rebuild_time, 6),
                "overhead_s": round(rebuild_overhead, 6),
            },
            "rebuild_over_delta": round(
                rebuild_time / delta_time, 3
            ) if delta_time else None,
            "watch": {
                "polls": len(polls),
                "p50_ms": round(_percentile(polls, 0.50) * 1e3, 4),
                "p95_ms": round(_percentile(polls, 0.95) * 1e3, 4),
            },
        }
    finally:
        set_registry(previous)


def _write(payload: dict, out: Path) -> None:
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _print_summary(payload: dict) -> None:
    print("\n== Streaming ingestion (%d runs, %d epochs, %d events) =="
          % (payload["runs"], payload["epochs"], payload["events"]))
    print("  append throughput: %10.1f events/s" % payload["events_per_s"])
    print("  index maintenance: delta %.3fs (%d epochs) vs per-epoch "
          "rebuild %.3fs (%.2fx)"
          % (payload["delta"]["total_s"], payload["delta"]["count"],
             payload["rebuild"]["total_s"],
             payload["rebuild_over_delta"] or 0.0))
    print("  watch poll latency: p50 %.3f ms  p95 %.3f ms  (%d polls)"
          % (payload["watch"]["p50_ms"], payload["watch"]["p95_ms"],
             payload["watch"]["polls"]))


def _check(payload: dict, smoke: bool) -> None:
    assert payload["events_per_s"] > 0
    assert payload["rebuild"]["count"] == 0, (
        "frontier-shaped chunks forced %d rebuilds"
        % payload["rebuild"]["count"]
    )
    assert payload["delta"]["count"] > 0, "delta path never ran"
    assert payload["watch"]["polls"] == payload["epochs"]
    if not smoke:
        assert payload["rebuild_over_delta"] >= 1.0, (
            "per-epoch rebuilds (%.3fs) came out cheaper than the delta "
            "path (%.3fs)" % (payload["rebuild"]["total_s"],
                              payload["delta"]["total_s"])
        )


def test_bench_stream(record_property=None) -> None:
    """Pytest entry point: full workload, writes BENCH_stream.json."""
    payload = run_streaming_benchmark(**FULL_PARAMS)
    _write(payload, _JSON_PATH)
    _print_summary(payload)
    _check(payload, smoke=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced CI workload (small runs only)")
    parser.add_argument("--out", default=str(_JSON_PATH),
                        help="where to write the JSON payload")
    parser.add_argument("--runs", type=int, default=None,
                        help="override the streamed-run count")
    args = parser.parse_args(argv)

    params = dict(SMOKE_PARAMS) if args.smoke else dict(FULL_PARAMS)
    if args.runs is not None:
        params["runs"] = args.runs

    payload = run_streaming_benchmark(**params)
    _write(payload, Path(args.out))
    _print_summary(payload)
    try:
        _check(payload, smoke=args.smoke)
    except AssertionError as exc:
        print("FAILED: %s" % exc, file=sys.stderr)
        return 1
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
