"""Table I — classes of workflows.

Regenerates the paper's workload-definition table: for each class, the
realised pattern frequencies and sizes of the generated workflows, checked
against the class profile, plus the statistics of the hand-built "real"
corpus that stands in for Class 1's collected workflows.  The benchmarked
operation is workflow generation itself.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.workloads.classes import WORKFLOW_CLASSES
from repro.workloads.generator import generate_workflow, generate_workflows
from repro.workloads.library import corpus_statistics

from .conftest import print_table


def _realised_frequencies(class_name: str, count: int, seed: int) -> Dict[str, float]:
    rng = random.Random(seed)
    census: Dict[str, int] = {}
    total = 0
    for generated in generate_workflows(WORKFLOW_CLASSES[class_name], count, rng):
        for pattern in generated.patterns:
            census[pattern.kind] = census.get(pattern.kind, 0) + 1
            total += 1
    return {kind: hits / total for kind, hits in census.items()}


@pytest.mark.parametrize("class_name", sorted(WORKFLOW_CLASSES))
def test_table1_row(benchmark, class_name):
    """One Table I row: generate workflows of the class, report statistics."""
    workflow_class = WORKFLOW_CLASSES[class_name]
    rng = random.Random(1)

    generated = benchmark(
        lambda: generate_workflow(workflow_class, rng)
    )
    assert len(generated.spec) >= workflow_class.avg_size

    frequencies = _realised_frequencies(class_name, count=30, seed=7)
    rows = [
        [kind,
         "%.2f" % workflow_class.frequencies.get(kind, 0.0),
         "%.2f" % frequencies.get(kind, 0.0)]
        for kind in sorted(set(workflow_class.frequencies) | set(frequencies))
    ]
    print_table(
        "Table I / %s (%s): pattern frequencies (target vs realised)"
        % (class_name, workflow_class.description),
        ["pattern", "target", "realised"],
        rows,
    )
    # Every realised pattern kind must be allowed by the class profile.
    assert set(frequencies) <= set(workflow_class.frequencies)
    # Realised frequencies track the profile loosely (sampling noise aside).
    for kind, target in workflow_class.frequencies.items():
        assert abs(frequencies.get(kind, 0.0) - target) < 0.25
    benchmark.extra_info["avg_size_target"] = workflow_class.avg_size


def test_table1_class1_corpus(benchmark):
    """Class 1's stand-in corpus matches the paper's headline statistics."""
    stats = benchmark(corpus_statistics)
    print_table(
        "Table I / Class1 corpus (real-workflow stand-in)",
        ["workflows", "avg_size", "max_size", "with_loops"],
        [[stats["workflows"], "%.1f" % stats["avg_size"],
          stats["max_size"], stats["with_loops"]]],
    )
    # The paper reports ~12-node averages for the collected workflows.
    assert 8 <= stats["avg_size"] <= 16
