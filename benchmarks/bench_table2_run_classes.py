"""Table II — classes of runs.

Regenerates the run-class table: for each kind (small/medium/large) the
realised run statistics — steps, edges, data objects, user inputs, loop
iterations — against the class's parameter ranges and node/edge caps.  The
benchmarked operation is run simulation at that kind's parameters.
"""

from __future__ import annotations

import random

import pytest

from repro.workloads.classes import CLASS4, RUN_CLASSES
from repro.workloads.generator import generate_workflow
from repro.workloads.runs import generate_run, generate_runs, run_statistics

from .conftest import N_RUNS, print_table


@pytest.fixture(scope="module")
def loopy_spec():
    """A Class 4 (loop-heavy) spec — the kind that stresses run size."""
    rng = random.Random(11)
    return generate_workflow(CLASS4, rng, target_size=20).spec


@pytest.mark.parametrize("kind", ["small", "medium", "large"])
def test_table2_row(benchmark, loopy_spec, kind):
    """One Table II row: simulate runs of one kind, report statistics."""
    run_class = RUN_CLASSES[kind]
    rng = random.Random(23)

    result = benchmark(lambda: generate_run(loopy_spec, run_class, rng))
    assert result.run.num_steps() <= run_class.max_nodes
    assert result.run.num_edges() <= run_class.max_edges

    batch = generate_runs(loopy_spec, run_class, max(N_RUNS, 3), random.Random(5))
    stats = run_statistics(batch)
    print_table(
        "Table II / %s runs" % kind,
        ["metric", "value", "class bound"],
        [
            ["avg steps", "%.1f" % stats["avg_steps"], "<= %d" % run_class.max_nodes],
            ["avg edges", "%.1f" % stats["avg_edges"], "<= %d" % run_class.max_edges],
            ["avg data objects", "%.1f" % stats["avg_data"], "-"],
            ["avg user inputs", "%.1f" % stats["avg_user_inputs"],
             "range %s/input edge" % (run_class.user_input_range,)],
            ["avg loop iterations", "%.1f" % stats["avg_loop_iterations"],
             "range %s/loop" % (run_class.loop_iterations_range,)],
            ["max steps", stats["max_steps"], "<= %d" % run_class.max_nodes],
            ["max edges", stats["max_edges"], "<= %d" % run_class.max_edges],
        ],
    )
    assert stats["max_steps"] <= run_class.max_nodes
    assert stats["max_edges"] <= run_class.max_edges
    benchmark.extra_info["avg_steps"] = stats["avg_steps"]


def test_table2_kinds_are_ordered(benchmark, loopy_spec):
    """Small < medium < large in realised run size — the point of Table II."""

    def measure():
        sizes = {}
        for kind, run_class in RUN_CLASSES.items():
            batch = generate_runs(loopy_spec, run_class, 3, random.Random(9))
            sizes[kind] = run_statistics(batch)["avg_data"]
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Table II / kind ordering (avg data objects)",
        ["small", "medium", "large"],
        [["%.0f" % sizes["small"], "%.0f" % sizes["medium"],
          "%.0f" % sizes["large"]]],
    )
    assert sizes["small"] < sizes["medium"] < sizes["large"]
