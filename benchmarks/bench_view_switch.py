"""Section V-B "Effect of view granularity on response time" — switching.

The paper's interactive claim: once a run's UAdmin provenance has been
computed (and kept in a temporary table), recomputing the answer for a
*different* user view takes ~13 ms on average (max 1 s), and rendering the
provenance graph ~300 ms — orders of magnitude below the initial query.

This benchmark reproduces the comparison: the first query on a cold
reasoner (warehouse recursion + run materialisation) versus re-answering
under a different view on the warm reasoner, plus the DOT rendering cost.
"""

from __future__ import annotations

import random

import pytest

from repro.core.builder import build_user_view
from repro.provenance.reasoner import ProvenanceReasoner
from repro.warehouse.sqlite import SqliteWarehouse
from repro.workloads.generator import random_relevant
from repro.zoom.dot import provenance_to_dot

from .conftest import Workload, print_table

_MEASURED = {}


@pytest.fixture(scope="module")
def switching_setup(workload: Workload):
    """One large run in a SQLite warehouse, with a stack of random views."""
    item = workload.items["Class4"][0]
    result = item.runs["large"][0]
    warehouse = SqliteWarehouse()
    spec_id = warehouse.store_spec(item.generated.spec)
    run_id = warehouse.store_run(result.run, spec_id, run_id="switch-run")
    rng = random.Random(31)
    views = [
        build_user_view(
            item.generated.spec,
            random_relevant(item.generated.spec, percent / 100.0, rng),
            name="UV%d" % percent,
        )
        for percent in range(10, 100, 20)
    ]
    yield warehouse, run_id, item, views
    warehouse.close()


def test_first_query_cost(benchmark, switching_setup):
    """The cold path: warehouse recursion plus run materialisation."""
    warehouse, run_id, item, _views = switching_setup

    def cold_query():
        reasoner = ProvenanceReasoner(warehouse)
        return reasoner.final_output_deep(run_id, view=item.ubio)

    result = benchmark(cold_query)
    assert result.num_tuples() > 0
    _MEASURED["first_ms"] = benchmark.stats.stats.mean * 1000


def test_view_switch_cost(benchmark, switching_setup):
    """The warm path: re-answer under new views with cached run state."""
    warehouse, run_id, item, views = switching_setup
    reasoner = ProvenanceReasoner(warehouse)
    reasoner.final_output_deep(run_id, view=item.ubio)  # warm the caches

    cycler = iter([])

    def switch():
        nonlocal cycler
        view = next(cycler, None)
        if view is None:
            cycler = iter(views)
            view = next(cycler)
        return reasoner.final_output_deep(run_id, view=view)

    result = benchmark(switch)
    assert result.num_tuples() >= 0
    _MEASURED["switch_ms"] = benchmark.stats.stats.mean * 1000
    # Steady-state switching should be answered almost entirely from the
    # composite cache; record the hit rate alongside the timings.
    stats = reasoner.stats()
    _MEASURED["hit_rate"] = stats["composites"]["hit_rate"]
    benchmark.extra_info["composite_hit_rate"] = stats["composites"]["hit_rate"]
    benchmark.extra_info["closure_hit_rate"] = stats["closures"]["hit_rate"]


def test_render_cost(benchmark, switching_setup):
    """DOT rendering of the provenance answer (the paper's ~300 ms)."""
    warehouse, run_id, item, _views = switching_setup
    reasoner = ProvenanceReasoner(warehouse)
    answer = reasoner.final_output_deep(run_id, view=item.ubio)
    composite = reasoner.composite_run(run_id, item.ubio)

    dot = benchmark(lambda: provenance_to_dot(answer, composite))
    assert dot.startswith("digraph")
    _MEASURED["render_ms"] = benchmark.stats.stats.mean * 1000


def test_switch_is_cheaper_than_first_query(benchmark):
    """The headline comparison of the interactivity experiment."""

    def snapshot():
        return dict(_MEASURED)

    measured = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    if {"first_ms", "switch_ms"} <= set(measured):
        rows = [[
            "%.2f" % measured["first_ms"],
            "%.2f" % measured["switch_ms"],
            "%.2f" % measured.get("render_ms", float("nan")),
            "%.1fx" % (measured["first_ms"] / max(measured["switch_ms"], 1e-9)),
            "%.0f%%" % (100 * measured.get("hit_rate", 0.0)),
        ]]
        print_table(
            "View switching (paper: first query up to ~1.1 s, switch ~13 ms)",
            ["first query ms", "switch ms", "render ms", "speedup",
             "composite hit rate"],
            rows,
        )
        # Switching must beat the cold query; the cache is the point.
        assert measured["switch_ms"] < measured["first_ms"]
