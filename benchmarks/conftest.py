"""Shared workload fixtures and reporting helpers for the benchmarks.

The paper's evaluation (Section V) uses 10 workflows per class, 30 runs per
kind — 3,600 runs in total.  That scale exists to exercise a disk-backed
Oracle instance; the *shapes* it demonstrates (who wins, by what factor)
appear already at a fraction of the volume, so these benchmarks default to
a reduced workload and expose environment knobs to scale up:

``ZOOM_BENCH_WORKFLOWS``  workflows per class (default 3; paper: 10)
``ZOOM_BENCH_RUNS``       runs per workflow and kind (default 2; paper: 30)

Each benchmark prints the rows of the table/figure it regenerates; compare
them with EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import pytest

from repro.core.builder import build_user_view
from repro.core.view import UserView, admin_view, blackbox_view
from repro.run.executor import SimulationResult
from repro.workloads.classes import RUN_CLASSES, WORKFLOW_CLASSES
from repro.workloads.generator import GeneratedWorkflow, generate_workflows
from repro.workloads.runs import generate_run

#: Workflows per class (paper: 10).
N_WORKFLOWS = int(os.environ.get("ZOOM_BENCH_WORKFLOWS", "3"))

#: Runs per workflow and run kind (paper: 30).
N_RUNS = int(os.environ.get("ZOOM_BENCH_RUNS", "2"))

#: Specs used for query experiments have ~20 nodes, as in the paper.
QUERY_SPEC_SIZE = 20


@dataclass
class WorkloadItem:
    """One workflow with its views and runs, ready for query benchmarks."""

    generated: GeneratedWorkflow
    ubio: UserView
    uadmin: UserView
    ublackbox: UserView
    runs: Dict[str, List[SimulationResult]] = field(default_factory=dict)


@dataclass
class Workload:
    """The full evaluation workload: items per workflow class."""

    items: Dict[str, List[WorkloadItem]]

    def all_items(self) -> List[Tuple[str, WorkloadItem]]:
        return [
            (class_name, item)
            for class_name, class_items in sorted(self.items.items())
            for item in class_items
        ]


def _build_workload() -> Workload:
    rng = random.Random(20080407)  # ICDE 2008
    items: Dict[str, List[WorkloadItem]] = {}
    for class_name, workflow_class in sorted(WORKFLOW_CLASSES.items()):
        class_items: List[WorkloadItem] = []
        for generated in generate_workflows(
            workflow_class, N_WORKFLOWS, rng, target_size=QUERY_SPEC_SIZE
        ):
            item = WorkloadItem(
                generated=generated,
                ubio=build_user_view(
                    generated.spec, generated.suggested_relevant, name="UBio"
                ),
                uadmin=admin_view(generated.spec),
                ublackbox=blackbox_view(generated.spec),
            )
            for run_name, run_class in RUN_CLASSES.items():
                item.runs[run_name] = [
                    generate_run(
                        generated.spec,
                        run_class,
                        rng,
                        run_id="%s-%s-r%d" % (generated.spec.name, run_name, i),
                    )
                    for i in range(1, N_RUNS + 1)
                ]
            class_items.append(item)
        items[class_name] = class_items
    return Workload(items=items)


@pytest.fixture(scope="session")
def workload() -> Workload:
    """Generated specs, views and runs shared by all query benchmarks."""
    return _build_workload()


@pytest.fixture(scope="session")
def bench_rng():
    return random.Random(42)


def print_table(title: str, header: List[str], rows: List[List[object]]) -> None:
    """Render one paper-style table to stdout."""
    print("\n== %s ==" % title)
    widths = [
        max(len(str(header[col])), *(len(str(row[col])) for row in rows))
        for col in range(len(header))
    ] if rows else [len(h) for h in header]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
