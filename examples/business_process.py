#!/usr/bin/env python
"""Beyond science: role-based provenance in a business process.

The paper's conclusion notes the technique works for "any data-oriented
workflow" and aims its future work at business processes (BPEL).  This
example runs an order-fulfilment process — credit-check/negotiation loop,
parallel warehouse and invoicing branches — and shows three departments
querying the same run's provenance, each through the view derived from
their own relevant tasks and fenced by the access-control layer:

* sales sees the negotiation outcome but not the per-round haggling,
* finance sees invoices and payments but not parcels,
* logistics sees picking and shipping but not credit data.

Run it with::

    python examples/business_process.py
"""

from __future__ import annotations

from repro import InMemoryWarehouse
from repro.core.structured import mine_structure
from repro.workloads.business import (
    ROLE_RELEVANT,
    order_fulfilment_spec,
    order_run,
    role_view,
)
from repro.zoom.access import GuardedWarehouse, ViewPolicy
from repro.zoom.report import compress_ids


def main() -> None:
    spec = order_fulfilment_spec()
    run = order_run(spec, negotiation_rounds=3)

    report = mine_structure(spec)
    print("order-fulfilment process: %d tasks, structured=%s "
          "(loop of %s tasks, %s-branch parallel region)\n"
          % (len(spec), report.structured, report.loops[0],
             report.parallel_regions[0]))
    print("run %r: %d steps (terms renegotiated 3 times), final output "
          "'closed_order'\n" % (run.run_id, run.num_steps()))

    warehouse = InMemoryWarehouse()
    spec_id = warehouse.store_spec(spec)
    run_id = warehouse.store_run(run, spec_id)

    policy = ViewPolicy()
    for role in sorted(ROLE_RELEVANT):
        view_id = "%s-view" % role
        warehouse.store_view(role_view(role, spec), spec_id, view_id=view_id)
        policy.grant(role, view_id)
    guarded = GuardedWarehouse(warehouse, policy)

    for role in sorted(ROLE_RELEVANT):
        answer = guarded.deep(role, run_id, "closed_order")
        print("%s (relevant: %s)" % (role, ", ".join(sorted(ROLE_RELEVANT[role]))))
        print("  deep provenance of closed_order: %d tuples over steps %s"
              % (answer.num_tuples(), sorted(answer.steps())))
        visible = guarded.visible_data(role, run_id)
        print("  visible data: %s\n" % compress_ids(visible))

    # The privacy effect, concretely: only sales may learn how many
    # negotiation rounds it took — and even they see just the outcome.
    print("who can see negotiation artefacts?")
    for role in sorted(ROLE_RELEVANT):
        visible = guarded.visible_data(role, run_id)
        rounds = sorted(d for d in visible if d.startswith("terms"))
        print("  %-9s sees %s" % (role, rounds or "none"))

    print("\nevery query was audited:")
    for record in guarded.audit_log():
        print("  %-9s %-8s %-14s via %-15s -> %d tuples"
              % (record.user, record.query, record.target,
                 record.view_id, record.tuples))


if __name__ == "__main__":
    main()
