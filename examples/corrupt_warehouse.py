#!/usr/bin/env python
"""Build a deliberately corrupted SQLite provenance warehouse.

``zoom lint --db`` exists because real warehouses rot: partial ingests,
hand-edited rows, two log shippers racing each other.  This script
manufactures that rot on purpose — it stores one healthy specification,
view and run through the official API, then vandalises the database with
direct SQL so every analyzer layer (spec, run, view, warehouse) has
something to report.

Planted defects and the rules they trigger:

* a second spec whose module rows contain a duplicate, a reserved label,
  a dangling edge and an unreachable module (``SPEC001``/``SPEC002``/
  ``SPEC003``/``SPEC006``/``SPEC007``);
* a view that cites an unknown module and leaves part of the spec
  uncovered (``VIEW020``/``VIEW022``);
* a run with a data object written by two steps, a step executing an
  undeclared module, an io row for a step that does not exist, a read of
  data nothing produced and a final output that was never written
  (``WH030``–``WH034``), plus a run row pointing at a spec id that is
  not stored (``WH035``) and a stepless run (``WH037``);
* a pending ingest-journal row for a run the warehouse never received —
  the footprint of a bulk load killed between journalling and commit
  (``WH041``, torn ingest);
* a streaming run left open at rest — its producer died without
  finalizing (``WH046``) — and a second open stream whose lineage index
  was last maintained an epoch behind the committed rows, the footprint
  of a crash between the epoch commit and the index delta (``WH047``).

With ``--sharded`` the script instead vandalises a sharded federation:
a healthy spec-routed load whose runs all pile onto one shard
(``WH045``, imbalance), one shard file deleted outright and a stray
undeclared shard file planted next to the manifest (``WH044`` both
ways).

Usage::

    python examples/corrupt_warehouse.py [path.sqlite]
    python examples/corrupt_warehouse.py --sharded [directory]

Prints the path it wrote; lint it with::

    zoom lint --db corrupt.sqlite
    zoom lint --db corrupt.sqlite --strict   # exit code 1
    zoom lint --db corrupt-fed               # WH044 + WH045
    zoom shard status --db corrupt-fed       # the CLI view of the same
"""

from __future__ import annotations

import os
import random
import sqlite3
import sys

from repro.core.spec import INPUT, OUTPUT, WorkflowSpec
from repro.core.view import UserView
from repro.run.executor import simulate
from repro.run.log import EventLog
from repro.warehouse.sqlite import SqliteWarehouse
from repro.warehouse.streaming import StreamingIngestor, chunk_log


def build(path: str) -> str:
    """Write the corrupted warehouse to ``path`` and return ``path``."""
    warehouse = SqliteWarehouse(path)

    # A healthy baseline first: corruption is only interesting when it
    # sits next to rows that are fine.
    spec = WorkflowSpec(
        modules=["A", "B", "C"],
        edges=[(INPUT, "A"), ("A", "B"), ("B", "C"), ("C", OUTPUT)],
        name="healthy",
    )
    spec_id = warehouse.store_spec(spec, spec_id="healthy")
    warehouse.store_view(
        UserView(spec, {"P": {"A", "B"}, "Q": {"C"}}, name="ok-view"),
        spec_id,
        view_id="healthy/ok-view",
    )
    warehouse.store_run(simulate(spec).run, spec_id, run_id="healthy/run1")

    # Two streaming runs, appended through the official protocol but
    # never finalized — the footprint of producers that died mid-run.
    ingestor = StreamingIngestor(warehouse)
    for run_id in ("healthy/stream1", "healthy/stream2"):
        log = EventLog()
        log.user_input("d0")
        log.start("st1", "A")
        log.read("st1", "d0")
        log.write("st1", "d1")
        ingestor.open_run(run_id, spec_id)
        for chunk in chunk_log(log):
            ingestor.ingest_events(run_id, chunk)
    # stream2 additionally carries a lineage index, so winding its
    # delta watermark back (below) makes the index verifiably stale.
    warehouse.build_lineage_index("healthy/stream2")
    warehouse.close()

    # Now the vandalism, straight into the tables.
    db = sqlite3.connect(path)
    with db:
        # -- spec layer: "mangled" has a reserved label, a duplicate
        #    module row, a dangling edge and modules off the input/output
        #    path.
        db.execute("INSERT INTO spec VALUES ('mangled', 'mangled')")
        db.executemany(
            "INSERT INTO module VALUES ('mangled', ?)",
            [("X",), ("Y",), ("input",)],
        )
        # The (spec_id, module) primary key forbids duplicate rows, so the
        # duplicate label hides in the edge set instead — lint reads both.
        db.executemany(
            "INSERT INTO spec_edge VALUES ('mangled', ?, ?)",
            [
                (INPUT, "X"),
                ("X", OUTPUT),
                ("X", "ghost"),      # dangling: 'ghost' is not a module
                ("Y", "Y"),          # self-loop, and Y is unreachable
            ],
        )

        # -- view layer: overlapping composites, a cited module that the
        #    spec does not declare, and 'C' left uncovered.
        db.execute(
            "INSERT INTO view_def VALUES ('healthy/bad-view', 'healthy', 'bad-view')"
        )
        db.executemany(
            "INSERT INTO view_member VALUES ('healthy/bad-view', ?, ?)",
            [
                ("P", "A"),
                ("Q", "B"),
                ("R", "phantom"),    # unknown module
            ],
        )
        # (Overlapping composites — VIEW021 — cannot be planted here: the
        # (view_id, module) primary key rules them out, which is itself a
        # nice property of the schema.)

        # -- run/warehouse layer: one run, many sins.
        db.execute("INSERT INTO run_def VALUES ('healthy/bad-run', 'healthy')")
        db.executemany(
            "INSERT INTO step VALUES ('healthy/bad-run', ?, ?)",
            [("s1", "A"), ("s2", "B"), ("s3", "imposter")],  # WH031
        )
        db.executemany(
            "INSERT INTO io VALUES ('healthy/bad-run', ?, ?, ?)",
            [
                ("s1", "d1", "out"),
                ("s2", "d1", "out"),        # WH030: two producers
                ("s2", "d_missing", "in"),  # WH033: read, never produced
                ("s9", "d2", "out"),        # WH032: step 's9' not declared
            ],
        )
        db.execute(
            "INSERT INTO final_output VALUES ('healthy/bad-run', 'd_final')"
        )  # WH034: never produced

        # -- a run whose spec row dangles (WH035) and that has no steps
        #    at all (WH037).
        db.execute("INSERT INTO run_def VALUES ('lost/run', 'no-such-spec')")

        # -- a torn ingest (WH041): the journal promised 'healthy/run9'
        #    but the load died before the batch committed.
        db.execute(
            "INSERT INTO _ingest_journal VALUES"
            " ('healthy/run9', 'healthy', 'deadbeef', 1, 'pending')"
        )

        # -- abandoned streams (WH046): both open-run rows are aged an
        #    hour so the default --open-run-age of 0 and any realistic
        #    threshold both flag them.
        db.execute(
            "UPDATE _stream_state SET opened_at = opened_at - 3600"
        )
        # -- a trailing index watermark (WH047): the epoch committed but
        #    the crash hit before the incremental index maintenance, so
        #    stream2's lineage index still answers for the epoch before.
        db.execute(
            "UPDATE _stream_state SET delta_epoch = epoch - 1"
            " WHERE run_id = 'healthy/stream2'"
        )
    db.close()
    return path


def build_sharded(directory: str) -> str:
    """Write a corrupted sharded federation to ``directory``.

    The damage is the kind ``WH044``/``WH045`` exist for: a healthy
    load first (through the official API), then one shard file deleted,
    one stray shard file planted, and a routing choice that piles every
    run onto a single shard.
    """
    from repro.warehouse.loader import load_dataset
    from repro.warehouse.sharded import ShardedWarehouse
    from repro.workloads.classes import RUN_CLASSES, WORKFLOW_CLASSES
    from repro.workloads.generator import generate_workflow
    from repro.workloads.runs import generate_run

    # Spec-affinity routing with one dominant workflow: every run of
    # 'hotspot' lands on the same shard, which is exactly the skew WH045
    # warns about.
    rng = random.Random(44)
    generated = generate_workflow(
        WORKFLOW_CLASSES["Class2"], rng, target_size=10, name="hotspot"
    )
    runs = [
        generate_run(generated.spec, RUN_CLASSES["small"], rng,
                     run_id="r%d" % n)
        for n in range(36)
    ]
    warehouse = ShardedWarehouse(directory, shards=4, router="spec")
    load_dataset(warehouse, [(generated.spec, runs)])
    warehouse.close()

    # WH044, missing flavour: a shard file the manifest still declares.
    busy = ShardedWarehouse(directory)
    victim = next(
        index for index, count in busy.runs_per_shard().items() if count == 0
    )
    busy.close()
    os.remove(os.path.join(directory, "shard-%03d.db" % victim))
    # WH044, extra flavour: a shard file the router never consults.
    with open(os.path.join(directory, "shard-099.db"), "wb"):
        pass
    return directory


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "--sharded":
        print(build_sharded(args[1] if len(args) > 1 else "corrupt-fed"))
        return 0
    path = args[0] if args else "corrupt.sqlite"
    print(build(path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
