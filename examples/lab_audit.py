#!/usr/bin/env python
"""Lab-scale provenance audit: tracing a contaminated input across runs.

The scenario the paper's introduction motivates: a laboratory executes its
workflows week after week, accumulating thousands of data objects in the
provenance warehouse.  One day a reagent batch turns out to be bad — every
result derived from a particular set of user inputs is suspect.  This
example:

1. builds a small lab out of the hand-built workflow corpus (the Class 1
   stand-ins: annotation, variant calling, proteomics, ...),
2. simulates several runs of each and loads them into a persistent SQLite
   warehouse — through the event-log ingestion path, as a real deployment
   would,
3. audits the warehouse: for a chosen "contaminated" user input of each
   run, finds every final output that depends on it (reverse provenance)
   and reports which results must be re-derived,
4. shows how a user view scopes the audit trail a scientist has to read.

Run it with::

    python examples/lab_audit.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import ProvenanceReasoner, Session, SqliteWarehouse, simulate
from repro.core.builder import build_user_view
from repro.run.log import log_from_run
from repro.workloads.library import corpus
from repro.zoom.canned import inputs_feeding, outputs_depending_on


def build_lab_warehouse(path: str, runs_per_workflow: int = 3) -> SqliteWarehouse:
    """Simulate the lab's history and load it through the log path."""
    warehouse = SqliteWarehouse(path)
    rng = random.Random(2008)
    for entry in corpus():
        spec_id = warehouse.store_spec(entry.spec)
        view = build_user_view(entry.spec, entry.relevant, name="UBio")
        warehouse.store_view(view, spec_id, view_id="%s/UBio" % spec_id)
        for index in range(1, runs_per_workflow + 1):
            result = simulate(entry.spec, rng=rng,
                              run_id="%s/run%d" % (spec_id, index))
            warehouse.store_log(log_from_run(result.run), spec_id)
    return warehouse


def audit(warehouse: SqliteWarehouse) -> None:
    reasoner = ProvenanceReasoner(warehouse)
    print("%-28s %-8s %-10s %-22s %s" % (
        "run", "inputs", "outputs", "contaminated input", "suspect outputs"))
    print("-" * 92)
    suspects = 0
    for run_id in warehouse.list_runs():
        user_inputs = sorted(warehouse.user_inputs(run_id))
        final_outputs = sorted(warehouse.final_outputs(run_id))
        # Pretend the first user input of each run came from the bad batch.
        contaminated = user_inputs[0]
        affected = sorted(outputs_depending_on(reasoner, run_id, contaminated))
        suspects += len(affected)
        print("%-28s %-8d %-10d %-22s %s" % (
            run_id, len(user_inputs), len(final_outputs),
            contaminated, affected or "none"))
    print("\n%d final outputs must be re-derived." % suspects)


def scoped_trail(warehouse: SqliteWarehouse) -> None:
    """Compare the audit trail a scientist reads at two granularities."""
    run_id = warehouse.list_runs()[0]
    spec_id = warehouse.run_spec_id(run_id)
    target = sorted(warehouse.final_outputs(run_id))[0]

    session = Session(warehouse, spec_id, user="auditor")
    session.use_view(warehouse.get_view("%s/UBio" % spec_id))
    scoped = session.deep_provenance(run_id, target)
    full = session.reasoner.deep(run_id, target)  # UAdmin

    print("\nAudit trail for %s of %s:" % (target, run_id))
    print("  at UAdmin granularity: %d tuples over %d steps"
          % (full.num_tuples(), len(full.steps())))
    print("  through the UBio view: %d tuples over %d steps"
          % (scoped.num_tuples(), len(scoped.steps())))
    print("  the view hides %d bookkeeping tuples without dropping any "
          "user input:" % (full.num_tuples() - scoped.num_tuples()))
    assert scoped.user_inputs == full.user_inputs
    print("  user inputs implicated either way: %d" % len(full.user_inputs))

    reasoner = ProvenanceReasoner(warehouse)
    feeding = sorted(inputs_feeding(reasoner, run_id, target))
    print("  earliest implicated inputs: %s%s"
          % (feeding[:6], " ..." if len(feeding) > 6 else ""))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "lab_warehouse.sqlite")
        warehouse = build_lab_warehouse(path)
        try:
            print("Lab warehouse at %s" % path)
            print("workflows: %d, runs: %d\n"
                  % (len(warehouse.list_specs()), len(warehouse.list_runs())))
            audit(warehouse)
            scoped_trail(warehouse)
        finally:
            warehouse.close()


if __name__ == "__main__":
    main()
