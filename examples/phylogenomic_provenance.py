#!/usr/bin/env python
"""The paper's running example, executable: Joe, Mary and the tree d447.

Reproduces the Section I/II narrative of the paper on the phylogenomic
workflow (Fig. 1) and its run (Fig. 2):

* Joe flags annotation checking (M2), alignment (M3) and tree building
  (M7); RelevUserViewBuilder groups the formatting modules around them
  (the Fig. 3a view with composites M10 = {M3, M4, M5}, M9 = {M6, M7, M8}).
* Mary additionally flags the alignment rectification (M5), so the loop
  between alignment and rectification stays visible (Fig. 3b).
* The two users get different answers to the same provenance queries:
  Mary sees the data d411 passed around the loop; Joe does not even know
  the loop executed.

Run it with::

    python examples/phylogenomic_provenance.py
"""

from __future__ import annotations

from repro import InMemoryWarehouse, Session
from repro.workloads.phylogenomic import (
    JOE_RELEVANT,
    MARY_RELEVANT,
    MODULE_TASKS,
    phylogenomic_run,
    phylogenomic_spec,
)
from repro.zoom.canned import provenance_difference


def describe_view(session: Session) -> None:
    view = session.view
    print("  view size %d:" % view.size())
    for composite in sorted(view.composites):
        members = sorted(view.members(composite))
        tasks = "; ".join(MODULE_TASKS[m] for m in members)
        print("    %-8s = %-20s (%s)" % (composite, members, tasks))


def main() -> None:
    spec = phylogenomic_spec()
    run = phylogenomic_run(spec)
    warehouse = InMemoryWarehouse()
    spec_id = warehouse.store_spec(spec)
    run_id = warehouse.store_run(run, spec_id)

    print("Phylogenomic inference of protein function (paper Fig. 1/2)")
    print("run: %d steps, %d data objects, final output d447\n"
          % (run.num_steps(), len(run.data_ids())))

    # --- Joe ---------------------------------------------------------
    joe = Session(warehouse, spec_id, user="Joe")
    joe.set_relevant(JOE_RELEVANT)
    print("Joe flags %s as relevant." % sorted(JOE_RELEVANT))
    describe_view(joe)

    joe_imm = joe.immediate_provenance(run_id, "d413")
    (joe_step,) = joe_imm.steps()
    print(
        "\n  Joe's immediate provenance of d413: step %s with %d inputs "
        "(the whole alignment input d308..d408)"
        % (joe_step, joe_imm.num_tuples())
    )
    print("  d411 visible to Joe? %s" % ("d411" in joe.visible_data(run_id)))

    joe_deep = joe.deep_provenance(run_id, "d447")
    print(
        "  Joe's deep provenance of d447: %d tuples, steps %s"
        % (joe_deep.num_tuples(), sorted(joe_deep.steps()))
    )

    # --- Mary --------------------------------------------------------
    mary = Session(warehouse, spec_id, user="Mary")
    mary.set_relevant(MARY_RELEVANT)
    print("\nMary also flags M5 (alignment rectification).")
    describe_view(mary)

    mary_imm = mary.immediate_provenance(run_id, "d413")
    (mary_step,) = mary_imm.steps()
    print(
        "\n  Mary's immediate provenance of d413: step %s with input %s"
        % (mary_step, sorted(mary_imm.data() - {"d413"}))
    )
    print("  d411 visible to Mary? %s" % ("d411" in mary.visible_data(run_id)))

    mary_deep = mary.deep_provenance(run_id, "d447")
    print(
        "  Mary's deep provenance of d447: %d tuples, steps %s"
        % (mary_deep.num_tuples(), sorted(mary_deep.steps()))
    )

    # --- What the finer view reveals ----------------------------------
    diff = provenance_difference(joe_deep, mary_deep)
    print(
        "\nMary's finer view reveals data Joe never sees: %s"
        % sorted(diff["data_revealed"])
    )

    # --- The Fig. 9 display -------------------------------------------
    print("\nJoe's provenance graph of d447 (Graphviz DOT, paper Fig. 9):\n")
    print(joe.render_provenance(run_id, "d447"))


if __name__ == "__main__":
    main()
