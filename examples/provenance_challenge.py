#!/usr/bin/env python
"""The First Provenance Challenge, answered through user views.

The paper's provenance model was exercised on the First Provenance
Challenge (its reference [5]); this example replays that exercise with
this library: the challenge's fMRI workflow (align/reslice per anatomy
image, softmean, slicer/convert per axis), its canonical queries at two
granularities, an OPM export with one account per view, and the privacy
reading of views via the access-controlled warehouse.

Run it with::

    python examples/provenance_challenge.py
"""

from __future__ import annotations

from repro import InMemoryWarehouse
from repro.core.composite import CompositeRun
from repro.core.view import admin_view
from repro.provenance.opm import account_overlap, export_opm
from repro.workloads.provchallenge import (
    challenge_run,
    challenge_spec,
    q1_process_that_led_to,
    q2_inputs_that_led_to,
    q4_everything_derived_from,
    q5_outputs_affected_by,
    q6_common_ancestry,
    stage_view,
)
from repro.zoom.access import AccessDenied, GuardedWarehouse, ViewPolicy


def main() -> None:
    spec = challenge_spec()
    run = challenge_run(spec)
    admin = CompositeRun(run, admin_view(spec))
    staged = CompositeRun(run, stage_view(spec))

    print("fMRI atlas workflow: %d modules, run of %d steps\n"
          % (len(spec), run.num_steps()))

    # --- The challenge queries, at two granularities -------------------
    print("Q1  process that led to graphic_x:")
    print("    step level : %s" % sorted(q1_process_that_led_to(admin, "graphic_x")))
    print("    stage level: %s" % sorted(q1_process_that_led_to(staged, "graphic_x")))

    print("Q2  original inputs behind graphic_z: %d objects"
          % len(q2_inputs_that_led_to(admin, "graphic_z")))

    print("Q4  everything derived from anatomy2_img:")
    print("    step level : %s" % sorted(q4_everything_derived_from(admin, "anatomy2_img")))
    derived_staged = q4_everything_derived_from(staged, "anatomy2_img")
    print("    stage level: %s  (warp2 is internal to the registration "
          "stage)" % sorted(derived_staged))

    print("Q5  outputs affected by anatomy1_img: %s"
          % sorted(q5_outputs_affected_by(admin, "anatomy1_img")))

    print("Q6  common ancestry of graphic_x and graphic_y:")
    print("    step level : %s" % sorted(q6_common_ancestry(admin, "graphic_x", "graphic_y")))
    print("    stage level: %s" % sorted(q6_common_ancestry(staged, "graphic_x", "graphic_y")))

    # --- OPM export: each view is an account ---------------------------
    document = export_opm([admin, staged], run_id=run.run_id)
    overlap = account_overlap(document)
    print("\nOPM export: %d accounts (%s)" % (
        len(document["accounts"]),
        ", ".join(a["account"] for a in document["accounts"])))
    print("artifacts visible in every account: %d" % len(overlap["common"]))
    print("artifacts only the step-level account exposes: %s"
          % sorted(overlap["exclusive"]["UAdmin"])[:6])

    # --- Privacy: views as access control ------------------------------
    warehouse = InMemoryWarehouse()
    spec_id = warehouse.store_spec(spec)
    run_id = warehouse.store_run(run, spec_id)
    warehouse.store_view(stage_view(spec), spec_id, view_id="stages")
    warehouse.store_view(admin_view(spec), spec_id, view_id="full")

    policy = ViewPolicy()
    policy.grant("reviewer", "stages")   # sees stages, not parameters
    policy.grant("operator", "full")
    guarded = GuardedWarehouse(warehouse, policy)

    print("\nAccess control:")
    answer = guarded.deep("reviewer", run_id, "graphic_x")
    print("  reviewer's deep provenance of graphic_x: %d tuples via %r"
          % (answer.num_tuples(), answer.view_name))
    try:
        guarded.immediate("reviewer", run_id, "warp1")
    except Exception as error:  # HiddenDataError
        print("  reviewer asking about warp1: %s" % type(error).__name__)
    full = guarded.immediate("operator", run_id, "warp1")
    print("  operator sees warp1 produced by %s" % sorted(full.steps()))
    try:
        guarded.deep("reviewer", run_id, "graphic_x", view_id="full")
    except AccessDenied as error:
        print("  reviewer requesting the full view: AccessDenied (%s)" % error)
    print("  audit log: %d queries recorded" % len(guarded.audit_log()))


if __name__ == "__main__":
    main()
