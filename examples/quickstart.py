#!/usr/bin/env python
"""Quickstart: build a workflow, run it, ask provenance through a view.

This walks the core API end to end on a small made-up pipeline:

1. define a workflow specification,
2. simulate an execution (producing a run graph and an event log),
3. load everything into a provenance warehouse,
4. flag the modules you care about — RelevUserViewBuilder derives a good
   user view — and ask for the deep provenance of the final result.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    INPUT,
    OUTPUT,
    InMemoryWarehouse,
    Session,
    WorkflowSpec,
    simulate,
)


def main() -> None:
    # 1. A small analysis pipeline: clean the data, run the analysis
    #    (repeating until the fit is acceptable), and render a report.
    spec = WorkflowSpec(
        modules=["clean", "analyze", "check_fit", "plot", "report"],
        edges=[
            (INPUT, "clean"),
            ("clean", "analyze"),
            ("analyze", "check_fit"),
            ("check_fit", "analyze"),  # loop: refine until satisfied
            ("check_fit", "plot"),
            ("plot", "report"),
            ("report", OUTPUT),
        ],
        name="quickstart",
    )
    print("specification: %d modules, %d edges" % (len(spec), spec.num_edges()))

    # 2. Simulate one execution.  Loops are unrolled; every step's reads
    #    and writes are recorded in an event log, as a workflow system
    #    would.
    result = simulate(spec, rng=random.Random(7))
    run = result.run
    print(
        "run: %d steps, %d data objects, loop iterations: %s"
        % (run.num_steps(), len(run.data_ids()),
           dict(result.iterations) or "none")
    )

    # 3. Load the provenance warehouse (swap InMemoryWarehouse for
    #    SqliteWarehouse("warehouse.sqlite") for a persistent store).
    warehouse = InMemoryWarehouse()
    spec_id = warehouse.store_spec(spec)
    run_id = warehouse.store_log(result.log, spec_id)  # ingest via the log

    # 4. Open a session, flag what matters, and query.  The analysis and
    #    the report are the scientifically meaningful steps; cleaning,
    #    fit-checking and plotting are glue the view will absorb.
    session = Session(warehouse, spec_id, user="demo")
    session.set_relevant({"analyze", "report"})
    view = session.view
    print("\nview for relevant={'analyze', 'report'} (size %d):" % view.size())
    for composite in sorted(view.composites):
        print("  %-12s = %s" % (composite, sorted(view.members(composite))))

    answer = session.final_output_provenance(run_id)
    print(
        "\ndeep provenance of %s: %d tuples across %d visible steps"
        % (answer.target, answer.num_tuples(), len(answer.steps()))
    )
    for row in answer.sorted_rows()[:10]:
        print("  %-14s (%s) read %s" % (row.step_id, row.module, row.data_in))
    if answer.num_tuples() > 10:
        print("  ... and %d more rows" % (answer.num_tuples() - 10))
    print("user inputs in the lineage: %s" % sorted(answer.user_inputs))

    # The same question at full (UAdmin) granularity, for contrast.
    admin_answer = session.reasoner.deep(run_id, answer.target)
    print(
        "\nsame query at UAdmin granularity: %d tuples — the view hid %d"
        % (admin_answer.num_tuples(),
           admin_answer.num_tuples() - answer.num_tuples())
    )


if __name__ == "__main__":
    main()
