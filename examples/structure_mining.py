#!/usr/bin/env python
"""The paper's workload methodology, as an algorithm: mine, then generate.

Section V describes how the evaluation workload was built: "we extracted
patterns of workflows (e.g., sequence, loop) and inferred statistics on
their usage ... We then generated simulated workflows by combining
patterns according to usage statistics."  This example performs that
pipeline on the hand-built corpus:

1. mine the pattern structure of every corpus workflow
   (``repro.core.structured``) — which ones are series-parallel, how many
   loops and parallel regions each has, how long the sequences run;
2. turn the mined counts into a frequency profile (a Table I row);
3. generate fresh synthetic workflows from that profile and mine them
   back, confirming the statistics carried over.

Run it with::

    python examples/structure_mining.py
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.structured import mine_structure
from repro.workloads.classes import WorkflowClass
from repro.workloads.generator import generate_workflows
from repro.workloads.library import corpus


def mine_corpus() -> Dict[str, float]:
    """Step 1-2: mine every corpus entry and build a frequency profile."""
    totals = {"sequence": 0, "loop": 0, "parallel": 0}
    print("%-24s %-11s %-6s %-9s %s" % (
        "workflow", "structured", "loops", "parallel", "sequence runs"))
    print("-" * 72)
    for entry in corpus():
        report = mine_structure(entry.spec)
        census = report.census()
        print("%-24s %-11s %-6d %-9d %s" % (
            entry.spec.name, report.structured, census["loop"],
            census["parallel"], report.sequence_lengths))
        for kind in totals:
            totals[kind] += census[kind]
    grand = sum(totals.values())
    profile = {kind: count / grand for kind, count in totals.items()}
    print("\nmined pattern profile: " + ", ".join(
        "%s %.0f%%" % (kind, 100 * share)
        for kind, share in sorted(profile.items())))
    return profile


def generate_from_profile(profile: Dict[str, float]) -> None:
    """Step 3: synthesise workflows from the mined statistics."""
    # Map the mined 'parallel' mass onto the generator's three parallel
    # pattern kinds, as the paper's classes do.
    frequencies = {
        "sequence": profile["sequence"],
        "loop": profile["loop"],
        "parallel_process": profile["parallel"] / 2,
        "synchronization": profile["parallel"] / 2,
    }
    scale = sum(frequencies.values())
    frequencies = {k: v / scale for k, v in frequencies.items()}
    mined_class = WorkflowClass(
        name="Mined",
        description="profile mined from the corpus",
        frequencies=frequencies,
        avg_size=12,
    )
    rng = random.Random(2008)
    batch = generate_workflows(mined_class, 10, rng)
    realized = {"sequence": 0, "loop": 0, "parallel": 0}
    for generated in batch:
        report = mine_structure(generated.spec)
        assert report.structured  # generator output is always structured
        census = report.census()
        for kind in realized:
            realized[kind] += census[kind]
    grand = sum(realized.values())
    print("\ngenerated 10 synthetic workflows from the mined profile;")
    print("re-mined profile of the synthetic batch: " + ", ".join(
        "%s %.0f%%" % (kind, 100 * count / grand)
        for kind, count in sorted(realized.items())))
    sizes = [len(g.spec) for g in batch]
    print("sizes: %s (avg %.1f; corpus avg ~8.8, paper corpus avg 12)"
          % (sizes, sum(sizes) / len(sizes)))


def main() -> None:
    profile = mine_corpus()
    generate_from_profile(profile)


if __name__ == "__main__":
    main()
