#!/usr/bin/env python
"""Evolving needs: refining view granularity interactively.

Section IV of the paper: "As the user's needs evolve, he may modify (add
or remove) the set of modules he considers to be relevant.  The provenance
graph is then automatically modified for the new user view."

This example drives that loop on a synthetic Class 4 (loop-heavy) workflow
— the kind where views pay off the most.  A scientist starts with the
coarsest view, notices an anomaly in the final output, and progressively
flags more modules as relevant, each time re-reading the (growing)
provenance answer, until the culprit loop iteration is visible.  Along the
way it prints the Fig. 11 effect live: result size as a function of how
much is flagged.

Run it with::

    python examples/view_evolution.py
"""

from __future__ import annotations

import random
import time

from repro import InMemoryWarehouse, Session
from repro.workloads.classes import CLASS4, RUN_MEDIUM
from repro.workloads.generator import generate_workflow
from repro.workloads.runs import generate_run


def main() -> None:
    rng = random.Random(404)
    generated = generate_workflow(CLASS4, rng, target_size=20,
                                  name="loopy-analysis")
    spec = generated.spec
    result = generate_run(spec, RUN_MEDIUM, rng)
    print("workflow %r: %d modules (%d loops)" % (
        spec.name, len(spec), len(spec.back_edges())))
    print("run: %d steps, %d data objects, iterations per loop: %s\n" % (
        result.run.num_steps(), len(result.run.data_ids()),
        sorted(result.iterations.values())))

    warehouse = InMemoryWarehouse()
    spec_id = warehouse.store_spec(spec)
    run_id = warehouse.store_run(result.run, spec_id)

    session = Session(warehouse, spec_id, user="scientist")
    target = sorted(result.run.final_outputs())[0]

    # Flag modules a few at a time, biologically-central ones first.
    priority = sorted(generated.suggested_relevant)
    rest = sorted(spec.modules - set(priority))
    schedule = [priority[: max(1, len(priority) // 2)], priority,
                priority + rest[: len(rest) // 2], sorted(spec.modules)]

    print("%-10s %-10s %-12s %-12s %-10s" % (
        "flagged", "view size", "tuples", "steps", "query ms"))
    print("-" * 58)
    previous = None
    for relevant in schedule:
        session.set_relevant(relevant)
        start = time.perf_counter()
        answer = session.deep_provenance(run_id, target)
        elapsed_ms = (time.perf_counter() - start) * 1000
        print("%-10d %-10d %-12d %-12d %-10.1f" % (
            len(relevant), session.view.size(), answer.num_tuples(),
            len(answer.steps()), elapsed_ms))
        if previous is not None:
            assert answer.num_tuples() >= previous, \
                "finer views never shrink the answer"
        previous = answer.num_tuples()

    # At full granularity the unrolled loop iterations are all visible:
    # count how many steps of the answer are repeat executions.
    full = session.deep_provenance(run_id, target)
    repeats = 0
    run = result.run
    for module in spec.modules:
        executions = [s for s in run.steps_of_module(module)
                      if s in full.steps()]
        repeats += max(0, len(executions) - 1)
    print("\nAt UAdmin granularity the answer exposes %d repeat "
          "loop executions;" % repeats)

    # Step back to the coarse view: the same loops collapse into single
    # virtual steps — the conciseness the paper's Fig. 10 measures.
    session.set_relevant(priority)
    coarse = session.deep_provenance(run_id, target)
    print("the UBio-like view folds them into %d virtual steps and "
          "drops the answer from %d to %d tuples." % (
              len(coarse.steps()), full.num_tuples(), coarse.num_tuples()))


if __name__ == "__main__":
    main()
