"""ZOOM*UserViews reproduction.

A from-scratch implementation of *Querying and Managing Provenance through
User Views in Scientific Workflows* (Biton, Cohen-Boulakia, Davidson, Hara
— ICDE 2008): workflow specifications and runs, user views as partitions,
the ``RelevUserViewBuilder`` algorithm with its formal property checkers, a
provenance warehouse with recursive deep-provenance queries, composite
(virtual) executions, and the interactive ZOOM layer.

Quickstart::

    from repro import (
        WorkflowSpec, build_user_view, simulate,
        InMemoryWarehouse, Session,
    )

    spec = WorkflowSpec(["A", "B", "C"],
                        [("input", "A"), ("A", "B"), ("B", "C"), ("C", "output")])
    view = build_user_view(spec, relevant={"B"})
    result = simulate(spec)
    warehouse = InMemoryWarehouse()
    spec_id = warehouse.store_spec(spec)
    run_id = warehouse.store_run(result.run, spec_id)
    session = Session(warehouse, spec_id)
    session.set_relevant({"B"})
    answer = session.final_output_provenance(run_id)
"""

from .core import (
    INPUT,
    OUTPUT,
    CompositeRun,
    CompositeStep,
    HiddenDataError,
    NrPathIndex,
    RelevUserViewBuilder,
    SpecificationError,
    UserView,
    ViewError,
    WorkflowSpec,
    ZoomError,
    admin_view,
    blackbox_view,
    build_user_view,
    check_view,
    is_complete,
    is_minimal,
    is_structured,
    is_well_formed,
    linear_spec,
    local_search_minimize,
    migrate_view,
    mine_structure,
    minimum_view,
    preserves_dataflow,
    satisfies_all,
    spec_diff,
    view_from_partition,
)
from .lint import (
    Finding,
    LintGateError,
    LintReport,
    Linter,
    RuleConfig,
    lint_log,
    lint_run,
    lint_spec,
    lint_view,
    lint_warehouse,
)
from .obs import (
    BoundedCache,
    CacheStats,
    MetricsRegistry,
    format_stats,
    get_registry,
    timed,
)
from .provenance import (
    ProvenanceReasoner,
    ProvenanceResult,
    ProvenanceRow,
    ReexecutionPlanner,
    ReverseProvenanceResult,
    deep_provenance,
    derivation_paths,
    diff_runs,
    export_opm,
    immediate_provenance,
    reverse_provenance,
    shortest_derivation,
)
from .run import (
    EventLog,
    ExecutionParams,
    SimulationResult,
    WorkflowRun,
    log_from_run,
    read_trace,
    replay,
    run_from_log,
    runs_equivalent,
    simulate,
    write_trace,
)
from .warehouse import (
    InMemoryWarehouse,
    ProvenanceWarehouse,
    SqliteWarehouse,
    load_warehouse,
    save_warehouse,
)
from .zoom import GuardedWarehouse, Session, ViewPolicy

__version__ = "1.0.0"

__all__ = [
    "BoundedCache",
    "CacheStats",
    "CompositeRun",
    "CompositeStep",
    "EventLog",
    "ExecutionParams",
    "Finding",
    "GuardedWarehouse",
    "HiddenDataError",
    "INPUT",
    "InMemoryWarehouse",
    "LintGateError",
    "LintReport",
    "Linter",
    "MetricsRegistry",
    "NrPathIndex",
    "OUTPUT",
    "ProvenanceReasoner",
    "ProvenanceResult",
    "ProvenanceRow",
    "ProvenanceWarehouse",
    "ReexecutionPlanner",
    "RelevUserViewBuilder",
    "ReverseProvenanceResult",
    "RuleConfig",
    "Session",
    "SimulationResult",
    "SpecificationError",
    "SqliteWarehouse",
    "UserView",
    "ViewError",
    "ViewPolicy",
    "WorkflowRun",
    "WorkflowSpec",
    "ZoomError",
    "admin_view",
    "blackbox_view",
    "build_user_view",
    "check_view",
    "deep_provenance",
    "derivation_paths",
    "diff_runs",
    "export_opm",
    "format_stats",
    "get_registry",
    "immediate_provenance",
    "is_complete",
    "is_minimal",
    "is_structured",
    "is_well_formed",
    "linear_spec",
    "lint_log",
    "lint_run",
    "lint_spec",
    "lint_view",
    "lint_warehouse",
    "load_warehouse",
    "local_search_minimize",
    "log_from_run",
    "migrate_view",
    "mine_structure",
    "minimum_view",
    "preserves_dataflow",
    "read_trace",
    "replay",
    "reverse_provenance",
    "run_from_log",
    "runs_equivalent",
    "satisfies_all",
    "save_warehouse",
    "shortest_derivation",
    "simulate",
    "spec_diff",
    "timed",
    "view_from_partition",
    "write_trace",
]
