"""Core model: specifications, user views, properties, view construction.

This package implements the paper's primary contribution (Sections II-III):
the workflow-specification model, user views as partitions, the nr-path
machinery, the three properties of a good user view, the
``RelevUserViewBuilder`` algorithm, composite executions and the exact
minimum-view baseline.
"""

from .builder import RelevUserViewBuilder, build_user_view
from .composite import CompositeRun, CompositeStep
from .errors import (
    ExecutionError,
    HiddenDataError,
    LoopNestingError,
    PartitionError,
    QueryError,
    RunError,
    SpecificationError,
    UnknownEntityError,
    ViewError,
    WarehouseError,
    ZoomError,
)
from .evolution import (
    MigrationResult,
    SpecDiff,
    affected_composites,
    migrate_relevant,
    migrate_view,
    spec_diff,
)
from .hierarchy import composite_subspec, refine_composite, zoom_path
from .minimum import gap_example, minimum_view, minimum_view_size
from .optimize import local_search_minimize, optimality_gap
from .paths import NrPathIndex, has_nr_path, nr_reachable
from .properties import (
    ViewReport,
    check_view,
    introduces_loop,
    is_complete,
    is_minimal,
    is_well_formed,
    preserves_dataflow,
    relevant_composites_connected,
    satisfies_all,
)
from .spec import ENDPOINTS, INPUT, OUTPUT, WorkflowSpec, linear_spec
from .structured import (
    LoopRegion,
    ModuleRegion,
    ParallelRegion,
    Region,
    SeriesRegion,
    StructureReport,
    is_structured,
    mine_structure,
)
from .view import UserView, admin_view, blackbox_view, view_from_partition

__all__ = [
    "CompositeRun",
    "CompositeStep",
    "ENDPOINTS",
    "ExecutionError",
    "HiddenDataError",
    "INPUT",
    "LoopNestingError",
    "MigrationResult",
    "LoopRegion",
    "ModuleRegion",
    "NrPathIndex",
    "OUTPUT",
    "ParallelRegion",
    "Region",
    "SeriesRegion",
    "StructureReport",
    "PartitionError",
    "QueryError",
    "RelevUserViewBuilder",
    "RunError",
    "SpecDiff",
    "SpecificationError",
    "UnknownEntityError",
    "UserView",
    "ViewError",
    "ViewReport",
    "WarehouseError",
    "WorkflowSpec",
    "ZoomError",
    "affected_composites",
    "admin_view",
    "blackbox_view",
    "build_user_view",
    "check_view",
    "composite_subspec",
    "gap_example",
    "refine_composite",
    "zoom_path",
    "has_nr_path",
    "local_search_minimize",
    "optimality_gap",
    "introduces_loop",
    "is_complete",
    "is_minimal",
    "is_structured",
    "is_well_formed",
    "linear_spec",
    "migrate_relevant",
    "migrate_view",
    "mine_structure",
    "minimum_view",
    "minimum_view_size",
    "nr_reachable",
    "preserves_dataflow",
    "relevant_composites_connected",
    "satisfies_all",
    "spec_diff",
    "view_from_partition",
]
