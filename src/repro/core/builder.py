"""RelevUserViewBuilder — the paper's view-construction algorithm (Fig. 5).

Given a workflow specification ``G_w`` and a set of relevant modules ``R``,
the algorithm produces a user view that is well-formed (Property 1),
preserves dataflow (Property 2), is complete w.r.t. dataflow (Property 3)
and is minimal — no two of its composites can be merged without breaking the
first three properties (Theorem 1).  It runs in ``O(|N|^2 + |E|)`` time.

The three steps, verbatim from the paper:

1. *Create relevant composite modules.*  For each relevant module ``r``, a
   composite ``C(r)`` collects the non-relevant modules whose only relevant
   nr-successor is ``r`` (``in(r)``) and, among the still-unmarked ones,
   those whose only relevant nr-predecessor is ``r`` (``out(r)``).
2. *Create non-relevant composite modules.*  Remaining modules are grouped
   by their ``(rpred, rsucc)`` signature.
3. *Make the view minimal.*  Pairs of non-relevant composites are merged
   whenever the merge cannot manufacture an nr-path that does not exist in
   the original specification: every exit point of the merged set must see
   the full merged ``rpred`` and every entry point the full merged
   ``rsucc``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import timed
from .errors import ViewError
from .paths import NrPathIndex
from .spec import WorkflowSpec
from .view import UserView


class RelevUserViewBuilder:
    """Builds a good user view from a specification and relevant modules.

    Instances are single-use: construct with the inputs, call :meth:`build`.
    Intermediate artefacts (``in_sets``, ``out_sets``, the pre-merge
    non-relevant groups) remain inspectable afterwards, which the white-box
    tests rely on.

    Parameters
    ----------
    spec:
        The workflow specification.
    relevant:
        The set of relevant module labels (may be empty — the result is
        then a single all-hiding composite, the UBlackBox limit; may be all
        modules — the result is then UAdmin).
    """

    def __init__(self, spec: WorkflowSpec, relevant: Iterable[str]) -> None:
        self.spec = spec
        self.relevant: FrozenSet[str] = frozenset(relevant)
        unknown = self.relevant - spec.modules
        if unknown:
            raise ViewError(
                "relevant modules not in specification: %s" % sorted(unknown)
            )
        self.index = NrPathIndex(spec.graph, self.relevant)
        self.in_sets: Dict[str, Set[str]] = {}
        self.out_sets: Dict[str, Set[str]] = {}
        self.initial_groups: List[FrozenSet[str]] = []
        self._built: Optional[UserView] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @timed("view.build")
    def build(self, name: str = "UView") -> UserView:
        """Run the three steps and return the resulting user view."""
        if self._built is None:
            relevant_parts = self._step1_relevant_composites()
            groups = self._step2_group_nonrelevant()
            self.initial_groups = [frozenset(g) for g in groups]
            merged = self._step3_merge(groups)
            self._built = self._assemble(relevant_parts, merged, name)
        return self._built

    # ------------------------------------------------------------------
    # Step 1 — relevant composites
    # ------------------------------------------------------------------

    def _step1_relevant_composites(self) -> Dict[str, Set[str]]:
        nonrelevant = self.spec.modules - self.relevant
        marked: Set[str] = set()
        for r in sorted(self.relevant):
            in_r = {
                n
                for n in nonrelevant
                if n not in marked and self.index.rsucc(n) == {r}
            }
            marked |= in_r
            self.in_sets[r] = in_r
        for r in sorted(self.relevant):
            out_r = {
                n
                for n in nonrelevant
                if n not in marked and self.index.rpred(n) == {r}
            }
            marked |= out_r
            self.out_sets[r] = out_r
        return {
            r: self.in_sets[r] | self.out_sets[r] | {r}
            for r in sorted(self.relevant)
        }

    # ------------------------------------------------------------------
    # Step 2 — group remaining modules by (rpred, rsucc) signature
    # ------------------------------------------------------------------

    def _step2_group_nonrelevant(self) -> List[Set[str]]:
        taken: Set[str] = set(self.relevant)
        for r in self.relevant:
            taken |= self.in_sets[r]
            taken |= self.out_sets[r]
        groups: Dict[Tuple[FrozenSet[str], FrozenSet[str]], Set[str]] = {}
        for n in sorted(self.spec.modules - taken):
            signature = (self.index.rpred(n), self.index.rsucc(n))
            groups.setdefault(signature, set()).add(n)
        # Deterministic ordering by smallest member label.
        return sorted(groups.values(), key=lambda g: min(g))

    # ------------------------------------------------------------------
    # Step 3 — merge non-relevant composites while safe
    # ------------------------------------------------------------------

    def _mergeable(self, first: Set[str], second: Set[str]) -> bool:
        """Line 23 of Fig. 5: the merge manufactures no new nr-path.

        ``V-`` (entry points) are members with an incoming edge from outside
        the merged set; ``V+`` (exit points) members with an outgoing edge
        to the outside.  The merge is safe iff every exit point already sees
        the merged set's full ``rpred`` and every entry point its full
        ``rsucc`` — then any path through the blob was already possible.
        """
        merged = first | second
        graph = self.spec.graph
        rpred_m = self.index.rpredm(merged)
        rsucc_m = self.index.rsuccm(merged)
        for n in merged:
            has_outside_in = any(p not in merged for p in graph.predecessors(n))
            if has_outside_in and self.index.rsucc(n) != rsucc_m:
                return False
            has_outside_out = any(s not in merged for s in graph.successors(n))
            if has_outside_out and self.index.rpred(n) != rpred_m:
                return False
        return True

    def _step3_merge(self, groups: List[Set[str]]) -> List[Set[str]]:
        changed = True
        while changed:
            changed = False
            n_groups = len(groups)
            for i in range(n_groups):
                if changed:
                    break
                for j in range(i + 1, n_groups):
                    if self._mergeable(groups[i], groups[j]):
                        merged = groups[i] | groups[j]
                        groups = [
                            g for k, g in enumerate(groups) if k not in (i, j)
                        ]
                        groups.append(merged)
                        groups.sort(key=lambda g: min(g))
                        changed = True
                        break
        return groups

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _assemble(
        self,
        relevant_parts: Dict[str, Set[str]],
        nonrelevant_parts: Sequence[Set[str]],
        name: str,
    ) -> UserView:
        composites: Dict[str, Set[str]] = {}
        for r, members in relevant_parts.items():
            comp_name = r if members == {r} else "C[%s]" % r
            composites[comp_name] = members
        for idx, members in enumerate(
            sorted(nonrelevant_parts, key=lambda g: min(g)), start=1
        ):
            composites["N%d" % idx] = set(members)
        return UserView(self.spec, composites, name=name)


def build_user_view(
    spec: WorkflowSpec, relevant: Iterable[str], name: str = "UView"
) -> UserView:
    """One-shot convenience wrapper around :class:`RelevUserViewBuilder`."""
    return RelevUserViewBuilder(spec, relevant).build(name=name)
