"""Composite executions: virtual steps induced by a user view (Section II).

The execution of consecutive steps belonging to the same composite module
forms a *virtual execution* of that composite (the dotted boxes S11-S13 of
the paper's Fig. 2).  Given a run and a user view, each composite's virtual
executions are the weakly connected components of the run graph restricted
to the steps of that composite: steps of the same composite separated by an
external step (e.g. the two alignment iterations around the rectification
step in Mary's view) form distinct virtual executions, while directly
chained ones merge.

A :class:`CompositeRun` materialises the induced run: virtual steps, the
data passed between them, and — crucially for provenance — the data that
became *hidden* because it flows only between members of the same virtual
execution.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

import networkx as nx

from ..obs import timed
from ..run.run import WorkflowRun
from .errors import QueryError, RunError
from .spec import INPUT, OUTPUT
from .view import UserView

_STEP_NUM = re.compile(r"(\d+)$")


def _step_sort_key(step_id: str) -> Tuple[int, str]:
    """Natural ordering for ``S1, S2, ..., S10`` style identifiers."""
    match = _STEP_NUM.search(step_id)
    return (int(match.group(1)) if match else -1, step_id)


@dataclass(frozen=True)
class CompositeStep:
    """One virtual execution of a composite module."""

    step_id: str
    composite: str
    members: FrozenSet[str]

    @property
    def is_virtual(self) -> bool:
        """Whether this groups more than one underlying step."""
        return len(self.members) > 1

    def __str__(self) -> str:
        return "%s:%s" % (self.step_id, self.composite)


class CompositeRun:
    """The run induced by a user view: virtual steps and visible dataflow.

    Parameters
    ----------
    run:
        The (validated) workflow run.
    view:
        A user view of the run's specification.

    Notes
    -----
    Virtual steps that contain a single underlying step keep that step's
    identifier; genuine groups are named ``<composite>.<k>`` with ``k``
    numbering the composite's executions in step order.
    """

    @timed("composite.build")
    def __init__(self, run: WorkflowRun, view: UserView) -> None:
        if view.spec != run.spec:
            raise RunError("view and run refer to different specifications")
        self.run = run
        self.view = view
        self._group_of: Dict[str, str] = {INPUT: INPUT, OUTPUT: OUTPUT}
        self._steps: Dict[str, CompositeStep] = {}
        self._build_groups()
        self._graph = nx.DiGraph()
        self._hidden: Set[str] = set()
        self._build_graph()
        # Reverse consumer map, built lazily on the first reverse query:
        # (producing virtual step, data id) -> consuming virtual steps.
        self._consumer_map: Optional[Dict[Tuple[str, str], Set[str]]] = None

    # ------------------------------------------------------------------
    # Group construction
    # ------------------------------------------------------------------

    def _build_groups(self) -> None:
        by_composite: Dict[str, List[str]] = {}
        for step in self.run.steps():
            composite = self.view.composite_of(step.module)
            by_composite.setdefault(composite, []).append(step.step_id)
        undirected = self.run.graph.to_undirected(as_view=True)
        for composite in sorted(by_composite):
            member_ids = by_composite[composite]
            sub = undirected.subgraph(member_ids)
            components = sorted(
                (sorted(component, key=_step_sort_key)
                 for component in nx.connected_components(sub)),
                key=lambda c: _step_sort_key(c[0]),
            )
            for index, component in enumerate(components, start=1):
                if len(component) == 1:
                    step_id = component[0]
                elif len(components) == 1:
                    step_id = "%s.1" % composite
                else:
                    step_id = "%s.%d" % (composite, index)
                cstep = CompositeStep(
                    step_id=step_id,
                    composite=composite,
                    members=frozenset(component),
                )
                self._steps[step_id] = cstep
                for member in component:
                    self._group_of[member] = step_id

    def _build_graph(self) -> None:
        self._graph.add_nodes_from([INPUT, OUTPUT])
        self._graph.add_nodes_from(self._steps)
        internal_only: Dict[str, bool] = {}
        for src, dst, data_ids in self.run.edges():
            gsrc = self._group_of[src]
            gdst = self._group_of[dst]
            internal = gsrc == gdst
            for data_id in data_ids:
                internal_only[data_id] = internal_only.get(data_id, True) and internal
            if internal:
                continue
            if self._graph.has_edge(gsrc, gdst):
                self._graph.edges[gsrc, gdst]["data"].update(data_ids)
            else:
                self._graph.add_edge(gsrc, gdst, data=set(data_ids))
        self._hidden = {d for d, internal in internal_only.items() if internal}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The induced run graph over virtual steps (treat as read-only)."""
        return self._graph

    def composite_steps(self) -> List[CompositeStep]:
        """All virtual steps, ordered by identifier."""
        return [self._steps[s] for s in sorted(self._steps, key=_step_sort_key)]

    def composite_step(self, step_id: str) -> CompositeStep:
        """Look up one virtual step."""
        try:
            return self._steps[step_id]
        except KeyError:
            raise RunError("unknown composite step %r" % step_id) from None

    def group_of(self, step_id: str) -> str:
        """The virtual step containing an underlying step."""
        try:
            return self._group_of[step_id]
        except KeyError:
            raise RunError("unknown step %r" % step_id) from None

    def executions_of(self, composite: str) -> List[CompositeStep]:
        """All virtual executions of one composite module, in step order."""
        return [
            c for c in self.composite_steps() if c.composite == composite
        ]

    def num_composite_steps(self) -> int:
        """Number of virtual steps in the induced run."""
        return len(self._steps)

    def is_acyclic(self) -> bool:
        """Whether the induced run graph is a DAG.

        Views satisfying Properties 1-3 never create cycles at the run
        level; arbitrary hand-built partitions can.
        """
        return nx.is_directed_acyclic_graph(self._graph)

    # ------------------------------------------------------------------
    # Data visibility
    # ------------------------------------------------------------------

    def hidden_data(self) -> FrozenSet[str]:
        """Data passed only between steps inside one virtual execution."""
        return frozenset(self._hidden)

    def visible_data(self) -> Set[str]:
        """Data observable under this view."""
        return self.run.data_ids() - self._hidden

    def is_visible(self, data_id: str) -> bool:
        """Whether a data object is observable under this view."""
        if data_id not in self.run.data_ids():
            raise RunError("unknown data id %r" % data_id)
        return data_id not in self._hidden

    def producer(self, data_id: str) -> str:
        """The virtual step (or ``input``) that produced a data object."""
        return self._group_of[self.run.producer(data_id)]

    def inputs_of(self, cstep_id: str) -> Set[str]:
        """Data entering a virtual step from outside it."""
        self._require(cstep_id)
        inputs: Set[str] = set()
        for _src, _dst, payload in self._graph.in_edges(cstep_id, data="data"):
            inputs |= payload
        return inputs

    def outputs_of(self, cstep_id: str) -> Set[str]:
        """Data leaving a virtual step."""
        self._require(cstep_id)
        outputs: Set[str] = set()
        for _src, _dst, payload in self._graph.out_edges(cstep_id, data="data"):
            outputs |= payload
        return outputs

    def consumers_of(self, data_id: str) -> List[str]:
        """Virtual steps that received ``data_id`` over an induced edge.

        Served from a reverse consumer map built once per composite run (on
        the first call), so a reverse-provenance traversal costs one pass
        over the induced edges instead of rescanning the producer's
        out-edges for every data object it reaches.
        """
        if self._consumer_map is None:
            self._consumer_map = self._build_consumer_map()
        producer = self.producer(data_id)
        return sorted(self._consumer_map.get((producer, data_id), ()))

    def _build_consumer_map(self) -> Dict[Tuple[str, str], Set[str]]:
        consumers: Dict[Tuple[str, str], Set[str]] = {}
        for src, dst, payload in self._graph.edges(data="data"):
            if payload is None:
                # Every induced edge must carry the set of data objects
                # that crossed it; an edge without one would otherwise
                # surface as a bare TypeError when iterated.
                raise QueryError(
                    "induced edge %r -> %r under view %r has no data payload"
                    % (src, dst, self.view.name)
                )
            if dst == OUTPUT or dst == src:
                continue
            for data_id in payload:
                consumers.setdefault((src, data_id), set()).add(dst)
        return consumers

    def edge_data(self, src: str, dst: str) -> FrozenSet[str]:
        """Data carried by one induced edge."""
        try:
            return frozenset(self._graph.edges[src, dst]["data"])
        except KeyError:
            raise RunError("no induced edge (%r, %r)" % (src, dst)) from None

    def edges(self) -> Iterator[Tuple[str, str, FrozenSet[str]]]:
        """Iterate induced ``(src, dst, data_ids)`` triples."""
        for src, dst, payload in self._graph.edges(data="data"):
            yield src, dst, frozenset(payload)

    def _require(self, node: str) -> None:
        if node not in self._graph:
            raise RunError("unknown composite-run node %r" % node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "CompositeRun(run=%r, view=%r, composite_steps=%d)" % (
            self.run.run_id,
            self.view.name,
            len(self._steps),
        )
