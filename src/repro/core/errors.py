"""Exception hierarchy for the ZOOM reproduction.

All library errors derive from :class:`ZoomError` so applications can catch a
single base class.  The hierarchy mirrors the layers of the system: model
construction, view construction, execution, warehouse access and querying.
"""

from __future__ import annotations


class ZoomError(Exception):
    """Base class for all errors raised by this library."""


class SpecificationError(ZoomError):
    """A workflow specification violates the model of Section II.

    Raised when a graph is not a legal workflow specification: missing
    ``input``/``output`` nodes, a node not on any ``input``-to-``output``
    path, duplicate module labels, or edges touching reserved node names.
    """


class ViewError(ZoomError):
    """A user view is malformed (not a partition, unknown modules, ...)."""


class PartitionError(ViewError):
    """A user view is not a partition of the specification's modules."""


class RunError(ZoomError):
    """A workflow run graph is malformed or inconsistent with its spec."""


class ExecutionError(ZoomError):
    """The execution simulator cannot run the given specification."""


class LoopNestingError(ExecutionError):
    """The simulator only supports non-nested (disjoint) loops.

    The synthetic workload generator never produces nested loops, matching
    the structured workflows of the paper's corpus; a specification with
    nested back edges is rejected explicitly rather than mis-executed.
    """


class WarehouseError(ZoomError):
    """A provenance-warehouse operation failed."""


class UnknownEntityError(WarehouseError):
    """A referenced spec/run/view/step/data id is not in the warehouse."""


class QueryError(ZoomError):
    """A provenance query is invalid (e.g. asks about hidden data)."""


class HiddenDataError(QueryError):
    """The queried data object is internal to a composite execution.

    Under a user view, data passed between steps inside the same composite
    execution is not visible (Section II, "Composite executions"); queries
    naming such data are rejected with this error rather than answered with
    information the view is meant to hide.
    """
