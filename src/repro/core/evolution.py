"""Workflow evolution: spec diffs and view migration across versions.

Scientific workflows are "rapidly evolving" (the paper's related work):
modules get added, renamed and rewired between versions.  Two practical
questions follow for a provenance system built on user views:

* *what changed* between two versions of a specification
  (:func:`spec_diff`), and
* *what happens to a user's view* — the relevant set a biologist curated
  for version 1 should carry over to version 2 without re-flagging
  everything (:func:`migrate_relevant` / :func:`migrate_view`).

Migration keeps the surviving relevant modules (optionally following a
rename mapping) and rebuilds the view with ``RelevUserViewBuilder`` on the
new specification, so the result is again well-formed, dataflow-preserving,
complete and minimal by Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from .builder import build_user_view
from .spec import WorkflowSpec
from .view import UserView


@dataclass(frozen=True)
class SpecDiff:
    """Structural difference between two specification versions."""

    added_modules: FrozenSet[str]
    removed_modules: FrozenSet[str]
    added_edges: FrozenSet[Tuple[str, str]]
    removed_edges: FrozenSet[Tuple[str, str]]

    def is_empty(self) -> bool:
        """Whether the two versions are structurally identical."""
        return not (
            self.added_modules
            or self.removed_modules
            or self.added_edges
            or self.removed_edges
        )

    def summary(self) -> Dict[str, List]:
        """Compact JSON-friendly description."""
        return {
            "added_modules": sorted(self.added_modules),
            "removed_modules": sorted(self.removed_modules),
            "added_edges": sorted(self.added_edges),
            "removed_edges": sorted(self.removed_edges),
        }


def spec_diff(old: WorkflowSpec, new: WorkflowSpec) -> SpecDiff:
    """Modules and edges added/removed between two versions."""
    old_edges = set(old.edges())
    new_edges = set(new.edges())
    return SpecDiff(
        added_modules=frozenset(new.modules - old.modules),
        removed_modules=frozenset(old.modules - new.modules),
        added_edges=frozenset(new_edges - old_edges),
        removed_edges=frozenset(old_edges - new_edges),
    )


@dataclass
class MigrationResult:
    """Outcome of carrying a relevant set to a new specification version."""

    view: UserView
    kept: FrozenSet[str]
    dropped: FrozenSet[str]
    renamed: Dict[str, str] = field(default_factory=dict)

    def clean(self) -> bool:
        """Whether every previously relevant module survived."""
        return not self.dropped


def migrate_relevant(
    relevant: Iterable[str],
    new_spec: WorkflowSpec,
    renames: Optional[Mapping[str, str]] = None,
) -> Tuple[FrozenSet[str], FrozenSet[str], Dict[str, str]]:
    """Split a relevant set into (surviving, dropped, renames applied).

    ``renames`` maps old module names to new ones (e.g. ``run_alignment``
    became ``run_msa``); unmapped modules survive iff the new spec still
    has them.
    """
    renames = dict(renames or {})
    kept: Set[str] = set()
    dropped: Set[str] = set()
    applied: Dict[str, str] = {}
    for module in relevant:
        target = renames.get(module, module)
        if target in new_spec.modules:
            kept.add(target)
            if target != module:
                applied[module] = target
        else:
            dropped.add(module)
    return frozenset(kept), frozenset(dropped), applied


def migrate_view(
    old_relevant: Iterable[str],
    new_spec: WorkflowSpec,
    renames: Optional[Mapping[str, str]] = None,
    name: str = "UMigrated",
) -> MigrationResult:
    """Rebuild a user's view against a new specification version.

    The surviving relevant modules drive ``RelevUserViewBuilder`` on the
    new spec; the result records which modules were dropped so the UI can
    tell the user their view lost (or renamed) anchors.
    """
    kept, dropped, applied = migrate_relevant(old_relevant, new_spec, renames)
    view = build_user_view(new_spec, kept, name=name)
    return MigrationResult(
        view=view, kept=kept, dropped=dropped, renamed=applied
    )


def affected_composites(
    view: UserView, diff: SpecDiff
) -> FrozenSet[str]:
    """Composites of an *old-spec* view touched by a version change.

    A composite is affected when it loses a member or when an
    added/removed edge has an endpoint inside it — the set a cache layer
    must invalidate when the workflow definition is updated.
    """
    touched: Set[str] = set()
    for module in diff.removed_modules:
        if module in view.spec.modules:
            touched.add(view.composite_of(module))
    for src, dst in diff.added_edges | diff.removed_edges:
        for endpoint in (src, dst):
            if endpoint in view.spec.modules:
                touched.add(view.composite_of(endpoint))
    return frozenset(touched)
