"""Hierarchical views: refining a composite by zooming into it.

The paper's conclusion sketches how user views compose with existing
composite-module mechanisms: "by viewing each composite module as itself
being a workflow and marking relevant atomic modules contained within it".
This module implements that zoom-in:

* :func:`composite_subspec` extracts one composite's members as a
  standalone two-terminal workflow (outside producers collapse to
  ``input``, outside consumers to ``output``);
* :func:`refine_composite` runs ``RelevUserViewBuilder`` *inside* the
  composite and splices the resulting sub-composites back into the outer
  view.

The canonical demonstration (pinned by tests): starting from Joe's view of
the phylogenomic workflow and flagging the rectification module M5 inside
his alignment composite M10 yields exactly Mary's view — hierarchical
refinement recovers what building from scratch with the larger relevant
set would have produced.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .builder import build_user_view
from .errors import ViewError
from .spec import INPUT, OUTPUT, WorkflowSpec
from .view import UserView


def composite_subspec(view: UserView, composite: str) -> WorkflowSpec:
    """The sub-workflow a composite module stands for.

    Members keep their labels and internal edges; every member fed from
    outside the composite hangs off the sub-workflow's ``input`` and every
    member feeding the outside reaches its ``output``.  The result is a
    valid specification (each member of a composite built from a run- or
    dataflow-connected grouping lies on an input-output path).
    """
    members = view.members(composite)
    outer = view.spec.graph
    edges: List[Tuple[str, str]] = []
    entries: Set[str] = set()
    exits: Set[str] = set()
    for module in sorted(members):
        for pred in outer.predecessors(module):
            if pred in members:
                edges.append((pred, module))
            else:
                entries.add(module)
        for succ in outer.successors(module):
            if succ not in members:
                exits.add(module)
    edges.extend((INPUT, module) for module in sorted(entries))
    edges.extend((module, OUTPUT) for module in sorted(exits))
    return WorkflowSpec(
        sorted(members), edges, name="%s/%s" % (view.spec.name, composite)
    )


def refine_composite(
    view: UserView,
    composite: str,
    relevant_within: Iterable[str],
    name: Optional[str] = None,
) -> UserView:
    """Split one composite by flagging relevant modules inside it.

    The composite's members are treated as their own workflow
    (:func:`composite_subspec`); ``RelevUserViewBuilder`` partitions them
    around ``relevant_within``; the sub-composites replace the original
    composite in the outer view.  Sub-composite names are prefixed with
    the original composite's name when they would collide.

    Raises :class:`ViewError` when ``relevant_within`` is not a subset of
    the composite's members.
    """
    members = view.members(composite)
    relevant = frozenset(relevant_within)
    outside = relevant - members
    if outside:
        raise ViewError(
            "modules %s are not inside composite %r"
            % (sorted(outside), composite)
        )
    subspec = composite_subspec(view, composite)
    subview = build_user_view(subspec, relevant)
    composites: Dict[str, Set[str]] = {
        existing: set(view.members(existing))
        for existing in view.composites
        if existing != composite
    }
    for sub_name in subview.composites:
        target = sub_name
        if target in composites:
            target = "%s.%s" % (composite, sub_name)
        while target in composites:  # pragma: no cover - double collision
            target = "_" + target
        composites[target] = set(subview.members(sub_name))
    return UserView(
        view.spec, composites, name=name or "%s+%s" % (view.name, composite)
    )


def zoom_path(
    spec: WorkflowSpec,
    steps: Iterable[Tuple[str, FrozenSet[str]]],
    initial_relevant: Iterable[str],
    name: str = "UZoomed",
) -> UserView:
    """Apply a sequence of refinements: build, then zoom repeatedly.

    ``steps`` is a list of ``(composite name, relevant inside it)`` pairs
    applied in order to the view built from ``initial_relevant`` — the
    programmatic form of a user drilling down level by level.
    """
    view = build_user_view(spec, initial_relevant, name=name)
    for composite, relevant_within in steps:
        view = refine_composite(view, composite, relevant_within, name=name)
    return view
