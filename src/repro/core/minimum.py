"""Exhaustive search for a *minimum* user view (the paper's open problem).

``RelevUserViewBuilder`` guarantees a *minimal* view — no two composites can
be merged — but not a *minimum* one (smallest possible size); Fig. 7 of the
paper exhibits a workflow where the algorithm returns size 5 while size 4 is
achievable.  Whether a polynomial algorithm for the minimum exists is left
open.

This module provides a branch-and-bound exact solver over set partitions,
usable on small specifications (≈ a dozen modules).  It serves two roles in
the reproduction:

* a ground-truth baseline for the ``ablation_minimum`` benchmark, measuring
  how far the polynomial algorithm's view size is from optimal, and
* an independent oracle in tests that the builder's output is never
  *smaller* than the true minimum and always within the observed gap.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from .errors import ViewError
from .properties import satisfies_all
from .spec import WorkflowSpec
from .view import UserView, view_from_partition

#: Default cap on the number of modules the exact solver will accept.
DEFAULT_MAX_MODULES = 12


def gap_example() -> Tuple[WorkflowSpec, FrozenSet[str]]:
    """A concrete Fig. 7-style instance: minimal is not minimum.

    ``RelevUserViewBuilder`` groups the same-signature modules ``a`` and
    ``b`` into one composite and gets stuck at size 6 (provably minimal —
    no pairwise merge helps), while the true minimum of size 5 splits the
    pair: ``a`` joins ``x`` and ``b`` joins ``y``, exactly the paper's
    observation that the minimum "does not combine modules with same
    rpred/rsucc".  Used by tests and the ``ablation_minimum`` benchmark.
    """
    from .spec import INPUT, OUTPUT

    spec = WorkflowSpec(
        ["r1", "r2", "r3", "x", "y", "a", "b"],
        [
            (INPUT, "x"),
            (INPUT, "y"),
            ("x", "a"),
            ("x", "r3"),
            ("y", "b"),
            ("y", OUTPUT),
            ("a", "r1"),
            ("a", "r2"),
            ("b", "r1"),
            ("b", "r2"),
            ("r1", OUTPUT),
            ("r2", OUTPUT),
            ("r3", OUTPUT),
        ],
        name="fig7-gap",
    )
    return spec, frozenset({"r1", "r2", "r3"})


def minimum_view(
    spec: WorkflowSpec,
    relevant: Iterable[str],
    max_modules: int = DEFAULT_MAX_MODULES,
    name: str = "UMin",
) -> UserView:
    """Find a user view of minimum size satisfying Properties 1-3.

    Parameters
    ----------
    spec:
        The workflow specification (at most ``max_modules`` modules).
    relevant:
        The relevant module set.
    max_modules:
        Safety cap — partition enumeration is exponential, so larger
        specifications are rejected rather than silently hanging.

    Returns
    -------
    UserView
        A minimum-size view satisfying Properties 1-3.  The admin view
        (every module alone) always satisfies them, so a solution exists.

    Raises
    ------
    ViewError
        If the specification exceeds ``max_modules``.
    """
    rel = frozenset(relevant)
    unknown = rel - spec.modules
    if unknown:
        raise ViewError("relevant modules not in specification: %s" % sorted(unknown))
    modules = sorted(spec.modules)
    if len(modules) > max_modules:
        raise ViewError(
            "exact minimum search limited to %d modules (got %d)"
            % (max_modules, len(modules))
        )
    # Place relevant modules first: they are pairwise forced into distinct
    # blocks (Property 1), which tightens the branch-and-bound lower bound.
    ordered = sorted(rel) + [m for m in modules if m not in rel]
    searcher = _PartitionSearch(spec, rel, ordered)
    best = searcher.run()
    assert best is not None  # admin view always qualifies
    return view_from_partition(spec, best, name=name)


def minimum_view_size(
    spec: WorkflowSpec,
    relevant: Iterable[str],
    max_modules: int = DEFAULT_MAX_MODULES,
) -> int:
    """Size of the minimum view — convenience for benchmarks and tests."""
    return minimum_view(spec, relevant, max_modules=max_modules).size()


class _PartitionSearch:
    """Branch-and-bound enumeration of well-formed partitions.

    Items are assigned one at a time either to an existing block (if that
    keeps at most one relevant module per block) or to a fresh block.
    Branches whose block count already reaches the best known size are cut;
    complete partitions are validated with the full property oracle.
    """

    def __init__(
        self, spec: WorkflowSpec, relevant: FrozenSet[str], ordered: Sequence[str]
    ) -> None:
        self.spec = spec
        self.relevant = relevant
        self.ordered = list(ordered)
        self.best_size: int = len(ordered) + 1
        self.best: Optional[List[Set[str]]] = None
        self.lower_bound = max(1, len(relevant))

    def run(self) -> Optional[List[Set[str]]]:
        self._assign(0, [], 0)
        return self.best

    def _assign(self, idx: int, blocks: List[Set[str]], relevant_blocks: int) -> None:
        if self.best_size == self.lower_bound:
            return  # cannot do better than the lower bound
        if idx == len(self.ordered):
            self._consider(blocks)
            return
        item = self.ordered[idx]
        item_relevant = item in self.relevant
        remaining_relevant = sum(
            1 for m in self.ordered[idx:] if m in self.relevant
        )
        # Bound: final size is at least current blocks plus the relevant
        # modules still to place that cannot share existing relevant-free
        # blocks... conservatively, plus those that will each need a block
        # beyond the relevant-capacity of existing blocks.
        free_capacity = len(blocks) - relevant_blocks
        extra_needed = max(0, remaining_relevant - free_capacity)
        if len(blocks) + extra_needed >= self.best_size:
            return
        for block in blocks:
            if item_relevant and block & self.relevant:
                continue  # Property 1 would be violated
            block.add(item)
            self._assign(
                idx + 1, blocks, relevant_blocks + (1 if item_relevant else 0)
            )
            block.discard(item)
        if len(blocks) + 1 < self.best_size:
            blocks.append({item})
            self._assign(
                idx + 1, blocks, relevant_blocks + (1 if item_relevant else 0)
            )
            blocks.pop()

    def _consider(self, blocks: List[Set[str]]) -> None:
        if len(blocks) >= self.best_size:
            return
        candidate = view_from_partition(
            self.spec, [set(b) for b in blocks], name="candidate"
        )
        if satisfies_all(candidate, self.relevant):
            self.best_size = len(blocks)
            self.best = [set(b) for b in blocks]
