"""Local-search view optimisation: chasing the minimum beyond minimality.

``RelevUserViewBuilder`` guarantees a *minimal* view — no two composites
can be merged — but the paper's Fig. 7 shows minimal need not be *minimum*:
sometimes a smaller view exists that no sequence of pairwise merges can
reach, because it groups modules with *different* rpred/rsucc signatures.
Whether a polynomial algorithm always finds the minimum is the paper's
open problem.

This module attacks the gap heuristically: :func:`local_search_minimize`
explores single-module *moves* between composites (including into fresh
composites) in addition to pairwise merges, accepting any change that
keeps Properties 1-3 and never increases the view size.  Moves can empty a
composite — exactly the escape hatch Fig. 7 requires — so the search can
cross ridges pairwise merging cannot.  The result is still validated
against the property oracle after every step, and the `ablation_minimum`
benchmark measures how often the heuristic closes the optimality gap that
exhaustive search exposes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from .builder import build_user_view
from .errors import ViewError
from .properties import satisfies_all
from .spec import WorkflowSpec
from .view import UserView, view_from_partition

#: Safety bound on improvement rounds (each round scans all moves once).
_MAX_ROUNDS = 50

#: Largest composite the evacuation move will try to disband (placement is
#: exponential in the composite's size).
_MAX_EVACUATION = 6


def _partition_sets(view: UserView) -> List[Set[str]]:
    return [set(view.members(c)) for c in sorted(view.composites)]


def _as_view(spec: WorkflowSpec, parts: Iterable[Set[str]], name: str) -> UserView:
    return view_from_partition(
        spec, [p for p in parts if p], name=name
    )


def _try_candidate(
    spec: WorkflowSpec,
    parts: List[Set[str]],
    relevant: FrozenSet[str],
    name: str,
) -> Optional[UserView]:
    candidate = _as_view(spec, parts, name)
    if satisfies_all(candidate, relevant):
        return candidate
    return None


def local_search_minimize(
    spec: WorkflowSpec,
    relevant: Iterable[str],
    start: Optional[UserView] = None,
    name: str = "UOpt",
) -> UserView:
    """Shrink a good view by module moves and merges until a local optimum.

    Parameters
    ----------
    spec / relevant:
        The view-construction inputs.
    start:
        The initial view; defaults to ``RelevUserViewBuilder``'s output.
        Must satisfy Properties 1-3 for the given relevant set.

    Returns
    -------
    UserView
        A view satisfying Properties 1-3 with size at most the start's.
        (Equal to the true minimum in every instance the ablation
        benchmark samples, but not guaranteed — the underlying problem is
        open.)
    """
    rel = frozenset(relevant)
    unknown = rel - spec.modules
    if unknown:
        raise ViewError("relevant modules not in specification: %s" % sorted(unknown))
    view = start if start is not None else build_user_view(spec, rel)
    if not satisfies_all(view, rel):
        raise ViewError("the starting view does not satisfy Properties 1-3")
    for _round in range(_MAX_ROUNDS):
        improved = _one_round(spec, rel, view, name)
        if improved is None:
            return view.relabelled({}, name=name)
        view = improved
    return view.relabelled({}, name=name)  # pragma: no cover - bounded search


def _one_round(
    spec: WorkflowSpec,
    relevant: FrozenSet[str],
    view: UserView,
    name: str,
) -> Optional[UserView]:
    """One improvement pass; returns a strictly smaller view or ``None``."""
    parts = _partition_sets(view)
    # 1. Pairwise merges (cheap, resolves most residual slack).
    for i in range(len(parts)):
        for j in range(i + 1, len(parts)):
            merged = [p for k, p in enumerate(parts) if k not in (i, j)]
            merged.append(parts[i] | parts[j])
            candidate = _try_candidate(spec, merged, relevant, name)
            if candidate is not None:
                return candidate
    # 2. Evacuations: disband one composite entirely, scattering each of
    #    its (non-relevant) members into some other composite.  This is the
    #    Fig. 7 move — it can only succeed when every member finds a home,
    #    shrinking the view by one.
    for i, source in enumerate(parts):
        if source & relevant:
            continue  # relevant composites cannot disband (Property 1)
        if len(source) > _MAX_EVACUATION:
            continue  # placement is exponential in the composite size
        others = [set(p) for k, p in enumerate(parts) if k != i]
        placement = _place_all(spec, relevant, sorted(source), others, name)
        if placement is not None:
            return placement
    return None


def _place_all(
    spec: WorkflowSpec,
    relevant: FrozenSet[str],
    homeless: List[str],
    parts: List[Set[str]],
    name: str,
) -> Optional[UserView]:
    """Backtracking placement of modules into existing composites."""
    if not homeless:
        return _try_candidate(spec, parts, relevant, name)
    module, rest = homeless[0], homeless[1:]
    for target in parts:
        target.add(module)
        # Quick structural filter: the full property check runs only on
        # complete placements; partial states are only sanity-bounded.
        result = _place_all(spec, relevant, rest, parts, name)
        if result is not None:
            return result
        target.discard(module)
    return None


def optimality_gap(
    spec: WorkflowSpec,
    relevant: Iterable[str],
    exact_size: Optional[int] = None,
) -> Tuple[int, int, Optional[int]]:
    """(builder size, local-search size, exact minimum if provided/known).

    Convenience for experiments: runs the builder and the local search and
    pairs them with an externally computed exact minimum (from
    :func:`repro.core.minimum.minimum_view_size`) when available.
    """
    rel = frozenset(relevant)
    built = build_user_view(spec, rel)
    optimised = local_search_minimize(spec, rel, start=built)
    return built.size(), optimised.size(), exact_size
