"""nr-path machinery (Section III of the paper).

An *nr-path* between two nodes is a path whose **intermediate** nodes contain
no relevant module.  The endpoints themselves may be relevant.  The paper's
algorithm and properties are all phrased in terms of four derived functions:

``rpred(n)``
    relevant modules (or ``input``) from which ``n`` is reachable by an
    nr-path,
``rsucc(n)``
    relevant modules (or ``output``) reachable from ``n`` by an nr-path,
``rpredm(M)`` / ``rsuccm(M)``
    unions of the above over a set of nodes ``M``.

These are computed for *all* nodes at once by one forward traversal per
source in ``R ∪ {input}`` and one backward traversal per sink in
``R ∪ {output}``, stopping at relevant nodes; total cost is
``O(|R| * |E|)``, well within the paper's ``O(|N|^2 + |E|)`` bound.

The functions here operate on any :class:`networkx.DiGraph`, so they can be
applied both to a workflow specification and to an induced view graph (whose
"relevant" nodes are the composites containing a relevant module).
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Dict, FrozenSet, Iterable, Set, Tuple

import networkx as nx

from .spec import INPUT, OUTPUT


def _spread(
    graph: nx.DiGraph,
    source: str,
    relevant: AbstractSet[str],
    forward: bool,
) -> Set[str]:
    """Nodes reachable from ``source`` via nr-paths, in one direction.

    Traverses edges (forward or backward), never *expanding* a relevant node
    — relevant nodes are recorded as reachable endpoints but their own
    neighbours are not explored through them.  The source itself is not
    included unless reachable by a (non-empty) nr-path cycle.
    """
    neighbours = graph.successors if forward else graph.predecessors
    reached: Set[str] = set()
    queue = deque([source])
    expanded: Set[str] = {source}
    while queue:
        node = queue.popleft()
        for nxt in neighbours(node):
            if nxt not in reached:
                reached.add(nxt)
                if nxt not in relevant and nxt not in expanded:
                    expanded.add(nxt)
                    queue.append(nxt)
    return reached


class NrPathIndex:
    """Precomputed rpred/rsucc tables for one (graph, relevant-set) pair.

    Parameters
    ----------
    graph:
        The directed graph; must contain ``input`` and ``output`` nodes.
    relevant:
        The set of relevant nodes (subset of the graph's ordinary nodes).
    """

    def __init__(self, graph: nx.DiGraph, relevant: Iterable[str]) -> None:
        self._graph = graph
        self.relevant: FrozenSet[str] = frozenset(relevant)
        unknown = self.relevant - set(graph.nodes)
        if unknown:
            raise ValueError("relevant nodes not in graph: %s" % sorted(unknown))
        # Relevant nodes block traversal in both directions; input/output are
        # natural endpoints and need no special blocking (input has no
        # in-edges, output no out-edges).
        blockers = self.relevant
        self._rpred: Dict[str, Set[str]] = {n: set() for n in graph.nodes}
        self._rsucc: Dict[str, Set[str]] = {n: set() for n in graph.nodes}
        for src in sorted(self.relevant | {INPUT}):
            for node in _spread(graph, src, blockers, forward=True):
                self._rpred[node].add(src)
        for snk in sorted(self.relevant | {OUTPUT}):
            for node in _spread(graph, snk, blockers, forward=False):
                self._rsucc[node].add(snk)

    # ------------------------------------------------------------------
    # The paper's four functions
    # ------------------------------------------------------------------

    def rpred(self, node: str) -> FrozenSet[str]:
        """Relevant predecessors of ``node`` connected by nr-paths."""
        return frozenset(self._rpred[node])

    def rsucc(self, node: str) -> FrozenSet[str]:
        """Relevant successors of ``node`` connected by nr-paths."""
        return frozenset(self._rsucc[node])

    def rpredm(self, nodes: Iterable[str]) -> FrozenSet[str]:
        """Union of :meth:`rpred` over a set of nodes."""
        out: Set[str] = set()
        for node in nodes:
            out |= self._rpred[node]
        return frozenset(out)

    def rsuccm(self, nodes: Iterable[str]) -> FrozenSet[str]:
        """Union of :meth:`rsucc` over a set of nodes."""
        out: Set[str] = set()
        for node in nodes:
            out |= self._rsucc[node]
        return frozenset(out)

    # ------------------------------------------------------------------
    # Edge-level helpers used by the property checkers
    # ------------------------------------------------------------------

    def edge_sources(self, edge: Tuple[str, str]) -> FrozenSet[str]:
        """Relevant endpoints from which an nr-path can enter ``edge``.

        An nr-path from ``r`` passing *through* edge ``(u, v)`` requires an
        nr-path from ``r`` to ``u`` in which ``u`` is not a blocking
        intermediate.  If ``u`` is itself relevant (or ``input``) the only
        possible source is ``u``; otherwise any member of ``rpred(u)``.
        """
        u, _v = edge
        if u in self.relevant or u == INPUT:
            return frozenset({u})
        return self.rpred(u)

    def edge_sinks(self, edge: Tuple[str, str]) -> FrozenSet[str]:
        """Relevant endpoints an nr-path can reach after crossing ``edge``."""
        _u, v = edge
        if v in self.relevant or v == OUTPUT:
            return frozenset({v})
        return self.rsucc(v)

    def edge_pairs(self, edge: Tuple[str, str]) -> FrozenSet[Tuple[str, str]]:
        """All ``(r, r')`` pairs such that ``edge`` lies on an nr-path r→r'."""
        sources = self.edge_sources(edge)
        sinks = self.edge_sinks(edge)
        return frozenset((r, s) for r in sources for s in sinks)

    def has_nr_path(self, start: str, end: str) -> bool:
        """Whether an nr-path (no relevant intermediates) connects two nodes."""
        if self._graph.has_edge(start, end):
            return True
        return end in _spread(self._graph, start, self.relevant, forward=True)


def nr_reachable(graph: nx.DiGraph, start: str, relevant: AbstractSet[str]) -> Set[str]:
    """All nodes reachable from ``start`` via nr-paths in ``graph``.

    Standalone convenience for callers that do not need a full index.
    """
    return _spread(graph, start, frozenset(relevant), forward=True)


def has_nr_path(
    graph: nx.DiGraph, start: str, end: str, relevant: AbstractSet[str]
) -> bool:
    """Whether ``graph`` contains an nr-path from ``start`` to ``end``."""
    return end in nr_reachable(graph, start, relevant)
