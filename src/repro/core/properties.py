"""Checkers for the paper's properties of a good user view (Section III).

Given a specification ``G_w``, a set of relevant modules ``R`` and a user
view ``U``, the paper defines:

Property 1 (*well-formed*)
    every composite module contains at most one relevant module;
Property 2 (*preserves dataflow*)
    every edge of ``G_w`` that induces an edge lying on an nr-path from
    ``C(r)`` to ``C(r')`` in ``U(G_w)`` itself lies on an nr-path from ``r``
    to ``r'`` in ``G_w`` — no dataflow between relevant modules is invented;
Property 3 (*complete w.r.t. dataflow*)
    conversely, every edge on an nr-path from ``r`` to ``r'`` in ``G_w``
    whose induced edge exists in ``U(G_w)`` lies on an nr-path from ``C(r)``
    to ``C(r')`` — no dataflow between relevant modules is lost;
Minimality
    no two composites can be merged into one while keeping Properties 1-3.

The checkers below are *independent* of the construction algorithm, so they
double as an oracle in property-based tests of
:class:`repro.core.builder.RelevUserViewBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx

from .errors import ViewError
from .paths import NrPathIndex
from .spec import ENDPOINTS, INPUT, OUTPUT, WorkflowSpec
from .view import UserView


def _relevant_set(spec: WorkflowSpec, relevant: Iterable[str]) -> FrozenSet[str]:
    rel = frozenset(relevant)
    unknown = rel - spec.modules
    if unknown:
        raise ViewError("relevant modules not in specification: %s" % sorted(unknown))
    return rel


def is_well_formed(view: UserView, relevant: Iterable[str]) -> bool:
    """Property 1: at most one relevant module per composite."""
    rel = _relevant_set(view.spec, relevant)
    for composite in view.composites:
        if len(view.members(composite) & rel) > 1:
            return False
    return True


def _composite_to_relevant(view: UserView, rel: FrozenSet[str]) -> Dict[str, str]:
    """Map each relevant composite name to the single relevant module in it.

    Requires Property 1; ``input``/``output`` map to themselves.
    """
    mapping: Dict[str, str] = {INPUT: INPUT, OUTPUT: OUTPUT}
    for composite in view.composites:
        hits = view.members(composite) & rel
        if len(hits) > 1:
            raise ViewError(
                "view is not well-formed: composite %r contains %s"
                % (composite, sorted(hits))
            )
        if hits:
            mapping[composite] = next(iter(hits))
    return mapping


@dataclass
class _PairTables:
    """Shared machinery for Properties 2 and 3.

    For each specification edge that survives into the view (its endpoints
    live in distinct composites) we compare the set of relevant pairs whose
    nr-paths the edge can serve, at the two levels:

    * ``ground(e)`` — pairs ``(r, r')`` with ``e`` on an nr-path r→r' in G_w,
    * ``lifted(e)`` — pairs from the induced edge in ``U(G_w)``, translated
      back through ``C``.

    Property 2 holds iff ``lifted(e) ⊆ ground(e)`` for every such edge;
    Property 3 holds iff ``ground(e) ⊆ lifted(e)``.
    """

    view: UserView
    relevant: FrozenSet[str]
    spec_index: NrPathIndex = field(init=False)
    view_index: NrPathIndex = field(init=False)
    _to_relevant: Dict[str, str] = field(init=False)
    _surviving: List[Tuple[str, str]] = field(init=False)

    def __post_init__(self) -> None:
        spec = self.view.spec
        self.spec_index = NrPathIndex(spec.graph, self.relevant)
        induced = self.view.induced_spec()
        self._to_relevant = _composite_to_relevant(self.view, self.relevant)
        relevant_composites = [
            c for c in self._to_relevant if c not in ENDPOINTS
        ]
        self.view_index = NrPathIndex(induced.graph, relevant_composites)
        self._surviving = [
            (u, v)
            for u, v in spec.edges()
            if self.view.composite_of(u) != self.view.composite_of(v)
        ]

    def surviving_edges(self) -> List[Tuple[str, str]]:
        return self._surviving

    def ground_pairs(self, edge: Tuple[str, str]) -> FrozenSet[Tuple[str, str]]:
        return self.spec_index.edge_pairs(edge)

    def lifted_pairs(self, edge: Tuple[str, str]) -> FrozenSet[Tuple[str, str]]:
        u, v = edge
        view_edge = (self.view.composite_of(u), self.view.composite_of(v))
        pairs = self.view_index.edge_pairs(view_edge)
        return frozenset(
            (self._to_relevant[a], self._to_relevant[b]) for a, b in pairs
        )


def preserves_dataflow(view: UserView, relevant: Iterable[str]) -> bool:
    """Property 2: the view invents no dataflow between relevant modules."""
    rel = _relevant_set(view.spec, relevant)
    tables = _PairTables(view, rel)
    for edge in tables.surviving_edges():
        if not tables.lifted_pairs(edge) <= tables.ground_pairs(edge):
            return False
    return True


def is_complete(view: UserView, relevant: Iterable[str]) -> bool:
    """Property 3: the view loses no dataflow between relevant modules."""
    rel = _relevant_set(view.spec, relevant)
    tables = _PairTables(view, rel)
    for edge in tables.surviving_edges():
        if not tables.ground_pairs(edge) <= tables.lifted_pairs(edge):
            return False
    return True


def satisfies_all(view: UserView, relevant: Iterable[str]) -> bool:
    """Whether the view satisfies Properties 1, 2 and 3 together."""
    rel = _relevant_set(view.spec, relevant)
    if not is_well_formed(view, rel):
        return False
    tables = _PairTables(view, rel)
    for edge in tables.surviving_edges():
        if tables.ground_pairs(edge) != tables.lifted_pairs(edge):
            return False
    return True


def is_minimal(view: UserView, relevant: Iterable[str]) -> bool:
    """Whether no pair of composites can be merged while keeping P1-3.

    This is the paper's minimality condition.  The check is quadratic in the
    number of composites and re-validates each candidate merge with the full
    property oracle, so it is intended for correctness testing and for the
    minimum-view baseline, not for hot paths.
    """
    rel = _relevant_set(view.spec, relevant)
    for first, second in combinations(sorted(view.composites), 2):
        candidate = view.merge(first, second, merged_name="__merged__")
        if satisfies_all(candidate, rel):
            return False
    return True


def introduces_loop(view: UserView) -> bool:
    """Whether ``U(G_w)`` contains a loop with no counterpart in ``G_w``.

    A cycle among composites is *legitimate* when it is carried by
    specification edges that themselves lie on cycles — i.e. edges inside a
    non-trivial strongly connected component of ``G_w``.  Projecting only
    those edges onto the composites yields the graph of genuine loops; any
    non-trivial SCC of the induced graph that is not contained in a single
    non-trivial SCC of that projection was manufactured by the grouping
    (e.g. hiding a module together with one of its transitive consumers).
    """
    spec = view.spec
    induced = view.induced_spec()
    # Edges of G_w that participate in real cycles, projected to composites.
    scc_of: Dict[str, int] = {}
    for index, scc in enumerate(nx.strongly_connected_components(spec.graph)):
        if len(scc) > 1:
            for node in scc:
                scc_of[node] = index
    genuine = nx.DiGraph()
    genuine.add_nodes_from(induced.graph.nodes)
    for u, v in spec.edges():
        if u in scc_of and scc_of[u] == scc_of.get(v):
            cu, cv = view.composite_of(u), view.composite_of(v)
            if cu != cv:
                genuine.add_edge(cu, cv)
    genuine_sccs = [
        frozenset(scc)
        for scc in nx.strongly_connected_components(genuine)
        if len(scc) > 1
    ]
    for scc in nx.strongly_connected_components(induced.graph):
        if len(scc) <= 1:
            continue
        if not any(scc <= genuine_scc for genuine_scc in genuine_sccs):
            return True
    return False


def relevant_composites_connected(view: UserView, relevant: Iterable[str]) -> bool:
    """Whether each relevant composite is weakly connected in ``G_w``.

    The paper notes Properties 1-3 guarantee this for relevant composites
    (not for non-relevant ones, where hiding parallel branches is allowed).
    """
    rel = _relevant_set(view.spec, relevant)
    undirected = view.spec.graph.to_undirected(as_view=True)
    for composite in view.composites:
        members = view.members(composite)
        if not members & rel or len(members) == 1:
            continue
        sub = undirected.subgraph(members)
        if not nx.is_connected(sub):
            return False
    return True


@dataclass(frozen=True)
class ViewReport:
    """Aggregate verdict of all checks for one ``(spec, R, view)`` triple."""

    well_formed: bool
    preserves_dataflow: bool
    complete: bool
    minimal: Optional[bool]
    introduces_loop: bool
    relevant_connected: bool

    @property
    def good(self) -> bool:
        """Whether the view meets every requirement the paper states."""
        return (
            self.well_formed
            and self.preserves_dataflow
            and self.complete
            and (self.minimal is not False)
            and not self.introduces_loop
        )


def check_view(
    view: UserView, relevant: Iterable[str], check_minimality: bool = True
) -> ViewReport:
    """Run every property check and return a :class:`ViewReport`.

    ``check_minimality=False`` skips the (quadratic, oracle-driven)
    minimality test for large inputs; the report then carries ``None``.
    """
    rel = _relevant_set(view.spec, relevant)
    well_formed = is_well_formed(view, rel)
    if well_formed:
        tables = _PairTables(view, rel)
        p2 = True
        p3 = True
        for edge in tables.surviving_edges():
            ground = tables.ground_pairs(edge)
            lifted = tables.lifted_pairs(edge)
            if not lifted <= ground:
                p2 = False
            if not ground <= lifted:
                p3 = False
            if not p2 and not p3:
                break
    else:
        # Properties 2/3 are only defined for well-formed views (C(r) must
        # identify a unique relevant module per composite).
        p2 = False
        p3 = False
    minimal: Optional[bool] = None
    if check_minimality and well_formed and p2 and p3:
        minimal = is_minimal(view, rel)
    return ViewReport(
        well_formed=well_formed,
        preserves_dataflow=p2,
        complete=p3,
        minimal=minimal,
        introduces_loop=introduces_loop(view),
        relevant_connected=relevant_composites_connected(view, rel),
    )
