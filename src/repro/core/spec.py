"""Workflow specifications (Section II of the paper).

A workflow specification is a directed graph ``G_w(N, E)`` whose nodes are
uniquely-labelled modules, plus two special nodes ``input`` and ``output``
that are respectively the unique source and sink of the graph.  Every node
must lie on some path from ``input`` to ``output``.  Cycles among ordinary
modules are allowed — they model loops in the experiment protocol and are
unrolled at execution time.

The module exposes :class:`WorkflowSpec`, an immutable-after-validation
wrapper around a :class:`networkx.DiGraph` with the structural queries the
rest of the system needs (successors, predecessors, reachability, back-edge
detection for the execution simulator).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

import networkx as nx

from .errors import SpecificationError

#: Reserved label of the unique source node of every specification.
INPUT = "input"

#: Reserved label of the unique sink node of every specification.
OUTPUT = "output"

#: Both reserved endpoint labels, for membership tests.
ENDPOINTS = frozenset({INPUT, OUTPUT})


class WorkflowSpec:
    """A validated workflow specification graph.

    Parameters
    ----------
    modules:
        Iterable of module labels (strings).  Labels must be unique and must
        not use the reserved names ``"input"`` / ``"output"``.
    edges:
        Iterable of ``(src, dst)`` pairs.  Endpoints may be ``INPUT`` /
        ``OUTPUT`` or module labels.
    name:
        Optional human-readable name for the specification.

    Raises
    ------
    SpecificationError
        If the graph violates the workflow-specification model.
    """

    def __init__(
        self,
        modules: Iterable[str],
        edges: Iterable[Tuple[str, str]],
        name: str = "workflow",
    ) -> None:
        self.name = name
        self._graph = nx.DiGraph()
        module_list = list(modules)
        self._validate_labels(module_list)
        self._graph.add_nodes_from([INPUT, OUTPUT])
        self._graph.add_nodes_from(module_list)
        for src, dst in edges:
            self._add_edge(src, dst)
        self._validate_structure()
        self._modules: FrozenSet[str] = frozenset(module_list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _validate_labels(module_list: List[str]) -> None:
        seen: Set[str] = set()
        for label in module_list:
            if not isinstance(label, str) or not label:
                raise SpecificationError(
                    "module labels must be non-empty strings, got %r" % (label,)
                )
            if label in ENDPOINTS:
                raise SpecificationError(
                    "module label %r is reserved for the %s node" % (label, label)
                )
            if label in seen:
                raise SpecificationError("duplicate module label %r" % label)
            seen.add(label)

    def _add_edge(self, src: str, dst: str) -> None:
        for endpoint in (src, dst):
            if endpoint not in self._graph:
                raise SpecificationError(
                    "edge (%r, %r) references unknown node %r" % (src, dst, endpoint)
                )
        if dst == INPUT:
            raise SpecificationError("the input node cannot have incoming edges")
        if src == OUTPUT:
            raise SpecificationError("the output node cannot have outgoing edges")
        if src == dst:
            raise SpecificationError("self-loop on %r is not allowed" % src)
        self._graph.add_edge(src, dst)

    def _validate_structure(self) -> None:
        if self._graph.number_of_nodes() == 2:
            raise SpecificationError("a specification needs at least one module")
        # Every node must lie on some input -> output path, i.e. be reachable
        # from input and co-reachable from output.
        reach_from_input = set(nx.descendants(self._graph, INPUT)) | {INPUT}
        reach_to_output = set(nx.ancestors(self._graph, OUTPUT)) | {OUTPUT}
        for node in self._graph.nodes:
            if node not in reach_from_input:
                raise SpecificationError(
                    "node %r is not reachable from the input node" % node
                )
            if node not in reach_to_output:
                raise SpecificationError(
                    "node %r cannot reach the output node" % node
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def modules(self) -> FrozenSet[str]:
        """The set of module labels (excluding ``input``/``output``)."""
        return self._modules

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Iterate over all edges, including those touching input/output."""
        return iter(self._graph.edges)

    def module_edges(self) -> Iterator[Tuple[str, str]]:
        """Iterate over edges whose both endpoints are ordinary modules."""
        return (
            (u, v)
            for u, v in self._graph.edges
            if u not in ENDPOINTS and v not in ENDPOINTS
        )

    def successors(self, node: str) -> List[str]:
        """Direct successors of ``node`` (which may be ``INPUT``)."""
        self._require_node(node)
        return list(self._graph.successors(node))

    def predecessors(self, node: str) -> List[str]:
        """Direct predecessors of ``node`` (which may be ``OUTPUT``)."""
        self._require_node(node)
        return list(self._graph.predecessors(node))

    def has_edge(self, src: str, dst: str) -> bool:
        """Whether the edge ``src -> dst`` exists."""
        return self._graph.has_edge(src, dst)

    def _require_node(self, node: str) -> None:
        if node not in self._graph:
            raise SpecificationError("unknown node %r" % node)

    def __contains__(self, node: str) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        """Number of ordinary modules."""
        return len(self._modules)

    def num_edges(self) -> int:
        """Total number of edges including input/output edges."""
        return self._graph.number_of_edges()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "WorkflowSpec(name=%r, modules=%d, edges=%d)" % (
            self.name,
            len(self._modules),
            self._graph.number_of_edges(),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkflowSpec):
            return NotImplemented
        return (
            self._modules == other._modules
            and set(self._graph.edges) == set(other._graph.edges)
        )

    def __hash__(self) -> int:
        return hash((self._modules, frozenset(self._graph.edges)))

    # ------------------------------------------------------------------
    # Reachability / cycle structure
    # ------------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """Whether the specification has no loops."""
        return nx.is_directed_acyclic_graph(self._graph)

    def back_edges(self) -> List[Tuple[str, str]]:
        """Back edges of a DFS from ``input`` — the loop edges of the spec.

        The execution simulator removes these edges to obtain the acyclic
        *forward* graph, then unrolls each loop.  For acyclic specifications
        the result is empty.  The computation is deterministic: DFS visits
        successors in sorted order.
        """
        back: List[Tuple[str, str]] = []
        color: Dict[str, int] = {}  # 0 = white (absent), 1 = grey, 2 = black
        stack: List[Tuple[str, Iterator[str]]] = []
        color[INPUT] = 1
        stack.append((INPUT, iter(sorted(self._graph.successors(INPUT)))))
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                state = color.get(succ, 0)
                if state == 1:
                    back.append((node, succ))
                elif state == 0:
                    color[succ] = 1
                    stack.append((succ, iter(sorted(self._graph.successors(succ)))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
        return back

    def forward_graph(self) -> nx.DiGraph:
        """A copy of the graph with DFS back edges removed (always a DAG)."""
        forward = self._graph.copy()
        forward.remove_edges_from(self.back_edges())
        if not nx.is_directed_acyclic_graph(forward):  # pragma: no cover
            raise SpecificationError(
                "internal error: forward graph of %r still has a cycle" % self.name
            )
        return forward

    def loop_body(self, back_edge: Tuple[str, str]) -> Set[str]:
        """Modules constituting the body of the loop closed by ``back_edge``.

        For a back edge ``(u, v)`` the body is the set of nodes lying on a
        forward path from ``v`` (the loop header) to ``u`` (the loop tail),
        both included.
        """
        tail, header = back_edge
        forward = self.forward_graph()
        from_header = set(nx.descendants(forward, header)) | {header}
        to_tail = set(nx.ancestors(forward, tail)) | {tail}
        body = from_header & to_tail
        if header not in body or tail not in body:  # pragma: no cover
            raise SpecificationError(
                "back edge (%r, %r) does not close a loop" % (tail, header)
            )
        return body

    def topological_order(self) -> List[str]:
        """Deterministic topological order of the forward graph.

        Includes ``input`` first and ``output`` last.  Ties are broken by
        node label so runs are reproducible.
        """
        return list(nx.lexicographical_topological_sort(self.forward_graph()))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable description of the specification."""
        return {
            "name": self.name,
            "modules": sorted(self._modules),
            "edges": sorted(self._graph.edges),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorkflowSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            modules=list(payload["modules"]),  # type: ignore[arg-type]
            edges=[tuple(e) for e in payload["edges"]],  # type: ignore[union-attr]
            name=str(payload.get("name", "workflow")),
        )

    def subgraph_description(self) -> str:
        """A short multi-line textual rendering (for logs and debugging)."""
        lines = ["workflow %s (%d modules)" % (self.name, len(self._modules))]
        for src, dst in sorted(self._graph.edges):
            lines.append("  %s -> %s" % (src, dst))
        return "\n".join(lines)


def linear_spec(length: int, prefix: str = "M", name: str = "linear") -> WorkflowSpec:
    """Build the simplest specification: a chain of ``length`` modules.

    Convenience used throughout tests and examples: ``input -> M1 -> ... ->
    Mn -> output``.
    """
    if length < 1:
        raise SpecificationError("a linear spec needs at least one module")
    modules = ["%s%d" % (prefix, i) for i in range(1, length + 1)]
    edges: List[Tuple[str, str]] = [(INPUT, modules[0])]
    edges.extend(zip(modules, modules[1:]))
    edges.append((modules[-1], OUTPUT))
    return WorkflowSpec(modules, edges, name=name)
