"""Structure mining: series-parallel decomposition and pattern census.

The paper's evaluation methodology starts from thirty collected workflows:
"we extracted patterns of workflows (e.g., sequence, loop) and inferred
statistics on their usage".  This module implements that extraction as an
algorithm: given any workflow specification, recover its pattern structure
— maximal sequences, parallel regions, loops — via two-terminal
series-parallel (TTSP) reduction, with loops handled by recursive body
collapsing.

It also answers the recognition question behind the paper's future-work
remark on *well-structured* workflows (BPEL-style processes): a
specification is *structured* exactly when the reduction collapses it to a
single ``input -> output`` edge.  The running phylogenomic example is a
genuine counterexample (its annotation branch crosses the alignment
branch), while every workflow produced by the synthetic generator is
structured by construction — both facts are pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .errors import SpecificationError
from .spec import INPUT, OUTPUT, WorkflowSpec

# ----------------------------------------------------------------------
# Region tree
# ----------------------------------------------------------------------


class Region:
    """A node of the structure tree."""

    kind = "region"

    def modules(self) -> List[str]:
        """All module labels inside this region."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of modules inside this region."""
        return len(self.modules())


@dataclass(frozen=True)
class ModuleRegion(Region):
    """A single module."""

    name: str

    kind = "module"

    def modules(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class SeriesRegion(Region):
    """Regions executed one after another."""

    children: Tuple[Region, ...]

    kind = "series"

    def modules(self) -> List[str]:
        out: List[str] = []
        for child in self.children:
            out.extend(child.modules())
        return out


@dataclass(frozen=True)
class ParallelRegion(Region):
    """Regions executed independently between a common split and join.

    A branch may be ``None``: a direct edge bypassing the others.
    """

    branches: Tuple[Optional[Region], ...]

    kind = "parallel"

    def modules(self) -> List[str]:
        out: List[str] = []
        for branch in self.branches:
            if branch is not None:
                out.extend(branch.modules())
        return out


@dataclass(frozen=True)
class LoopRegion(Region):
    """A region repeated until some condition holds (a reflexive loop)."""

    body: Region

    kind = "loop"

    def modules(self) -> List[str]:
        return self.body.modules()


def _series(*parts: Optional[Region]) -> Optional[Region]:
    """Compose regions in series, flattening and dropping empties."""
    children: List[Region] = []
    for part in parts:
        if part is None:
            continue
        if isinstance(part, SeriesRegion):
            children.extend(part.children)
        else:
            children.append(part)
    if not children:
        return None
    if len(children) == 1:
        return children[0]
    return SeriesRegion(tuple(children))


def _parallel(*branches: Optional[Region]) -> Region:
    """Compose regions in parallel, flattening nested parallels."""
    flat: List[Optional[Region]] = []
    for branch in branches:
        if isinstance(branch, ParallelRegion):
            flat.extend(branch.branches)
        else:
            flat.append(branch)
    return ParallelRegion(tuple(flat))


# ----------------------------------------------------------------------
# TTSP reduction
# ----------------------------------------------------------------------


def _reduce(
    graph: nx.MultiDiGraph,
    source: str,
    sink: str,
    node_regions: Optional[Dict[str, Region]] = None,
) -> Optional[Region]:
    """Reduce a two-terminal DAG to a single edge; return its region.

    Edges carry ``region`` attributes (``None`` for a bare connection).
    Series reductions fold degree-(1,1) intermediate nodes into edge
    labels; parallel reductions merge multi-edges.  ``node_regions`` maps
    virtual nodes (collapsed loops) to the region they stand for; plain
    nodes become :class:`ModuleRegion` leaves.  Returns the final edge's
    region on success, raises :class:`_Irreducible` on failure.
    """
    node_regions = node_regions or {}
    changed = True
    while changed:
        changed = False
        # Parallel reduction: merge multi-edges between the same pair.
        for u, v in list({(u, v) for u, v, _k in graph.edges(keys=True)}):
            if graph.number_of_edges(u, v) > 1:
                regions = [
                    data.get("region")
                    for _k, data in graph[u][v].items()
                ]
                graph.remove_edges_from(
                    [(u, v, k) for k in list(graph[u][v])]
                )
                graph.add_edge(u, v, region=_parallel(*regions))
                changed = True
        # Series reduction: fold (1,1)-degree intermediate nodes.
        for node in list(graph.nodes):
            if node in (source, sink):
                continue
            if graph.in_degree(node) == 1 and graph.out_degree(node) == 1:
                (pred, _n, kin), = graph.in_edges(node, keys=True)
                (_n2, succ, kout), = graph.out_edges(node, keys=True)
                if pred == node or succ == node:  # pragma: no cover
                    continue
                before = graph[pred][node][kin].get("region")
                after = graph[node][succ][kout].get("region")
                middle = node_regions.get(node, ModuleRegion(node))
                graph.remove_node(node)
                graph.add_edge(
                    pred, succ, region=_series(before, middle, after)
                )
                changed = True
    if (
        graph.number_of_nodes() == 2
        and graph.number_of_edges(source, sink) == 1
        and graph.number_of_edges() == 1
    ):
        (_k, data), = graph[source][sink].items()
        return data.get("region")
    raise _Irreducible(graph)


class _Irreducible(Exception):
    """Raised when TTSP reduction gets stuck; carries the leftover graph."""

    def __init__(self, graph: nx.MultiDiGraph) -> None:
        super().__init__("graph is not two-terminal series-parallel")
        self.leftover = graph


# ----------------------------------------------------------------------
# Mining
# ----------------------------------------------------------------------


@dataclass
class StructureReport:
    """Outcome of mining one specification."""

    spec_name: str
    structured: bool
    region: Optional[Region]
    leftover_nodes: List[str] = field(default_factory=list)
    loops: List[int] = field(default_factory=list)  # body sizes
    parallel_regions: List[int] = field(default_factory=list)  # branch counts
    sequence_lengths: List[int] = field(default_factory=list)

    def census(self) -> Dict[str, int]:
        """Pattern counts in Table I's vocabulary."""
        return {
            "sequence": len(self.sequence_lengths),
            "loop": len(self.loops),
            "parallel": len(self.parallel_regions),
        }


def mine_structure(spec: WorkflowSpec) -> StructureReport:
    """Extract the pattern structure of a specification.

    Loops are collapsed innermost-out (each back-edge body becomes one
    virtual node carrying a :class:`LoopRegion`), then the remaining DAG is
    TTSP-reduced.  If the reduction gets stuck, the specification is
    reported as unstructured with the irreducible kernel's nodes — still
    with the loop statistics, which do not depend on structuredness.
    """
    working = nx.MultiDiGraph()
    working.add_nodes_from(spec.graph.nodes)
    for u, v in spec.edges():
        working.add_edge(u, v, region=None)

    placeholder_regions: Dict[str, Region] = {}
    loops: List[int] = []
    claimed: Set[str] = set()
    for index, back_edge in enumerate(spec.back_edges()):
        body = spec.loop_body(back_edge)
        if body & claimed:
            raise SpecificationError(
                "nested or overlapping loops are not supported by the miner"
            )
        claimed |= body
        loops.append(len(body))
        _collapse_loop(working, spec, back_edge, body,
                       "~loop%d" % index, placeholder_regions)

    try:
        region = _reduce(working, INPUT, OUTPUT, placeholder_regions)
        structured = True
        leftover: List[str] = []
    except _Irreducible as stuck:
        region = None
        structured = False
        leftover = sorted(
            node for node in stuck.leftover.nodes
            if node not in (INPUT, OUTPUT)
        )
    report = StructureReport(
        spec_name=spec.name,
        structured=structured,
        region=region,
        leftover_nodes=leftover,
        loops=loops,
    )
    if region is not None:
        _walk(region, report)
    return report


def _collapse_loop(
    working: nx.MultiDiGraph,
    spec: WorkflowSpec,
    back_edge: Tuple[str, str],
    body: Set[str],
    placeholder: str,
    placeholder_regions: Dict[str, Region],
) -> None:
    """Replace a loop body with one virtual node carrying a LoopRegion."""
    tail, header = back_edge
    # Mine the body itself: a two-terminal graph from header to tail.
    body_graph = nx.MultiDiGraph()
    body_graph.add_nodes_from(body)
    for u, v in spec.edges():
        if u in body and v in body and (u, v) != back_edge:
            body_graph.add_edge(u, v, region=None)
    try:
        inner = _reduce(body_graph, header, tail)
        body_region = _series(
            ModuleRegion(header), inner, ModuleRegion(tail)
        )
    except _Irreducible:
        # The body is unstructured internally; keep it as an opaque series
        # of its modules for census purposes.
        body_region = SeriesRegion(
            tuple(ModuleRegion(m) for m in sorted(body))
        )
    assert body_region is not None
    region = LoopRegion(body=body_region)
    placeholder_regions[placeholder] = region
    working.add_node(placeholder)
    for u, v, _k, data in list(working.edges(keys=True, data=True)):
        if u in body and v in body:
            continue
        if u in body:
            working.add_edge(placeholder, v, region=data.get("region"))
        elif v in body:
            working.add_edge(u, placeholder, region=data.get("region"))
    working.remove_nodes_from(body)


def _walk(region: Region, report: StructureReport) -> None:
    """Accumulate census statistics from a region tree."""
    if isinstance(region, SeriesRegion):
        run = 0
        for child in region.children:
            if isinstance(child, ModuleRegion):
                run += 1
            else:
                if run:
                    report.sequence_lengths.append(run)
                    run = 0
                _walk(child, report)
        if run:
            report.sequence_lengths.append(run)
    elif isinstance(region, ParallelRegion):
        report.parallel_regions.append(len(region.branches))
        for branch in region.branches:
            if branch is not None:
                _walk(branch, report)
    elif isinstance(region, LoopRegion):
        _walk(region.body, report)
    elif isinstance(region, ModuleRegion):
        report.sequence_lengths.append(1)


def is_structured(spec: WorkflowSpec) -> bool:
    """Whether the specification is (loop-collapsed) series-parallel."""
    return mine_structure(spec).structured
