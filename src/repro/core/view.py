"""User views: partitions of a workflow specification (Section II).

A *user view* ``U`` of a specification ``G_w`` is a partition of its modules
(excluding ``input``/``output``) into *composite modules*.  A view *induces*
a higher-level specification ``U(G_w)`` with one node per composite and an
edge ``Mi -> Mj`` whenever some edge of ``G_w`` connects a member of ``Mi``
to a member of ``Mj`` (edges internal to a composite disappear).

The two degenerate views used throughout the paper's evaluation are provided
as constructors: :func:`admin_view` (every module is its own composite —
"UAdmin") and :func:`blackbox_view` (the whole workflow is one composite —
"UBlackBox").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .errors import PartitionError, ViewError
from .spec import ENDPOINTS, WorkflowSpec


class UserView:
    """A named partition of a specification's modules.

    Parameters
    ----------
    spec:
        The workflow specification being viewed.
    composites:
        Mapping from composite-module name to the collection of module
        labels it contains.  Must partition ``spec.modules``.  Composite
        names must not collide with the reserved ``input``/``output`` names.
    name:
        Optional view name (e.g. ``"UBio"``).
    """

    def __init__(
        self,
        spec: WorkflowSpec,
        composites: Mapping[str, Iterable[str]],
        name: str = "view",
    ) -> None:
        self.spec = spec
        self.name = name
        self._members: Dict[str, FrozenSet[str]] = {}
        self._composite_of: Dict[str, str] = {}
        for comp_name, members in composites.items():
            self._add_composite(comp_name, members)
        self._validate_partition()

    def _add_composite(self, comp_name: str, members: Iterable[str]) -> None:
        if comp_name in ENDPOINTS:
            raise ViewError("composite name %r is reserved" % comp_name)
        if comp_name in self._members:
            raise ViewError("duplicate composite name %r" % comp_name)
        member_set = frozenset(members)
        if not member_set:
            raise PartitionError("composite %r is empty" % comp_name)
        for module in member_set:
            if module not in self.spec.modules:
                raise PartitionError(
                    "composite %r contains unknown module %r" % (comp_name, module)
                )
            if module in self._composite_of:
                raise PartitionError(
                    "module %r appears in composites %r and %r"
                    % (module, self._composite_of[module], comp_name)
                )
            self._composite_of[module] = comp_name
        self._members[comp_name] = member_set

    def _validate_partition(self) -> None:
        missing = self.spec.modules - set(self._composite_of)
        if missing:
            raise PartitionError(
                "view does not cover modules: %s" % sorted(missing)
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def composites(self) -> FrozenSet[str]:
        """Names of all composite modules in the view."""
        return frozenset(self._members)

    def members(self, composite: str) -> FrozenSet[str]:
        """Module labels contained in ``composite``."""
        try:
            return self._members[composite]
        except KeyError:
            raise ViewError("unknown composite %r" % composite) from None

    def composite_of(self, node: str) -> str:
        """``C(n)``: the composite containing module ``n``.

        Extended, as in the paper, so that ``C(input) = input`` and
        ``C(output) = output``.
        """
        if node in ENDPOINTS:
            return node
        try:
            return self._composite_of[node]
        except KeyError:
            raise ViewError("module %r is not in the viewed specification" % node) from None

    def size(self) -> int:
        """``|U|`` — the number of composite modules (paper, Section II)."""
        return len(self._members)

    def __len__(self) -> int:
        return self.size()

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._members))

    def __eq__(self, other: object) -> bool:
        """Views are equal when they induce the same partition.

        Composite *names* are presentation only and do not participate.
        """
        if not isinstance(other, UserView):
            return NotImplemented
        return self.spec == other.spec and self.partition() == other.partition()

    def __hash__(self) -> int:
        return hash((self.spec, self.partition()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UserView(name=%r, size=%d)" % (self.name, self.size())

    def partition(self) -> FrozenSet[FrozenSet[str]]:
        """The partition as a set of member-sets (name-independent)."""
        return frozenset(self._members.values())

    def presentation_key(self) -> Tuple[str, Tuple[Tuple[str, FrozenSet[str]], ...]]:
        """Hashable identity *including* the view and composite names.

        ``__eq__`` deliberately ignores names — two views inducing the same
        partition are the same view.  Caches whose stored values carry the
        names (composite-run structures, rendered provenance answers) must
        key on this instead, or an equal-but-relabelled view would be served
        an answer spelled with another view's composite names.
        """
        return (
            self.name,
            tuple(sorted(
                (composite, members)
                for composite, members in self._members.items()
            )),
        )

    def refines(self, other: "UserView") -> bool:
        """Whether this view is a refinement of ``other``.

        True when every composite of this view nests inside some composite
        of ``other`` — the relation hierarchical zooming preserves.  Every
        view refines UBlackBox and is refined by UAdmin.
        """
        if self.spec != other.spec:
            return False
        other_parts = other.partition()
        return all(
            any(members <= coarse for coarse in other_parts)
            for members in self._members.values()
        )

    # ------------------------------------------------------------------
    # Induced specification
    # ------------------------------------------------------------------

    def induced_spec(self) -> WorkflowSpec:
        """The higher-level specification ``U(G_w)`` induced by this view."""
        edges: Set[Tuple[str, str]] = set()
        for src, dst in self.spec.edges():
            csrc = self.composite_of(src)
            cdst = self.composite_of(dst)
            if csrc != cdst:
                edges.add((csrc, cdst))
        return WorkflowSpec(
            modules=sorted(self._members),
            edges=sorted(edges),
            name="%s(%s)" % (self.name, self.spec.name),
        )

    def induced_edges(self, view_edge: Tuple[str, str]) -> List[Tuple[str, str]]:
        """The edges of ``G_w`` that induce a given edge of ``U(G_w)``."""
        csrc, cdst = view_edge
        return [
            (u, v)
            for u, v in self.spec.edges()
            if self.composite_of(u) == csrc and self.composite_of(v) == cdst
        ]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def merge(
        self, first: str, second: str, merged_name: Optional[str] = None
    ) -> "UserView":
        """A new view with composites ``first`` and ``second`` merged.

        Used by the minimality checker, which asks whether any single merge
        preserves Properties 1-3.
        """
        if first == second:
            raise ViewError("cannot merge a composite with itself")
        members_a = self.members(first)
        members_b = self.members(second)
        new_name = merged_name or "%s+%s" % (first, second)
        composites: Dict[str, FrozenSet[str]] = {}
        for comp, members in self._members.items():
            if comp not in (first, second):
                composites[comp] = members
        if new_name in composites:
            raise ViewError("merged name %r collides with existing composite" % new_name)
        composites[new_name] = members_a | members_b
        return UserView(self.spec, composites, name=self.name)

    def relabelled(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "UserView":
        """A copy with composite names replaced according to ``mapping``."""
        composites: Dict[str, FrozenSet[str]] = {}
        for comp, members in self._members.items():
            new_name = mapping.get(comp, comp)
            if new_name in composites:
                raise ViewError("duplicate composite name %r" % new_name)
            composites[new_name] = members
        return UserView(self.spec, composites, name=name or self.name)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (spec is referenced by name only)."""
        return {
            "name": self.name,
            "spec": self.spec.name,
            "composites": {c: sorted(m) for c, m in sorted(self._members.items())},
        }

    @classmethod
    def from_dict(cls, spec: WorkflowSpec, payload: Mapping[str, object]) -> "UserView":
        """Inverse of :meth:`to_dict`, given the specification object."""
        composites = payload["composites"]
        return cls(spec, composites, name=str(payload.get("name", "view")))  # type: ignore[arg-type]


def admin_view(spec: WorkflowSpec, name: str = "UAdmin") -> UserView:
    """The finest view: every module is its own composite (paper's UAdmin)."""
    return UserView(spec, {m: [m] for m in spec.modules}, name=name)


def blackbox_view(spec: WorkflowSpec, name: str = "UBlackBox") -> UserView:
    """The coarsest view: one composite holding every module (UBlackBox)."""
    return UserView(spec, {"BlackBox": sorted(spec.modules)}, name=name)


def view_from_partition(
    spec: WorkflowSpec,
    parts: Iterable[Iterable[str]],
    name: str = "view",
    prefix: str = "G",
) -> UserView:
    """Build a view from bare member-sets, auto-naming the composites.

    Single-module composites are named after their module; larger groups get
    sequential ``G1, G2, ...`` names.
    """
    composites: Dict[str, List[str]] = {}
    counter = 0
    for part in parts:
        members = sorted(part)
        if len(members) == 1 and members[0] not in composites:
            composites[members[0]] = members
        else:
            counter += 1
            comp_name = "%s%d" % (prefix, counter)
            while comp_name in composites:
                counter += 1
                comp_name = "%s%d" % (prefix, counter)
            composites[comp_name] = members
    return UserView(spec, composites, name=name)
