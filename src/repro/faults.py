"""Deterministic fault injection for the ingestion and recovery paths.

Real provenance warehouses are loaded from logs by processes that crash,
race each other for the database and receive corrupt runs.  This module
makes those failures *reproducible*: a :class:`FaultPlan` schedules crashes,
transient SQLite lock errors and per-run corruption at named **sites** —
fixed points the warehouse and pipeline code was instrumented with — so the
chaos suite (``tests/test_recovery.py``) can prove that every crash point
leaves the warehouse either fully repaired or cleanly resumable.

Instrumented sites (see :data:`SITES`):

``store_many.begin``
    Entry of a backend's bulk write, *inside* the ``with_retries`` wrapper —
    the site for injecting transient "database is locked" errors.
``store_many.mid``
    Inside the batch transaction, after some rows were inserted — a crash
    here simulates a hard kill mid-commit (SQLite rolls the batch back on
    recovery; the in-memory backend is left genuinely half-applied).
``journal.pending``
    After the ingest journal's ``pending`` rows were durably written but
    before the batch commit — a crash here produces a **torn journal**
    (journal rows referencing runs the warehouse does not hold; lint rule
    ``WH041``).
``journal.mark``
    After the batch commit but before the journal rows are marked
    ``committed`` — the window recovery repairs by checksum.
``bulk_load.rebuild``
    Inside :meth:`SqliteWarehouse.bulk_load`'s exit bracket, before the
    deferred ``io`` secondary indexes are recreated — a crash here leaves
    the warehouse unindexed, the state the startup integrity probe and
    ``zoom recover`` repair.
``stream.epoch.pending``
    A streaming append's journal entry was durably re-written ``pending``
    but no epoch rows are stored yet — a crash here is the streaming
    flavour of the torn journal; recovery *truncates* back to the last
    committed epoch.
``stream.append``
    Inside :meth:`~repro.warehouse.base.ProvenanceWarehouse.stream_apply`,
    after the epoch's delta rows entered the transaction but before it
    commits — the site for both hard kills (the transaction rolls back)
    and injected lock errors on the open-run row (absorbed by
    ``with_retries``).
``stream.epoch.mark``
    The epoch's rows and stream state committed atomically but the journal
    entry is still ``pending`` — recovery rolls the epoch *forward* by
    checksum.
``stream.delta``
    The epoch is journalled committed but the incremental lineage/label
    index deltas did not run — the warehouse's ``delta_epoch`` trails its
    committed epoch (lint rule ``WH047``); recovery drops the stale
    indexes so they rebuild lazily.
``stream.finalize``
    Inside :meth:`~repro.warehouse.streaming.StreamingIngestor.finalize_run`,
    before the open-run state row is deleted — the run stays open
    (lint rule ``WH046``) and a replayed finalize converges.

A sixth failure mode, per-run corruption, is scheduled with
:meth:`FaultPlan.fail_run` and raised by the pipeline's gate stage — under
``on_error="quarantine"`` the run is quarantined instead of aborting the
dataset.

Crashes are raised as :class:`InjectedCrash`, a :class:`BaseException`
subclass: it deliberately flies past ``except Exception`` handlers (and the
retry decorator), exactly as a process kill would, while transaction
context managers still roll back — the same database state a crashed
process leaves behind in WAL mode.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Dict, List, Optional, Tuple

from .core.errors import RunError
from .sanitize import YIELD_SITES, make_lock

#: The instrumented fault sites, for reference and validation.
SITES: Tuple[str, ...] = (
    "store_many.begin",
    "store_many.mid",
    "journal.pending",
    "journal.mark",
    "bulk_load.rebuild",
    "stream.epoch.pending",
    "stream.append",
    "stream.epoch.mark",
    "stream.delta",
    "stream.finalize",
)

#: Every site a plan may schedule against: the crash/lock sites above plus
#: the sanitizer's schedule-fuzzer yield sites (see ``repro.sanitize``).
ALL_SITES: Tuple[str, ...] = SITES + YIELD_SITES


class InjectedCrash(BaseException):
    """A scheduled hard-crash fired at an instrumented site.

    Subclasses :class:`BaseException` so generic ``except Exception``
    recovery code cannot accidentally swallow a simulated process kill.
    """

    def __init__(self, site: str) -> None:
        super().__init__("injected crash at %r" % site)
        self.site = site


class FaultPlan:
    """A schedule of failures to inject at instrumented sites.

    Build a plan, hand it to :class:`~repro.warehouse.sqlite.SqliteWarehouse`
    / :class:`~repro.warehouse.memory.InMemoryWarehouse` (``faults=``) and —
    automatically, via the warehouse — to
    :func:`~repro.warehouse.pipeline.ingest_dataset`.  Thread-safe; every
    trigger fires at most once and is recorded in :attr:`fired`.
    """

    def __init__(self) -> None:
        self._lock = make_lock("faults.plan")
        self._hits: Dict[str, int] = {}            # guarded-by: _lock
        self._crash_at: Dict[str, int] = {}        # guarded-by: _lock
        self._lock_at: Dict[str, int] = {}         # guarded-by: _lock
        self._fail_runs: Dict[str, str] = {}       # guarded-by: _lock
        self._yield_at: Dict[Tuple[str, int], float] = {}  # guarded-by: _lock
        #: Chronological record of what actually fired (for assertions).
        self.fired: List[str] = []                 # guarded-by: _lock

    # -- scheduling ----------------------------------------------------

    def crash_at(self, site: str, hit: int = 1) -> "FaultPlan":
        """Raise :class:`InjectedCrash` on the ``hit``-th pass of ``site``."""
        if site not in SITES:
            raise ValueError("unknown fault site %r (known: %s)"
                             % (site, ", ".join(SITES)))
        with self._lock:
            self._crash_at[site] = hit
        return self

    def lock_at(self, site: str, times: int = 1) -> "FaultPlan":
        """Raise ``sqlite3.OperationalError("database is locked")`` the next
        ``times`` passes of ``site`` (the transient-contention simulation
        the ``with_retries`` decorator absorbs)."""
        if site not in SITES:
            raise ValueError("unknown fault site %r (known: %s)"
                             % (site, ", ".join(SITES)))
        with self._lock:
            self._lock_at[site] = times
        return self

    def yield_at(self, site: str, hit: int = 1,
                 duration: float = 0.01) -> "FaultPlan":
        """Pause ``duration`` seconds on the ``hit``-th pass of ``site``.

        The schedule fuzzer's injection primitive: a pause at an
        instrumented yield site (``repro.sanitize.YIELD_SITES``) stretches
        a race window so a concurrent thread lands inside it
        deterministically.  A ``duration`` of zero still yields the GIL
        (``time.sleep(0)``).  Unlike crashes, yields may be scheduled at
        both the warehouse fault sites and the sanitizer yield sites.
        """
        if site not in ALL_SITES:
            raise ValueError("unknown yield site %r (known: %s)"
                             % (site, ", ".join(ALL_SITES)))
        if duration < 0:
            raise ValueError("duration must be >= 0, got %r" % duration)
        with self._lock:
            self._yield_at[(site, hit)] = duration
        return self

    def fail_run(self, run_id: str,
                 message: Optional[str] = None) -> "FaultPlan":
        """Schedule a per-run failure: the pipeline's gate stage raises a
        :class:`~repro.core.errors.RunError` for this warehouse run id."""
        with self._lock:
            self._fail_runs[run_id] = (
                message or "injected corrupt run %r" % run_id
            )
        return self

    def scheduled_yields(self) -> List[Tuple[str, int, float]]:
        """Every ``yield_at`` entry as ``(site, hit, duration)`` triples."""
        with self._lock:
            return [
                (site, hit, duration)
                for (site, hit), duration in self._yield_at.items()
            ]

    # -- firing (called by instrumented code) --------------------------

    def hit(self, site: str) -> None:
        """Record a pass of ``site``; raise or pause as scheduled.

        The pause itself happens *outside* the plan's lock so concurrent
        threads hitting other sites are never serialized by a sleeping
        sibling.
        """
        with self._lock:
            count = self._hits[site] = self._hits.get(site, 0) + 1
            remaining_locks = self._lock_at.get(site, 0)
            if remaining_locks > 0:
                self._lock_at[site] = remaining_locks - 1
                self.fired.append("lock:%s" % site)
                raise sqlite3.OperationalError(
                    "database is locked (injected at %r)" % site
                )
            if self._crash_at.get(site) == count:
                del self._crash_at[site]
                self.fired.append("crash:%s" % site)
                raise InjectedCrash(site)
            pause = self._yield_at.pop((site, count), None)
            if pause is not None:
                self.fired.append("yield:%s@%d" % (site, count))
        if pause is not None:
            time.sleep(pause)

    def check_run(self, run_id: str) -> None:
        """Raise the scheduled failure of ``run_id``, if any (fires once)."""
        with self._lock:
            message = self._fail_runs.pop(run_id, None)
            if message is not None:
                self.fired.append("fail-run:%s" % run_id)
        if message is not None:
            raise RunError(message)

    def pending(self) -> Dict[str, object]:
        """What is still scheduled (empty when every fault has fired)."""
        with self._lock:
            return {
                "crash": dict(self._crash_at),
                "lock": {s: n for s, n in self._lock_at.items() if n > 0},
                "fail_run": dict(self._fail_runs),
                "yield": {
                    "%s@%d" % key: duration
                    for key, duration in self._yield_at.items()
                },
            }


def hit(plan: Optional[FaultPlan], site: str) -> None:
    """``plan.hit(site)`` tolerating ``plan=None`` (the production case)."""
    if plan is not None:
        plan.hit(site)


__all__ = ["ALL_SITES", "SITES", "FaultPlan", "InjectedCrash", "hit"]
