"""provlint — rule-based static analysis for provenance artifacts.

The paper's guarantees (Section III's Properties 1-3, DAG runs, single
producers, loop-unrolled logs) only hold on *valid* inputs.  This package
turns validity into an auditable property: analyzers over all four
artifact layers — specifications, runs/event logs, user views and whole
warehouses — collect every diagnostic in one pass and report them with
stable rule ids, severities and fix hints.

Entry points:

* :class:`Linter` / the ``lint_*`` functions — programmatic API;
* ``zoom lint`` — the CLI front-end with text and JSON reporters;
* ``strict=`` on :mod:`repro.warehouse.loader` — the ingestion gate;
* :meth:`repro.zoom.session.Session.lint` — audit the active view.

Rule catalogue: ``docs/linting.md`` (generated from :data:`RULES`).
"""

from .engine import (
    Linter,
    lint_log,
    lint_run,
    lint_source,
    lint_spec,
    lint_view,
    lint_warehouse,
)
from .findings import (
    ERROR,
    INFO,
    LAYERS,
    SEVERITIES,
    WARNING,
    Finding,
    LintGateError,
    LintReport,
)
from .registry import RULES, Rule, RuleConfig, RuleRegistry
from .rules_run import RunFacts

__all__ = [
    "ERROR",
    "Finding",
    "INFO",
    "LAYERS",
    "LintGateError",
    "LintReport",
    "Linter",
    "RULES",
    "Rule",
    "RuleConfig",
    "RuleRegistry",
    "RunFacts",
    "SEVERITIES",
    "WARNING",
    "lint_log",
    "lint_run",
    "lint_source",
    "lint_spec",
    "lint_view",
    "lint_warehouse",
]
