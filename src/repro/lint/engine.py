"""The provlint engine: one pass, every diagnostic, optional metrics.

:class:`Linter` fronts the four analyzer layers behind a single object
holding the run-wide policy — which rules are enabled, whether the
quadratic minimality oracle runs, whether findings are counted in the
:mod:`repro.obs` metrics registry.  Unlike the constructors' fail-fast
exceptions, every ``lint_*`` method returns a full
:class:`~repro.lint.findings.LintReport` for the artifact.

Metrics: each emitted finding increments the counter
``lint.<RULE_ID>`` in the default registry, so a service ingesting
thousands of logs can alert on rule frequencies without parsing reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Mapping, Optional, Sequence, Union

from ..core.spec import WorkflowSpec
from ..core.view import UserView
from ..run.log import EventLog
from ..run.run import WorkflowRun
from .findings import Finding, LintGateError, LintReport
from .registry import RuleConfig
from .rules_run import lint_log as _lint_log
from .rules_run import lint_run as _lint_run
from .rules_source import lint_source_paths as _lint_source_paths
from .rules_spec import lint_spec_payload
from .rules_view import lint_view as _lint_view
from .rules_warehouse import (
    DEFAULT_CLOSURE_ROW_THRESHOLD,
    DEFAULT_OPEN_RUN_AGE,
    DEFAULT_SHARD_SKEW,
)
from .rules_warehouse import lint_warehouse as _lint_warehouse

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids an import cycle
    from ..warehouse.base import ProvenanceWarehouse

SpecLike = Union[WorkflowSpec, Mapping[str, object]]


class Linter:
    """Configured facade over the spec/run/view/warehouse analyzers.

    Parameters
    ----------
    config:
        Per-rule enable/disable; ``None`` enables everything.
    emit_metrics:
        Count each finding under ``lint.<RULE_ID>`` in the default
        metrics registry (cheap; on by default).
    check_minimality:
        Run the quadratic minimality oracle in view lints.  Off by
        default — it re-validates every candidate merge and is meant for
        interactive audits, not bulk ingestion.
    """

    def __init__(
        self,
        config: Optional[RuleConfig] = None,
        emit_metrics: bool = True,
        check_minimality: bool = False,
        closure_row_threshold: int = DEFAULT_CLOSURE_ROW_THRESHOLD,
        shard_skew_factor: float = DEFAULT_SHARD_SKEW,
        open_run_age: float = DEFAULT_OPEN_RUN_AGE,
    ) -> None:
        self.config = config or RuleConfig()
        self.emit_metrics = emit_metrics
        self.check_minimality = check_minimality
        self.closure_row_threshold = closure_row_threshold
        self.shard_skew_factor = shard_skew_factor
        self.open_run_age = open_run_age

    # ------------------------------------------------------------------
    # Per-layer entry points
    # ------------------------------------------------------------------

    def lint_spec(self, spec: SpecLike) -> LintReport:
        """Lint a specification (object or raw JSON payload)."""
        payload = spec.to_dict() if isinstance(spec, WorkflowSpec) else spec
        return self._report(lint_spec_payload(payload))

    def lint_log(
        self, log: EventLog, spec: Optional[WorkflowSpec] = None
    ) -> LintReport:
        """Lint an event log without executing or reconstructing it."""
        return self._report(_lint_log(log, spec))

    def lint_run(self, run: WorkflowRun) -> LintReport:
        """Lint a constructed run graph, collecting every defect."""
        return self._report(_lint_run(run))

    def lint_view(
        self, view: UserView, relevant: Optional[Iterable[str]] = None
    ) -> LintReport:
        """Lint a view; Properties 1-3 apply when ``relevant`` is given."""
        return self._report(_lint_view(
            view, relevant=relevant, check_minimality=self.check_minimality
        ))

    def lint_warehouse(
        self,
        warehouse: ProvenanceWarehouse,
        spec_ids: Optional[Sequence[str]] = None,
        run_ids: Optional[Sequence[str]] = None,
    ) -> LintReport:
        """Audit a warehouse's raw rows across all four layers."""
        return self._report(_lint_warehouse(
            warehouse, spec_ids=spec_ids, run_ids=run_ids,
            closure_row_threshold=self.closure_row_threshold,
            shard_skew_factor=self.shard_skew_factor,
            open_run_age=self.open_run_age,
        ))

    def lint_source(self, paths: Sequence[str]) -> LintReport:
        """Run the ``SRC0xx`` concurrency rules over Python source files.

        ``paths`` mixes files and directory trees (recursed for
        ``*.py``); the nested-``with`` lock-order graph spans the whole
        set, so an ABBA pair split across modules is still caught.
        """
        return self._report(_lint_source_paths([str(p) for p in paths]))

    def report_findings(self, findings: Sequence[Finding]) -> LintReport:
        """Apply this linter's policy to findings computed elsewhere.

        The batch-ingestion pipeline runs the raw rule functions in worker
        threads/processes and reports here, in the parent, so rule
        filtering and the ``lint.<RULE_ID>`` counters behave exactly as if
        the artifact had been linted inline.
        """
        return self._report(list(findings))

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    def gate(self, report: LintReport, what: str, strict: bool) -> LintReport:
        """Reject ``report`` when strict and it carries errors.

        The non-strict path is the "warn" mode: findings were already
        counted in metrics by :meth:`_report`, so callers get the report
        back and ingestion proceeds.
        """
        if strict and report.has_errors:
            errors = report.errors()
            raise LintGateError(
                "%s rejected by lint gate: %d error(s) (%s)"
                % (what, len(errors),
                   ", ".join(sorted({f.rule_id for f in errors}))),
                report,
            )
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _report(self, findings: List[Finding]) -> LintReport:
        kept = [f for f in findings if self.config.enabled(f.rule_id)]
        if self.emit_metrics and kept:
            from ..obs import get_registry

            registry = get_registry()
            for finding in kept:
                registry.counter("lint.%s" % finding.rule_id).increment()
        return LintReport(findings=kept)


# ----------------------------------------------------------------------
# Module-level conveniences (default Linter policy)
# ----------------------------------------------------------------------

def lint_spec(spec: SpecLike, **kwargs: object) -> LintReport:
    """Lint one spec with a default :class:`Linter`."""
    return Linter(**kwargs).lint_spec(spec)  # type: ignore[arg-type]


def lint_log(
    log: EventLog, spec: Optional[WorkflowSpec] = None, **kwargs: object
) -> LintReport:
    """Lint one event log with a default :class:`Linter`."""
    return Linter(**kwargs).lint_log(log, spec)  # type: ignore[arg-type]


def lint_run(run: WorkflowRun, **kwargs: object) -> LintReport:
    """Lint one run graph with a default :class:`Linter`."""
    return Linter(**kwargs).lint_run(run)  # type: ignore[arg-type]


def lint_view(
    view: UserView,
    relevant: Optional[Iterable[str]] = None,
    check_minimality: bool = False,
    **kwargs: object,
) -> LintReport:
    """Lint one view with a default :class:`Linter`."""
    linter = Linter(check_minimality=check_minimality, **kwargs)  # type: ignore[arg-type]
    return linter.lint_view(view, relevant=relevant)


def lint_warehouse(
    warehouse: ProvenanceWarehouse,
    spec_ids: Optional[Sequence[str]] = None,
    run_ids: Optional[Sequence[str]] = None,
    **kwargs: object,
) -> LintReport:
    """Audit one warehouse with a default :class:`Linter`."""
    return Linter(**kwargs).lint_warehouse(  # type: ignore[arg-type]
        warehouse, spec_ids=spec_ids, run_ids=run_ids
    )


def lint_source(paths: Sequence[str], **kwargs: object) -> LintReport:
    """Lint source files with the ``SRC0xx`` rules and a default policy."""
    return Linter(**kwargs).lint_source(paths)  # type: ignore[arg-type]
