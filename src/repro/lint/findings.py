"""Findings and reports — the output side of provlint.

A :class:`Finding` is one diagnostic: a stable rule id, a severity, the
artifact it concerns (a spec name, run id, view id or warehouse), an
optional location inside that artifact (a node, an edge, an event
position, a table row) and a human-readable message with a fix hint.

Unlike the fail-fast exceptions raised elsewhere in the library, a lint
pass *collects* every diagnostic it can find in one traversal and returns
them as a :class:`LintReport`; callers decide whether errors are fatal
(the ``strict=`` ingestion gate) or merely counted (metrics).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..core.errors import ZoomError

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

#: All severities, in decreasing order of severity.
SEVERITIES = (ERROR, WARNING, INFO)

#: The five artifact layers provlint analyses.  ``source`` is the odd one
#: out: its subject is a Python file of this codebase itself (the
#: concurrency rules ``SRC0xx``), not a stored provenance artifact.
LAYER_SPEC = "spec"
LAYER_RUN = "run"
LAYER_VIEW = "view"
LAYER_WAREHOUSE = "warehouse"
LAYER_SOURCE = "source"

LAYERS = (LAYER_SPEC, LAYER_RUN, LAYER_VIEW, LAYER_WAREHOUSE, LAYER_SOURCE)


class LintGateError(ZoomError):
    """A strict ingestion gate rejected an artifact with error findings.

    Raised by the ``strict=True`` paths of :mod:`repro.warehouse.loader`;
    carries the offending :class:`LintReport` on ``.report``.
    """

    def __init__(self, message: str, report: "LintReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule."""

    rule_id: str
    severity: str
    layer: str
    subject: str
    message: str
    location: Optional[str] = None
    hint: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by the JSON reporter)."""
        payload: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "layer": self.layer,
            "subject": self.subject,
            "message": self.message,
        }
        if self.location is not None:
            payload["location"] = self.location
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def __str__(self) -> str:
        where = self.subject
        if self.location:
            where = "%s:%s" % (self.subject, self.location)
        return "%s %s [%s] %s" % (self.rule_id, self.severity, where, self.message)


@dataclass
class LintReport:
    """An ordered collection of findings with aggregate helpers."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> "LintReport":
        self.findings.extend(findings)
        return self

    def merge(self, other: "LintReport") -> "LintReport":
        self.findings.extend(other.findings)
        return self

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def of_severity(self, severity: str) -> List[Finding]:
        """Findings carrying one severity."""
        return [f for f in self.findings if f.severity == severity]

    def errors(self) -> List[Finding]:
        """The error-severity findings (what a strict gate rejects on)."""
        return self.of_severity(ERROR)

    def warnings(self) -> List[Finding]:
        return self.of_severity(WARNING)

    @property
    def has_errors(self) -> bool:
        return any(f.severity == ERROR for f in self.findings)

    def ok(self, strict: bool = False) -> bool:
        """Whether the artifact passes: no errors (strict: no findings)."""
        if strict:
            return not self.findings
        return not self.has_errors

    def rule_ids(self) -> List[str]:
        """Sorted distinct rule ids appearing in the report."""
        return sorted({f.rule_id for f in self.findings})

    def by_rule(self) -> Dict[str, List[Finding]]:
        """Findings grouped by rule id."""
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule_id, []).append(finding)
        return grouped

    def counts(self) -> Dict[str, int]:
        """Number of findings per severity (all severities present)."""
        tally = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            tally[finding.severity] += 1
        return tally

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form: findings plus a summary block."""
        return {
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "counts": self.counts(),
                "rules": self.rule_ids(),
                "ok": self.ok(),
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Plain-text rendering: one line per finding plus a summary."""
        lines = [str(f) for f in self.sorted_findings()]
        tally = self.counts()
        lines.append(
            "%d finding(s): %d error(s), %d warning(s), %d info"
            % (len(self.findings), tally[ERROR], tally[WARNING], tally[INFO])
        )
        return "\n".join(lines)

    def sorted_findings(self) -> List[Finding]:
        """Findings ordered by severity, then rule id, then subject."""
        rank = {severity: index for index, severity in enumerate(SEVERITIES)}
        return sorted(
            self.findings,
            key=lambda f: (
                rank[f.severity],
                f.rule_id,
                f.subject,
                f.location or "",
            ),
        )
