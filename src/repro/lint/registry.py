"""The provlint rule registry: stable ids, severities, per-rule toggles.

Every rule the analyzers can emit is declared here up front, in one
catalogue, so that

* rule ids are stable and collision-checked (``SPEC001``-style),
* severities live in exactly one place,
* ``--select`` / ``--ignore`` can validate the ids they are given, and
* the documentation table in ``docs/linting.md`` can be cross-checked
  against the code.

Analyzer modules build findings through :meth:`RuleRegistry.finding`,
which stamps the registered severity and layer onto the finding — an
analyzer cannot emit an id it never declared.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from .findings import LAYERS, SEVERITIES, Finding

_RULE_ID = re.compile(r"^[A-Z]{2,6}\d{3}$")


@dataclass(frozen=True)
class Rule:
    """Declaration of one lint rule."""

    rule_id: str
    layer: str
    severity: str
    summary: str

    def __post_init__(self) -> None:
        if not _RULE_ID.match(self.rule_id):
            raise ValueError("malformed rule id %r" % self.rule_id)
        if self.layer not in LAYERS:
            raise ValueError("unknown layer %r for %s" % (self.layer, self.rule_id))
        if self.severity not in SEVERITIES:
            raise ValueError(
                "unknown severity %r for %s" % (self.severity, self.rule_id)
            )


class RuleRegistry:
    """All declared rules, addressable by id."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule_id: str, layer: str, severity: str, summary: str) -> Rule:
        """Declare a rule; duplicate ids are programming errors."""
        if rule_id in self._rules:
            raise ValueError("duplicate rule id %r" % rule_id)
        rule = Rule(rule_id, layer, severity, summary)
        self._rules[rule_id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError("unknown lint rule %r" % rule_id) from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def all_rules(self) -> List[Rule]:
        """Every declared rule, ordered by id."""
        return [self._rules[rule_id] for rule_id in sorted(self._rules)]

    def by_layer(self, layer: str) -> List[Rule]:
        return [r for r in self.all_rules() if r.layer == layer]

    def finding(
        self,
        rule_id: str,
        subject: str,
        message: str,
        location: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding, stamping the rule's severity and layer."""
        rule = self.get(rule_id)
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            layer=rule.layer,
            subject=subject,
            message=message,
            location=location,
            hint=hint,
        )


#: The process-wide catalogue all analyzer modules register into.
RULES = RuleRegistry()


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule enable/disable, mirroring ``--select`` / ``--ignore``.

    ``select`` of ``None`` means "all rules"; ``ignore`` always wins over
    ``select``.  Ids are validated against the registry so a typo fails
    loudly instead of silently disabling nothing.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()

    @classmethod
    def build(
        cls,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        registry: RuleRegistry = RULES,
    ) -> "RuleConfig":
        """Validate ids against ``registry`` and build a config."""
        selected = None if select is None else frozenset(select)
        ignored = frozenset(ignore or ())
        for rule_id in (selected or frozenset()) | ignored:
            registry.get(rule_id)  # raises KeyError on unknown ids
        return cls(select=selected, ignore=ignored)

    def enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True
