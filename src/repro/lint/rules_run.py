"""Run-layer lint rules (``RUN0xx``).

The analyzer operates on :class:`RunFacts`, a neutral digest of a run's
dataflow that can be extracted from three sources without executing
anything:

* an :class:`~repro.run.log.EventLog` (pre-ingestion lint of a workflow
  trace — event positions are known, so time-ordering rules apply),
* a constructed :class:`~repro.run.run.WorkflowRun` (auditing an in-memory
  graph without tripping its fail-fast ``validate``),
* the warehouse's ``step``/``io``/``user_input``/``final_output`` rows
  (auditing provenance at rest; positions unknown).

Spec-conformance rules fire only when the facts carry the specification's
modules and edges; a warehouse whose spec rows are themselves corrupt
still gets its dataflow audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from ..core.spec import ENDPOINTS, INPUT, OUTPUT, WorkflowSpec
from ..run.log import EventLog
from ..run.run import WorkflowRun
from .findings import ERROR, LAYER_RUN, WARNING, Finding
from .registry import RULES

RULES.register("RUN010", LAYER_RUN, ERROR,
               "duplicate step id (started twice or reserved)")
RULES.register("RUN011", LAYER_RUN, ERROR,
               "step executes a module the specification does not declare")
RULES.register("RUN012", LAYER_RUN, ERROR,
               "data object with more than one producer")
RULES.register("RUN013", LAYER_RUN, ERROR,
               "step reads a data object nothing produced")
RULES.register("RUN014", LAYER_RUN, ERROR,
               "data object read before it was written (log order)")
RULES.register("RUN015", LAYER_RUN, ERROR,
               "dataflow between steps is cyclic (run must be a DAG)")
RULES.register("RUN016", LAYER_RUN, ERROR,
               "read/write recorded for a step that never started")
RULES.register("RUN017", LAYER_RUN, ERROR,
               "final output was never produced")
RULES.register("RUN018", LAYER_RUN, WARNING,
               "orphan data: written but never read nor a final output")
RULES.register("RUN019", LAYER_RUN, WARNING,
               "dataflow edge has no corresponding specification edge")


@dataclass
class RunFacts:
    """Everything the run rules need, decoupled from the source artifact.

    ``reads``/``writes`` carry the event position when known (log lint)
    and ``None`` when not (run graphs, warehouse rows); position-sensitive
    rules simply skip positionless entries.
    """

    run_id: str
    steps: List[Tuple[str, str]] = field(default_factory=list)  # (step, module)
    reads: List[Tuple[Optional[int], str, str]] = field(default_factory=list)
    writes: List[Tuple[Optional[int], str, str]] = field(default_factory=list)
    user_inputs: List[str] = field(default_factory=list)
    final_outputs: List[str] = field(default_factory=list)
    spec_modules: Optional[FrozenSet[str]] = None
    spec_edges: Optional[FrozenSet[Tuple[str, str]]] = None

    @classmethod
    def from_log(cls, log: EventLog, spec: Optional[WorkflowSpec] = None) -> "RunFacts":
        facts = cls(run_id=log.run_id)
        for position, event in enumerate(log):
            if event.kind == "start":
                facts.steps.append((event.step_id, event.module))
            elif event.kind == "read":
                facts.reads.append((position, event.step_id, event.data_id))
            elif event.kind == "write":
                facts.writes.append((position, event.step_id, event.data_id))
            elif event.kind == "user_input":
                facts.user_inputs.append(event.data_id)
            elif event.kind == "final_output":
                facts.final_outputs.append(event.data_id)
        if spec is not None:
            facts.attach_spec(spec.modules, spec.edges())
        return facts

    @classmethod
    def from_run(cls, run: WorkflowRun) -> "RunFacts":
        facts = cls(run_id=run.run_id)
        for step in run.steps():
            facts.steps.append((step.step_id, step.module))
            for data_id in sorted(run.inputs_of(step.step_id)):
                facts.reads.append((None, step.step_id, data_id))
            for data_id in sorted(run.outputs_of(step.step_id)):
                facts.writes.append((None, step.step_id, data_id))
        facts.user_inputs = sorted(run.user_inputs())
        facts.final_outputs = sorted(run.final_outputs())
        facts.attach_spec(run.spec.modules, run.spec.edges())
        return facts

    @classmethod
    def from_rows(
        cls,
        run_id: str,
        steps: List[Tuple[str, str]],
        io_rows: List[Tuple[str, str, str]],
        user_inputs: FrozenSet[str],
        final_outputs: FrozenSet[str],
    ) -> "RunFacts":
        """Digest warehouse rows (``io`` direction values: in/out)."""
        facts = cls(run_id=run_id)
        facts.steps = list(steps)
        for step_id, data_id, direction in io_rows:
            if direction == "out":
                facts.writes.append((None, step_id, data_id))
            else:
                facts.reads.append((None, step_id, data_id))
        facts.user_inputs = sorted(user_inputs)
        facts.final_outputs = sorted(final_outputs)
        return facts

    def attach_spec(self, modules, edges) -> None:
        """Enable the spec-conformance rules (RUN011, RUN019)."""
        self.spec_modules = frozenset(modules)
        self.spec_edges = frozenset(edges)


def lint_run_facts(facts: RunFacts) -> List[Finding]:
    """Run every ``RUN0xx`` rule over one digest."""
    findings: List[Finding] = []
    subject = facts.run_id

    step_module: Dict[str, str] = {}
    for step_id, module in facts.steps:
        if step_id in step_module or step_id in ENDPOINTS:
            findings.append(RULES.finding(
                "RUN010", subject,
                "step id %r is duplicated or reserved" % step_id,
                location=step_id,
                hint="every step needs a fresh id; 'input'/'output' are"
                     " reserved",
            ))
            continue
        step_module[step_id] = module
        if facts.spec_modules is not None and module not in facts.spec_modules:
            findings.append(RULES.finding(
                "RUN011", subject,
                "step %r executes unknown module %r" % (step_id, module),
                location=step_id,
                hint="the specification declares no such module",
            ))

    # Producers: first writer wins; later writers (or a write over a user
    # input) are multi-producer violations.
    producer: Dict[str, Tuple[Optional[int], str]] = {
        data_id: (None, INPUT) for data_id in facts.user_inputs
    }
    write_position: Dict[str, int] = {}
    for position, step_id, data_id in facts.writes:
        if step_id not in step_module:
            findings.append(RULES.finding(
                "RUN016", subject,
                "write of %r by unknown step %r" % (data_id, step_id),
                location=step_id,
                hint="no start event / step row declares this step",
            ))
        previous = producer.get(data_id)
        if previous is not None and previous[1] != step_id:
            findings.append(RULES.finding(
                "RUN012", subject,
                "data %r produced by both %r and %r"
                % (data_id, previous[1], step_id),
                location=data_id,
                hint="every data object has at most one producer",
            ))
            continue
        producer[data_id] = (position, step_id)
        if position is not None and data_id not in write_position:
            write_position[data_id] = position

    for position, step_id, data_id in facts.reads:
        if step_id not in step_module:
            findings.append(RULES.finding(
                "RUN016", subject,
                "read of %r by unknown step %r" % (data_id, step_id),
                location=step_id,
                hint="no start event / step row declares this step",
            ))
        source = producer.get(data_id)
        if source is None:
            findings.append(RULES.finding(
                "RUN013", subject,
                "step %r reads %r which nothing produced"
                % (step_id, data_id),
                location=data_id,
                hint="add the producing write or a user-input event",
            ))
        elif (
            position is not None
            and data_id in write_position
            and write_position[data_id] > position
        ):
            findings.append(RULES.finding(
                "RUN014", subject,
                "step %r reads %r at event %d before its write at event %d"
                % (step_id, data_id, position, write_position[data_id]),
                location=data_id,
                hint="logs must record writes before dependent reads",
            ))

    for data_id in facts.final_outputs:
        if data_id not in producer:
            findings.append(RULES.finding(
                "RUN017", subject,
                "final output %r was never produced" % data_id,
                location=data_id,
                hint="final outputs must be written by a step or supplied"
                     " by the user",
            ))

    read_data: Set[str] = {data_id for _p, _s, data_id in facts.reads}
    finals = set(facts.final_outputs)
    for _position, step_id, data_id in facts.writes:
        if data_id not in read_data and data_id not in finals:
            findings.append(RULES.finding(
                "RUN018", subject,
                "data %r written by %r is never read and is not a final"
                " output" % (data_id, step_id),
                location=data_id,
                hint="dead data inflates the warehouse; drop it or mark it"
                     " final",
            ))

    findings.extend(_dataflow_findings(facts, step_module, producer))
    return findings


def _is_acyclic(
    nodes: Dict[str, str], edges: Set[Tuple[str, str]]
) -> bool:
    """Kahn's algorithm over plain dicts — the lint hot path.

    Dataflow graphs are almost always DAGs, so the common case should not
    pay for graph-object construction; endpoints appearing only in
    ``edges`` (``output``) are picked up from the edge set itself.
    """
    indegree: Dict[str, int] = dict.fromkeys(nodes, 0)
    successors: Dict[str, List[str]] = {}
    for src, dst in edges:
        indegree.setdefault(src, 0)
        indegree[dst] = indegree.get(dst, 0) + 1
        successors.setdefault(src, []).append(dst)
    ready = [node for node, degree in indegree.items() if degree == 0]
    visited = 0
    while ready:
        node = ready.pop()
        visited += 1
        for nxt in successors.get(node, ()):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    return visited == len(indegree)


def _dataflow_findings(
    facts: RunFacts,
    step_module: Dict[str, str],
    producer: Dict[str, Tuple[Optional[int], str]],
) -> List[Finding]:
    """RUN015 (cycles) and RUN019 (spec conformance) over the step graph."""
    findings: List[Finding] = []
    subject = facts.run_id
    edges: Set[Tuple[str, str]] = set()
    for _position, step_id, data_id in facts.reads:
        source = producer.get(data_id)
        if source is None or source[1] == step_id:
            continue
        edges.add((source[1], step_id))
    for data_id in facts.final_outputs:
        source = producer.get(data_id)
        if source is not None:
            edges.add((source[1], OUTPUT))

    if not _is_acyclic(step_module, edges):
        # Cycles are the exception: only then pay for the graph object and
        # the SCC decomposition that names the offending steps.
        graph = nx.DiGraph()
        graph.add_nodes_from(step_module)
        graph.add_edges_from(edges)
        cycle_steps = sorted({
            node
            for scc in nx.strongly_connected_components(graph)
            if len(scc) > 1
            for node in scc
        })
        findings.append(RULES.finding(
            "RUN015", subject,
            "cyclic dataflow among steps %s" % ", ".join(cycle_steps),
            hint="loops are unrolled into fresh steps; a run graph must be"
                 " acyclic",
        ))

    if facts.spec_edges is not None:
        allowed = (
            None if facts.spec_modules is None
            else facts.spec_modules | ENDPOINTS
        )
        for src, dst in sorted(edges):
            src_mod = src if src in ENDPOINTS else step_module.get(src)
            dst_mod = dst if dst in ENDPOINTS else step_module.get(dst)
            if src_mod is None or dst_mod is None:
                continue  # unknown step/module already reported
            if allowed is not None and (
                src_mod not in allowed or dst_mod not in allowed
            ):
                continue
            if (src_mod, dst_mod) not in facts.spec_edges:
                findings.append(RULES.finding(
                    "RUN019", subject,
                    "dataflow %s -> %s has no specification edge %s -> %s"
                    % (src, dst, src_mod, dst_mod),
                    location="%s->%s" % (src, dst),
                    hint="the run exchanges data along a channel the"
                         " specification does not declare",
                ))
    return findings


def lint_log(log: EventLog, spec: Optional[WorkflowSpec] = None) -> List[Finding]:
    """Lint an event log without reconstructing the run graph."""
    return lint_run_facts(RunFacts.from_log(log, spec))


def lint_run(run: WorkflowRun) -> List[Finding]:
    """Lint a constructed run graph without raising on the first defect."""
    return lint_run_facts(RunFacts.from_run(run))
