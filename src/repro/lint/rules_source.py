"""Source-layer concurrency lint rules (``SRC05x``) over this codebase.

The other provlint layers audit *stored artifacts*; this one audits the
serving stack's own Python source for thread-safety hazards, using the
comment annotations the code already carries:

``# guarded-by: <lock>``
    on a field's assignment: every *mutation* of the field must happen
    inside ``with <lock>`` (reads are deliberately unchecked — the
    codebase's write-locked / read-free structures rely on atomic CPython
    reads).  The runtime twin of this contract is
    :class:`repro.sanitize.GuardedState`.
``# thread-owned``
    on a field's assignment (e.g. a SQLite write connection): the field
    may only be touched inside ``__init__`` or a method annotated
    ``# owner-only`` — the blessed routing points that enforce thread
    affinity at runtime.
``# owner-only``
    on a ``def`` line: marks that method as a blessed accessor of
    thread-owned state.
``# provlint: ignore=SRC0xx[,SRC0yy]``
    on (or immediately above) a line: suppresses those rules there.

The rules:

``SRC050`` (error)
    thread-owned attribute accessed outside ``__init__`` or an
    ``# owner-only`` method.
``SRC051`` (error)
    bare ``<lock>.acquire()`` statement not immediately followed by a
    ``try``/``finally`` that releases the same lock — an exception
    between the two leaks the lock forever.
``SRC052`` (error)
    field with a ``# guarded-by:`` annotation mutated outside ``with``
    on its declared guard.  ``__init__`` (the declaration site) and
    methods named ``*_locked`` (contract: caller holds the lock) are
    exempt.
``SRC053`` (warning)
    blocking call (``time.sleep``, ``open``, ``subprocess.*``,
    ``socket.*``, ``requests.*``, ``urllib.*``, ``input``) inside a
    ``with <lock>`` block — a sleeping thread must not serialize its
    siblings.
``SRC054`` (warning)
    a lock is assigned but never acquired through ``with`` anywhere in
    its module — only bare ``acquire``/``release`` pairs (or nothing at
    all), so no ``__exit__``-safe acquisition exists.
``SRC055`` (error)
    statically nested ``with`` blocks acquire two locks in both orders
    across the linted file set — the textbook ABBA deadlock, caught
    without running anything.  The dynamic twin is the sanitizer's
    lock-order graph.
``SRC056`` (warning)
    a hook/listener/callback is invoked while holding a lock — re-entrant
    handlers touching the same structure deadlock or corrupt it; fire
    outside the critical section (as ``BoundedCache._fire`` does).
``SRC057`` (warning)
    raw ``threading.Lock()`` / ``threading.RLock()`` construction; use
    :func:`repro.sanitize.make_lock` so sanitize mode can instrument it.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import ERROR, LAYER_SOURCE, WARNING, Finding
from .registry import RULES

RULES.register("SRC050", LAYER_SOURCE, ERROR,
               "thread-owned attribute accessed outside __init__ or an"
               " owner-only method")
RULES.register("SRC051", LAYER_SOURCE, ERROR,
               "bare lock.acquire() without an adjacent try/finally"
               " release")
RULES.register("SRC052", LAYER_SOURCE, ERROR,
               "guarded-by field mutated outside 'with' on its declared"
               " lock")
RULES.register("SRC053", LAYER_SOURCE, WARNING,
               "blocking call (sleep/IO) inside a locked region")
RULES.register("SRC054", LAYER_SOURCE, WARNING,
               "lock never acquired through 'with' (no __exit__-safe"
               " acquisition)")
RULES.register("SRC055", LAYER_SOURCE, ERROR,
               "nested 'with' blocks acquire two locks in both orders"
               " (static ABBA deadlock)")
RULES.register("SRC056", LAYER_SOURCE, WARNING,
               "hook/listener/callback invoked while holding a lock")
RULES.register("SRC057", LAYER_SOURCE, WARNING,
               "raw threading.Lock()/RLock(); use repro.sanitize.make_lock")

_PRAGMA = re.compile(r"#\s*provlint:\s*ignore=([A-Z0-9,\s]+)")
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_THREAD_OWNED = re.compile(r"#\s*thread-owned\b")
_OWNER_ONLY = re.compile(r"#\s*owner-only\b")

#: Container methods that mutate their receiver (mirror of the runtime
#: list in :mod:`repro.sanitize.guards`).
_MUTATORS = frozenset({
    "append", "add", "insert", "extend", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
})

#: Dotted-name prefixes/names considered blocking for SRC053.
_BLOCKING_EXACT = frozenset({"time.sleep", "open", "input", "sleep"})
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.")

#: Substrings marking a callable as a hook-style re-entrancy hazard.
_HOOKISH = ("hook", "listener", "callback", "notify")


def _dotted(node: ast.AST) -> Optional[str]:
    """``time.sleep`` for ``time.sleep(...)``, ``open`` for ``open(...)``."""
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return "%s.%s" % (base, node.attr) if base else node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _bound_name(node: ast.AST) -> Optional[str]:
    """The field name behind ``self.x`` / ``cls.x`` / bare ``x``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id in ("self", "cls"):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lock_factory_call(node: ast.AST) -> bool:
    """Whether ``node`` is a call to make_lock / threading.Lock / RLock."""
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted in ("make_lock", "threading.Lock", "threading.RLock",
                      "Lock", "RLock")


def _is_raw_threading_lock(node: ast.Call) -> bool:
    return _dotted(node.func) in ("threading.Lock", "threading.RLock")


class _Module:
    """Everything collected about one source file before rule evaluation."""

    def __init__(self, filename: str, text: str) -> None:
        self.filename = filename
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=filename)
        #: line -> rule ids suppressed there (the pragma's own line and
        #: the line after it, so a pragma may sit above the statement).
        self.pragmas: Dict[int, Set[str]] = {}
        #: guarded field name -> (lock name, declaration line).
        self.guarded: Dict[str, Tuple[str, int]] = {}
        #: thread-owned field names.
        self.thread_owned: Set[str] = set()
        #: lock-ish names assigned in this module -> definition line.
        self.locks: Dict[str, int] = {}
        #: lock names that appear as a `with` context anywhere.
        self.with_used: Set[str] = set()
        self._collect()

    # -- collection ----------------------------------------------------

    def _line(self, number: int) -> str:
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def _comment_in_span(self, node: ast.stmt, pattern: "re.Pattern[str]"
                         ) -> Optional["re.Match[str]"]:
        """First match of ``pattern`` in the statement's line span."""
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        for number in range(node.lineno, end + 1):
            match = pattern.search(self._line(number))
            if match:
                return match
        return None

    def _collect(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                self.pragmas.setdefault(number, set()).update(rules)
                self.pragmas.setdefault(number + 1, set()).update(rules)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                names = [n for n in (_bound_name(t) for t in targets) if n]
                match = self._comment_in_span(node, _GUARDED_BY)
                if match:
                    for name in names:
                        self.guarded[name] = (match.group(1), node.lineno)
                if self._comment_in_span(node, _THREAD_OWNED):
                    self.thread_owned.update(names)
                value = node.value
                if value is not None and any(
                    _is_lock_factory_call(sub) for sub in ast.walk(value)
                ):
                    for name in names:
                        self.locks[name] = node.lineno
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    name = _bound_name(item.context_expr)
                    if name:
                        self.with_used.add(name)

    def ignored(self, rule_id: str, lineno: int) -> bool:
        return rule_id in self.pragmas.get(lineno, set())

    def is_lockish(self, name: str) -> bool:
        """Whether a `with`/acquire target is treated as a lock."""
        if name in self.locks:
            return True
        if name in {lock for lock, _line in self.guarded.values()}:
            return True
        lowered = name.lower()
        return "lock" in lowered or "mutex" in lowered or "mutate" in lowered


class _Walker(ast.NodeVisitor):
    """Scoped walk: tracks the held-lock stack and the enclosing method."""

    def __init__(self, module: _Module, findings: List[Finding],
                 order_edges: Dict[Tuple[str, str], str]) -> None:
        self.module = module
        self.findings = findings
        #: shared across files: (held, acquired) -> "file:line" of first sight.
        self.order_edges = order_edges
        self.held: List[str] = []
        self.func_stack: List[Tuple[str, bool]] = []  # (name, exempt)

    # -- helpers -------------------------------------------------------

    def _emit(self, rule_id: str, lineno: int, message: str,
              hint: Optional[str] = None) -> None:
        if self.module.ignored(rule_id, lineno):
            return
        self.findings.append(RULES.finding(
            rule_id, self.module.filename, message,
            location=str(lineno), hint=hint,
        ))

    def _in_exempt_method(self) -> bool:
        """Inside ``__init__`` or a ``*_locked`` method (any level)."""
        return any(exempt for _name, exempt in self.func_stack)

    def _owner_only_names(self) -> Set[str]:
        # cached on the module
        cached = getattr(self.module, "_owner_only", None)
        if cached is None:
            cached = set()
            for node in ast.walk(self.module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _OWNER_ONLY.search(self.module._line(node.lineno)):
                        cached.add(node.name)
            self.module._owner_only = cached  # type: ignore[attr-defined]
        return cached

    def _check_mutation(self, name: Optional[str], lineno: int,
                        operation: str) -> None:
        if name is None or name not in self.module.guarded:
            return
        lock, declared_at = self.module.guarded[name]
        if lineno == declared_at:
            return  # the declaration itself
        if lock in self.held:
            return
        if self._in_exempt_method():
            return
        self._emit(
            "SRC052", lineno,
            "%s of %r outside 'with %s' (its declared guard)"
            % (operation, name, lock),
            hint="wrap the mutation in 'with %s', or move it into a"
                 " *_locked helper whose callers hold the lock" % lock,
        )

    # -- scope management ----------------------------------------------

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
                        ) -> None:
        exempt = node.name == "__init__" or node.name.endswith("_locked")
        self.func_stack.append((node.name, exempt))
        # The body runs at call time, not under any currently-open `with`.
        held, self.held = self.held, []
        try:
            for child in node.body:
                self.visit(child)
        finally:
            self.held = held
            self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        held, self.held = self.held, []
        try:
            self.visit(node.body)
        finally:
            self.held = held

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        acquired: List[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            name = _bound_name(item.context_expr)
            if name and self.module.is_lockish(name):
                where = "%s:%d" % (self.module.filename, node.lineno)
                for held in self.held + acquired:
                    if held != name:
                        self.order_edges.setdefault((held, name), where)
                acquired.append(name)
        self.held.extend(acquired)
        try:
            for child in node.body:
                self.visit(child)
        finally:
            del self.held[len(self.held) - len(acquired):]

    # -- rule checks ---------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = _bound_name(node)
        if name in self.module.thread_owned:
            inside_init = any(n == "__init__" for n, _e in self.func_stack)
            if not inside_init and not (
                self.func_stack
                and self.func_stack[-1][0] in self._owner_only_names()
            ):
                self._emit(
                    "SRC050", node.lineno,
                    "thread-owned attribute %r accessed outside __init__"
                    " or an '# owner-only' method" % name,
                    hint="route access through the blessed accessor (e.g."
                         " the _conn property) or annotate the method"
                         " '# owner-only'",
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno, operation="delete")
        self.generic_visit(node)

    def _check_target(self, target: ast.AST, lineno: int,
                      operation: str = "assignment") -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._check_target(element, lineno, operation)
            return
        if isinstance(target, ast.Subscript):
            self._check_mutation(_bound_name(target.value), lineno,
                                 "item %s" % operation)
            return
        self._check_mutation(_bound_name(target), lineno, operation)

    def visit_Call(self, node: ast.Call) -> None:
        # Mutator method on a guarded container: self._data.pop(...) etc.
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            self._check_mutation(
                _bound_name(node.func.value), node.lineno,
                "call to .%s()" % node.func.attr,
            )
        if isinstance(node, ast.Call) and _is_raw_threading_lock(node):
            self._emit(
                "SRC057", node.lineno,
                "raw %s(); create locks through repro.sanitize.make_lock"
                " so sanitize mode can instrument them"
                % (_dotted(node.func) or "threading.Lock"),
                hint="make_lock(name, recursive=...) returns the same"
                     " plain lock outside sanitize mode",
            )
        if self.held:
            dotted = _dotted(node.func) or ""
            short = dotted.rsplit(".", 1)[-1]
            if (dotted in _BLOCKING_EXACT or short in ("sleep",)
                    or dotted.startswith(_BLOCKING_PREFIXES)):
                self._emit(
                    "SRC053", node.lineno,
                    "blocking call %s(...) while holding lock(s) %s"
                    % (dotted, ", ".join(self.held)),
                    hint="move the sleep/IO outside the critical section"
                         " (snapshot under the lock, act after releasing)",
                )
            lowered = short.lower()
            if any(token in lowered for token in _HOOKISH):
                self._emit(
                    "SRC056", node.lineno,
                    "%s(...) invoked while holding lock(s) %s — re-entrant"
                    " handlers can deadlock" % (dotted, ", ".join(self.held)),
                    hint="collect what to fire under the lock, fire after"
                         " releasing (see BoundedCache._fire)",
                )
        self.generic_visit(node)


def _check_bare_acquires(module: _Module, findings: List[Finding]) -> None:
    """``SRC051``: bare ``x.acquire()`` statements without try/finally."""
    for node in ast.walk(module.tree):
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list):
                bodies.append(block)
        for block in bodies:
            for index, stmt in enumerate(block):
                if not (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)
                        and isinstance(stmt.value.func, ast.Attribute)
                        and stmt.value.func.attr == "acquire"):
                    continue
                owner = _bound_name(stmt.value.func.value)
                if owner is None or not module.is_lockish(owner):
                    continue
                follower = block[index + 1] if index + 1 < len(block) else None
                if _releases_in_finally(follower, owner):
                    continue
                if module.ignored("SRC051", stmt.lineno):
                    continue
                findings.append(RULES.finding(
                    "SRC051", module.filename,
                    "bare %s.acquire() without an immediately following"
                    " try/finally that releases it — an exception leaks"
                    " the lock" % owner,
                    location=str(stmt.lineno),
                    hint="prefer 'with %s:'; if acquire must be explicit,"
                         " follow it with try/finally: %s.release()"
                         % (owner, owner),
                ))


def _releases_in_finally(stmt: Optional[ast.stmt], owner: str) -> bool:
    if not isinstance(stmt, ast.Try) or not stmt.finalbody:
        return False
    for node in stmt.finalbody:
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                    and _bound_name(sub.func.value) == owner):
                return True
    return False


def _check_unsafe_locks(module: _Module, findings: List[Finding]) -> None:
    """``SRC054``: assigned locks never acquired through ``with``."""
    for name, lineno in sorted(module.locks.items()):
        if name in module.with_used:
            continue
        if module.ignored("SRC054", lineno):
            continue
        findings.append(RULES.finding(
            "SRC054", module.filename,
            "lock %r is never acquired through 'with' in this module —"
            " no __exit__-safe acquisition exists" % name,
            location=str(lineno),
            hint="acquire it with 'with %s:' at least somewhere, or"
                 " document why bare acquire/release is required" % name,
        ))


def _order_cycle_findings(
    order_edges: Dict[Tuple[str, str], str]
) -> List[Finding]:
    """``SRC055``: both orders observed between two (or more) locks."""
    adjacency: Dict[str, Set[str]] = {}
    for held, acquired in order_edges:
        adjacency.setdefault(held, set()).add(acquired)

    def reachable(start: str, goal: str) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            here = frontier.pop()
            for there in adjacency.get(here, ()):
                if there == goal:
                    return True
                if there not in seen:
                    seen.add(there)
                    frontier.append(there)
        return False

    findings: List[Finding] = []
    reported: Set[Tuple[str, str]] = set()
    for (held, acquired), where in sorted(order_edges.items()):
        if (acquired, held) in reported:
            continue
        if reachable(acquired, held):
            reported.add((held, acquired))
            other = order_edges.get((acquired, held))
            filename, _colon, line = where.rpartition(":")
            findings.append(RULES.finding(
                "SRC055", filename or where,
                "lock order cycle: %r acquired while holding %r here, but"
                " a path %s -> %s also exists%s"
                % (acquired, held, acquired, held,
                   " (opposite order at %s)" % other if other else ""),
                location=line or None,
                hint="pick one global acquisition order and document it"
                     " where the locks are created",
            ))
    return findings


def lint_source_text(
    text: str,
    filename: str = "<string>",
    order_edges: Optional[Dict[Tuple[str, str], str]] = None,
) -> List[Finding]:
    """Run every SRC rule over one module's source text.

    ``order_edges`` threads a shared nested-``with`` graph through a
    multi-file pass (cycles are then reported by the caller); when
    ``None``, cycles are detected within this module alone.
    """
    findings: List[Finding] = []
    try:
        module = _Module(filename, text)
    except SyntaxError as exc:
        # Not a rule violation: surface as an un-lintable file.
        findings.append(RULES.finding(
            "SRC054", filename,
            "file could not be parsed: %s" % exc,
            location=str(exc.lineno or 0),
            hint="fix the syntax error, then re-lint",
        ))
        return findings
    shared = order_edges if order_edges is not None else {}
    walker = _Walker(module, findings, shared)
    walker.visit(module.tree)
    _check_bare_acquires(module, findings)
    _check_unsafe_locks(module, findings)
    if order_edges is None:
        findings.extend(_order_cycle_findings(shared))
    return findings


def lint_source_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint ``.py`` files (files or directory trees) with every SRC rule.

    The nested-``with`` lock-order graph is shared across the whole file
    set, so an ABBA pair split between two modules is still caught.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    findings: List[Finding] = []
    order_edges: Dict[Tuple[str, str], str] = {}
    for filename in sorted(set(files)):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            findings.append(RULES.finding(
                "SRC054", filename,
                "file could not be read: %s" % exc,
                hint="check the path passed to 'zoom lint --source'",
            ))
            continue
        findings.extend(lint_source_text(
            text, filename=filename, order_edges=order_edges,
        ))
    findings.extend(_order_cycle_findings(order_edges))
    return findings
