"""Spec-layer lint rules (``SPEC0xx``).

These rules analyse the *raw payload* of a specification — the JSON shape
``{"name", "modules", "edges"}`` produced by ``WorkflowSpec.to_dict`` and
stored row-for-row in the warehouse — rather than a constructed
:class:`~repro.core.spec.WorkflowSpec`.  Construction is fail-fast and
stops at the first violation; the linter instead reports every problem in
one pass, and can therefore audit artifacts the constructor would refuse
(a spec JSON file before ``zoom load``, corrupt ``module``/``spec_edge``
rows at rest).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import networkx as nx

from ..core.spec import ENDPOINTS, INPUT, OUTPUT, WorkflowSpec
from .findings import ERROR, INFO, LAYER_SPEC, WARNING, Finding
from .registry import RULES

RULES.register("SPEC001", LAYER_SPEC, ERROR,
               "module label is empty, not a string, or reserved")
RULES.register("SPEC002", LAYER_SPEC, ERROR,
               "duplicate module label")
RULES.register("SPEC003", LAYER_SPEC, ERROR,
               "edge references an unknown node (dangling edge)")
RULES.register("SPEC004", LAYER_SPEC, ERROR,
               "edge flows into the input node or out of the output node")
RULES.register("SPEC005", LAYER_SPEC, ERROR,
               "self-loop on a module")
RULES.register("SPEC006", LAYER_SPEC, ERROR,
               "module unreachable from the input node")
RULES.register("SPEC007", LAYER_SPEC, ERROR,
               "module cannot reach the output node")
RULES.register("SPEC008", LAYER_SPEC, WARNING,
               "specification declares no modules")
RULES.register("SPEC009", LAYER_SPEC, INFO,
               "specification contains loops (unrolled at execution time)")


def spec_payload(spec: WorkflowSpec) -> Dict[str, object]:
    """The raw payload of an already-constructed specification."""
    return spec.to_dict()


def lint_spec_payload(payload: Mapping[str, object]) -> List[Finding]:
    """Run every ``SPEC0xx`` rule over one raw spec payload."""
    findings: List[Finding] = []
    subject = str(payload.get("name", "spec"))
    raw_modules = list(payload.get("modules") or [])  # type: ignore[arg-type]
    raw_edges = [tuple(e) for e in (payload.get("edges") or [])]  # type: ignore[union-attr]

    modules: List[str] = []
    seen: set = set()
    for label in raw_modules:
        if not isinstance(label, str) or not label or label in ENDPOINTS:
            findings.append(RULES.finding(
                "SPEC001", subject,
                "invalid module label %r" % (label,),
                hint="labels must be non-empty strings other than"
                     " 'input'/'output'",
            ))
            continue
        if label in seen:
            findings.append(RULES.finding(
                "SPEC002", subject,
                "module %r declared more than once" % label,
                location=label,
                hint="drop the duplicate declaration",
            ))
            continue
        seen.add(label)
        modules.append(label)

    if not modules:
        findings.append(RULES.finding(
            "SPEC008", subject,
            "specification has no modules",
            hint="a workflow needs at least one module between input and"
                 " output",
        ))

    known = set(modules) | set(ENDPOINTS)
    graph = nx.DiGraph()
    graph.add_nodes_from(known)
    for edge in raw_edges:
        if len(edge) != 2 or not all(isinstance(n, str) for n in edge):
            findings.append(RULES.finding(
                "SPEC003", subject,
                "malformed edge %r" % (edge,),
                hint="edges are (source, target) pairs of node labels",
            ))
            continue
        src, dst = edge
        edge_loc = "%s->%s" % (src, dst)
        if src not in known or dst not in known:
            unknown = sorted({n for n in (src, dst) if n not in known})
            findings.append(RULES.finding(
                "SPEC003", subject,
                "edge references unknown node(s) %s" % ", ".join(
                    repr(n) for n in unknown),
                location=edge_loc,
                hint="declare the module or remove the edge",
            ))
            continue
        if dst == INPUT or src == OUTPUT:
            findings.append(RULES.finding(
                "SPEC004", subject,
                "the input node must be the unique source and the output"
                " node the unique sink",
                location=edge_loc,
                hint="input cannot receive edges; output cannot emit them",
            ))
            continue
        if src == dst:
            findings.append(RULES.finding(
                "SPEC005", subject,
                "self-loop on %r" % src,
                location=edge_loc,
                hint="loops must span at least two modules",
            ))
            continue
        graph.add_edge(src, dst)

    # Reachability over the tolerated edges: every module must lie on some
    # input -> output path.
    reach = set(nx.descendants(graph, INPUT)) | {INPUT}
    coreach = set(nx.ancestors(graph, OUTPUT)) | {OUTPUT}
    for module in modules:
        if module not in reach:
            findings.append(RULES.finding(
                "SPEC006", subject,
                "module %r is unreachable from the input node" % module,
                location=module,
                hint="connect it (transitively) to input, or remove it",
            ))
        if module not in coreach:
            findings.append(RULES.finding(
                "SPEC007", subject,
                "module %r cannot reach the output node" % module,
                location=module,
                hint="connect it (transitively) to output, or remove it",
            ))

    if not nx.is_directed_acyclic_graph(graph):
        cycle_nodes = sorted({
            node
            for scc in nx.strongly_connected_components(graph)
            if len(scc) > 1
            for node in scc
        })
        findings.append(RULES.finding(
            "SPEC009", subject,
            "loop(s) among modules %s will be unrolled at execution time"
            % ", ".join(cycle_nodes),
            hint="informational: loops are legal in specifications",
        ))

    return findings
