"""View-layer lint rules (``VIEW0xx``).

Two entry points:

* :func:`lint_view_payload` audits the *raw* composite/member rows of a
  stored view against a spec's module set — the partition laws a
  constructed :class:`~repro.core.view.UserView` enforces fail-fast, here
  collected exhaustively so corrupt ``view_member`` rows at rest surface
  as findings instead of load-time exceptions;
* :func:`lint_view` audits a constructed view, surfacing the paper's
  Section III guarantees — Properties 1-3, minimality, manufactured
  loops, connectivity of relevant composites — as lint findings instead
  of test-only oracles.  Property rules need the relevant set; structural
  rules (loops) apply regardless.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

import networkx as nx

from ..core.properties import (
    _PairTables,
    introduces_loop,
    is_minimal,
    is_well_formed,
)
from ..core.spec import ENDPOINTS
from ..core.view import UserView
from .findings import ERROR, LAYER_VIEW, WARNING, Finding
from .registry import RULES

RULES.register("VIEW020", LAYER_VIEW, ERROR,
               "composite contains a module the specification lacks")
RULES.register("VIEW021", LAYER_VIEW, ERROR,
               "module assigned to more than one composite")
RULES.register("VIEW022", LAYER_VIEW, ERROR,
               "view does not cover every specification module")
RULES.register("VIEW023", LAYER_VIEW, ERROR,
               "composite name is reserved or composite is empty")
RULES.register("VIEW024", LAYER_VIEW, ERROR,
               "Property 1 violated: composite holds several relevant modules")
RULES.register("VIEW025", LAYER_VIEW, ERROR,
               "Property 2 violated: view invents dataflow between relevant"
               " modules")
RULES.register("VIEW026", LAYER_VIEW, ERROR,
               "Property 3 violated: view loses dataflow between relevant"
               " modules")
RULES.register("VIEW027", LAYER_VIEW, WARNING,
               "view is not minimal: some composites can be merged")
RULES.register("VIEW028", LAYER_VIEW, WARNING,
               "view introduces a loop the specification does not have")
RULES.register("VIEW029", LAYER_VIEW, WARNING,
               "relevant composite is not weakly connected in the"
               " specification")


def view_payload(view: UserView) -> Dict[str, List[str]]:
    """Raw composite -> members mapping of a constructed view."""
    return {c: sorted(view.members(c)) for c in sorted(view.composites)}


def lint_view_payload(
    name: str,
    composites: Mapping[str, Iterable[str]],
    spec_modules: FrozenSet[str],
) -> List[Finding]:
    """Audit raw composite/member rows against a module set."""
    findings: List[Finding] = []
    assigned: Dict[str, str] = {}
    for composite in sorted(composites):
        members = list(composites[composite])
        if composite in ENDPOINTS or not members:
            findings.append(RULES.finding(
                "VIEW023", name,
                "composite %r is reserved or empty" % composite,
                location=composite,
                hint="composites need a fresh name and at least one member",
            ))
        for module in members:
            if module not in spec_modules:
                findings.append(RULES.finding(
                    "VIEW020", name,
                    "composite %r contains unknown module %r"
                    % (composite, module),
                    location=composite,
                    hint="the viewed specification declares no such module",
                ))
                continue
            if module in assigned and assigned[module] != composite:
                findings.append(RULES.finding(
                    "VIEW021", name,
                    "module %r appears in composites %r and %r"
                    % (module, assigned[module], composite),
                    location=module,
                    hint="a view is a partition: each module belongs to"
                         " exactly one composite",
                ))
                continue
            assigned[module] = composite
    missing = sorted(spec_modules - set(assigned))
    if missing:
        findings.append(RULES.finding(
            "VIEW022", name,
            "view does not cover modules %s" % ", ".join(missing),
            hint="every specification module must belong to a composite",
        ))
    return findings


def lint_view(
    view: UserView,
    relevant: Optional[Iterable[str]] = None,
    check_minimality: bool = False,
) -> List[Finding]:
    """Audit a constructed view; property rules need ``relevant``."""
    findings: List[Finding] = []
    subject = view.name

    if introduces_loop(view):
        findings.append(RULES.finding(
            "VIEW028", subject,
            "the induced specification has a loop with no counterpart in"
            " %r" % view.spec.name,
            hint="a composite groups a module with one of its transitive"
                 " consumers",
        ))

    if relevant is None:
        return findings

    rel = frozenset(relevant)
    unknown = sorted(rel - view.spec.modules)
    for module in unknown:
        findings.append(RULES.finding(
            "VIEW020", subject,
            "relevant module %r is not in the specification" % module,
            location=module,
            hint="flag only declared modules as relevant",
        ))
    rel = rel & view.spec.modules

    well_formed = is_well_formed(view, rel)
    if not well_formed:
        for composite in sorted(view.composites):
            hits = sorted(view.members(composite) & rel)
            if len(hits) > 1:
                findings.append(RULES.finding(
                    "VIEW024", subject,
                    "composite %r contains relevant modules %s"
                    % (composite, ", ".join(hits)),
                    location=composite,
                    hint="split the composite so each holds at most one"
                         " relevant module (Property 1)",
                ))
        # Properties 2/3 are only defined for well-formed views.
        return findings

    tables = _PairTables(view, rel)
    invented = False
    lost = False
    for edge in tables.surviving_edges():
        ground = tables.ground_pairs(edge)
        lifted = tables.lifted_pairs(edge)
        if not invented and not lifted <= ground:
            invented = True
            findings.append(RULES.finding(
                "VIEW025", subject,
                "edge %s -> %s serves relevant pair(s) %s in the view but"
                " not in the specification"
                % (edge[0], edge[1],
                   ", ".join(sorted("%s->%s" % p for p in lifted - ground))),
                location="%s->%s" % edge,
                hint="the grouping manufactures dataflow between relevant"
                     " modules (Property 2)",
            ))
        if not lost and not ground <= lifted:
            lost = True
            findings.append(RULES.finding(
                "VIEW026", subject,
                "edge %s -> %s serves relevant pair(s) %s in the"
                " specification but not in the view"
                % (edge[0], edge[1],
                   ", ".join(sorted("%s->%s" % p for p in ground - lifted))),
                location="%s->%s" % edge,
                hint="the grouping hides dataflow between relevant modules"
                     " (Property 3)",
            ))
        if invented and lost:
            break

    if check_minimality and not invented and not lost:
        if not is_minimal(view, rel):
            findings.append(RULES.finding(
                "VIEW027", subject,
                "some pair of composites can be merged while preserving"
                " Properties 1-3",
                hint="run local_search_minimize or rebuild with"
                     " RelevUserViewBuilder",
            ))

    undirected = view.spec.graph.to_undirected(as_view=True)
    for composite in sorted(view.composites):
        members = view.members(composite)
        if not members & rel or len(members) == 1:
            continue
        if not nx.is_connected(undirected.subgraph(members)):
            findings.append(RULES.finding(
                "VIEW029", subject,
                "relevant composite %r is not weakly connected" % composite,
                location=composite,
                hint="Properties 1-3 normally guarantee connectivity of"
                     " relevant composites; this grouping was built another"
                     " way",
            ))
    return findings
