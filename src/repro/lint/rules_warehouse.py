"""Warehouse-layer lint rules (``WH0xx``) and the at-rest audit.

:func:`lint_warehouse` sweeps every stored artifact through the raw-row
accessors of :class:`~repro.warehouse.base.ProvenanceWarehouse` —
``spec_rows``, ``view_rows`` and the step/io primitives — so a corrupted
database is *audited*, not merely crashed into:

* stored spec rows run through the ``SPEC0xx`` payload rules,
* stored view rows run through the ``VIEW0xx`` partition rules (plus the
  loop rule when the view still reconstructs),
* stored run rows get the relational-integrity ``WH0xx`` rules below plus
  the dataflow ``RUN0xx`` rules over the same rows.

The referential-integrity rules mirror the corruption modes the paper's
Oracle warehouse guards with constraints and this reproduction's SQLite
schema cannot fully express (multi-producer data is a query-time property,
not a key).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, cast

from ..core.errors import ZoomError
from ..core.spec import INPUT
from .findings import ERROR, LAYER_WAREHOUSE, WARNING, Finding
from .registry import RULES
from .rules_run import RunFacts, lint_run_facts
from .rules_spec import lint_spec_payload
from .rules_view import lint_view, lint_view_payload

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids an import cycle
    from ..warehouse.base import ProvenanceWarehouse

RULES.register("WH030", LAYER_WAREHOUSE, ERROR,
               "io table records more than one producing step for a data"
               " object")
RULES.register("WH031", LAYER_WAREHOUSE, ERROR,
               "step row references a module absent from the spec's module"
               " table")
RULES.register("WH032", LAYER_WAREHOUSE, ERROR,
               "dangling io row: references a step the run does not declare")
RULES.register("WH033", LAYER_WAREHOUSE, ERROR,
               "io row reads a data object no row produces")
RULES.register("WH034", LAYER_WAREHOUSE, ERROR,
               "final_output row references a data object no row produces")
RULES.register("WH035", LAYER_WAREHOUSE, ERROR,
               "run references a specification the warehouse does not hold")
RULES.register("WH036", LAYER_WAREHOUSE, ERROR,
               "view references a specification the warehouse does not hold")
RULES.register("WH037", LAYER_WAREHOUSE, WARNING,
               "run has no step rows")
RULES.register("WH038", LAYER_WAREHOUSE, ERROR,
               "materialised lineage index is stale: stored closure rows"
               " disagree with the run's io rows")
RULES.register("WH039", LAYER_WAREHOUSE, WARNING,
               "run is unindexed although the warehouse auto-indexes at"
               " ingestion (auto_index=True)")
RULES.register("WH040", LAYER_WAREHOUSE, WARNING,
               "warehouse is missing an expected secondary index (a crashed"
               " bulk load skipped the rebuild)")
RULES.register("WH041", LAYER_WAREHOUSE, ERROR,
               "ingest journal row references a run the warehouse does not"
               " hold (torn ingest)")
RULES.register("WH042", LAYER_WAREHOUSE, WARNING,
               "predicted lineage-closure row count exceeds the"
               " materialisation budget")
RULES.register("WH043", LAYER_WAREHOUSE, ERROR,
               "materialised label index is stale or version-mismatched:"
               " stored reachability labels disagree with the run's io rows")
RULES.register("WH044", LAYER_WAREHOUSE, ERROR,
               "shard layout disagrees with the manifest: a declared shard"
               " file is missing or an undeclared one is present")
RULES.register("WH045", LAYER_WAREHOUSE, WARNING,
               "shard imbalance: one shard owns disproportionately many"
               " runs (beyond the configured skew factor)")
RULES.register("WH046", LAYER_WAREHOUSE, WARNING,
               "streaming run is still open at rest (its producer crashed"
               " or never finalized)")
RULES.register("WH047", LAYER_WAREHOUSE, ERROR,
               "streaming run's index deltas trail its committed epoch"
               " (lineage/label indexes are stale)")

#: Default ceiling for :func:`lint_closure_budget`'s predicted row count.
#: Chosen so the paper-scale workloads (hundreds of steps) pass with a
#: wide margin while a pathological deep-chain run (whose closure is
#: quadratic in its step count) trips it before ``build_lineage_index``
#: materialises millions of rows.
DEFAULT_CLOSURE_ROW_THRESHOLD = 250_000

#: Default skew factor for :func:`lint_shard_topology` (``WH045``): the
#: busiest shard may own up to this multiple of the mean runs-per-shard
#: before the imbalance is reported.  Hash routing stays well under it;
#: spec-affinity routing with one dominant workflow trips it.
DEFAULT_SHARD_SKEW = 2.0

#: Minimum runs per shard (on average) before ``WH045`` engages — at low
#: volume even uniform hash routing shows multinomial noise well past any
#: reasonable skew factor, and a handful of runs is not an imbalance
#: worth rebalancing anyway.
SHARD_SKEW_MIN_RUNS_PER_SHARD = 8

#: Default age (seconds since ``opened_at``) before ``WH046`` reports an
#: open streaming run.  Zero flags *every* open run — right for an
#: at-rest audit, where no producer can still be appending; raise it
#: (``--open-run-age``) when auditing a warehouse with live producers.
DEFAULT_OPEN_RUN_AGE = 0.0


def lint_run_rows(
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
    final_outputs: Sequence[str],
    spec_modules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Relational-integrity rules over one run's raw rows."""
    findings: List[Finding] = []
    step_ids = {step_id for step_id, _module in steps}

    if not steps:
        findings.append(RULES.finding(
            "WH037", run_id,
            "run has no step rows",
            hint="an ingested run should carry at least one step",
        ))

    if spec_modules is not None:
        for step_id, module in sorted(steps):
            if module not in spec_modules:
                findings.append(RULES.finding(
                    "WH031", run_id,
                    "step %r references module %r absent from the module"
                    " table" % (step_id, module),
                    location=step_id,
                    hint="the step and module tables disagree; re-ingest"
                         " the run",
                ))

    producers: Dict[str, List[str]] = {}
    reads: List[Tuple[str, str]] = []
    for step_id, data_id, direction in io_rows:
        if step_id not in step_ids:
            findings.append(RULES.finding(
                "WH032", run_id,
                "io row (%s, %s, %s) references an undeclared step"
                % (step_id, data_id, direction),
                location=step_id,
                hint="delete the orphan row or restore the step row",
            ))
        if direction == "out":
            producers.setdefault(data_id, []).append(step_id)
        else:
            reads.append((step_id, data_id))

    produced = set(producers) | set(user_inputs)
    for data_id, writers in sorted(producers.items()):
        distinct = sorted(set(writers))
        if len(distinct) > 1 or data_id in set(user_inputs):
            owners = distinct + ([INPUT] if data_id in set(user_inputs) else [])
            findings.append(RULES.finding(
                "WH030", run_id,
                "data %r has %d producers (%s)"
                % (data_id, len(owners), ", ".join(owners)),
                location=data_id,
                hint="deep provenance over multi-producer data is"
                     " ill-defined; repair the io table",
            ))

    for _step_id, data_id in sorted(set(reads)):
        if data_id not in produced:
            findings.append(RULES.finding(
                "WH033", run_id,
                "io row reads %r which no out-row or user input produces"
                % data_id,
                location=data_id,
                hint="restore the producing out-row or the user_input row",
            ))

    for data_id in sorted(final_outputs):
        if data_id not in produced:
            findings.append(RULES.finding(
                "WH034", run_id,
                "final output %r is produced by no io row" % data_id,
                location=data_id,
                hint="restore the producing out-row or drop the"
                     " final_output row",
            ))
    return findings


def lint_closure_budget(
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
    threshold: int = DEFAULT_CLOSURE_ROW_THRESHOLD,
    has_labels: bool = False,
) -> List[Finding]:
    """``WH042``: predict the lineage-closure row count, statically.

    ``build_lineage_index`` stores one row per ``(data, ancestor)`` pair,
    so a deep-chain run explodes quadratically.  This rule bounds the
    closure *without computing it* via
    :func:`~repro.provenance.labels.predict_closure_rows` — a topological
    sweep propagating an upper bound on each step's ancestor-set size —
    and charges every produced data object its producer's bound.  The
    estimate is a true upper bound on the stored rows, cheap enough to run
    at ingestion time; runs whose rows do not topologically sort (cycles —
    reported by other rules) are skipped.  ``has_labels`` turns the
    warning actionable: when the run already carries a label index the
    finding says so, and otherwise it recommends building one — the
    O(V) compact-label index answers the same queries without the
    quadratic materialisation.
    """
    from ..provenance.labels import predict_closure_rows

    if threshold <= 0 or not steps:
        return []
    predicted = predict_closure_rows(steps, io_rows, user_inputs)
    if predicted is None:
        return []  # cyclic rows: RUN/WH integrity rules report why
    if predicted <= threshold:
        return []
    if has_labels:
        hint = ("a label index is already built for this run — serve it"
                " with the 'labeled' (or 'auto') strategy instead of"
                " materialising the closure, or raise the threshold"
                " (--closure-threshold / closure_row_threshold)")
    else:
        hint = ("build the compact label index instead ('zoom index build"
                " --kind labeled') and serve this run with the 'labeled'"
                " (or 'auto') strategy, or raise the threshold"
                " (--closure-threshold / closure_row_threshold)")
    return [RULES.finding(
        "WH042", run_id,
        "predicted lineage closure of ~%d row(s) exceeds the budget of %d%s"
        % (predicted, threshold,
           " (a compact label index exists for this run)" if has_labels
           else ""),
        hint=hint,
    )]


def lint_warehouse(
    warehouse: ProvenanceWarehouse,
    spec_ids: Optional[Sequence[str]] = None,
    run_ids: Optional[Sequence[str]] = None,
    check_minimality: bool = False,
    closure_row_threshold: int = DEFAULT_CLOSURE_ROW_THRESHOLD,
    shard_skew_factor: float = DEFAULT_SHARD_SKEW,
    open_run_age: float = DEFAULT_OPEN_RUN_AGE,
) -> List[Finding]:
    """Audit every artifact a warehouse holds (optionally narrowed).

    ``check_minimality`` is accepted for signature parity with the view
    linter but stored views carry no relevant set, so only the structural
    view rules apply here.
    """
    del check_minimality  # stored views have no relevant set to check
    findings: List[Finding] = []
    selected_specs = list(spec_ids) if spec_ids is not None else warehouse.list_specs()

    spec_modules: Dict[str, Set[str]] = {}
    spec_payloads: Dict[str, Dict[str, object]] = {}
    for spec_id in selected_specs:
        try:
            payload = warehouse.spec_rows(spec_id)
        except ZoomError:
            continue  # unknown spec id: nothing to audit
        spec_payloads[spec_id] = payload
        spec_modules[spec_id] = {
            m for m in payload.get("modules", []) if isinstance(m, str)
        }
        findings.extend(lint_spec_payload(payload))

    for view_id in warehouse.list_views():
        try:
            view_spec_id, name, composites = warehouse.view_rows(view_id)
        except ZoomError:
            continue
        if spec_ids is not None and view_spec_id not in selected_specs:
            continue
        if view_spec_id not in spec_modules:
            try:
                modules = set(warehouse.spec_rows(view_spec_id).get("modules", []))
            except ZoomError:
                findings.append(RULES.finding(
                    "WH036", view_id,
                    "view references unknown spec %r" % view_spec_id,
                    hint="store the specification first or drop the view",
                ))
                continue
            spec_modules[view_spec_id] = {
                m for m in modules if isinstance(m, str)
            }
        payload_findings = lint_view_payload(
            view_id, composites, frozenset(spec_modules[view_spec_id])
        )
        findings.extend(payload_findings)
        if not payload_findings:
            try:
                view = warehouse.get_view(view_id)
            except ZoomError:
                view = None
            if view is not None:
                findings.extend(lint_view(view, relevant=None))

    selected_runs = list(run_ids) if run_ids is not None else warehouse.list_runs()
    for run_id in selected_runs:
        try:
            run_spec_id = warehouse.run_spec_id(run_id)
        except ZoomError:
            continue
        if spec_ids is not None and run_spec_id not in selected_specs:
            continue
        modules = spec_modules.get(run_spec_id)
        if modules is None and run_spec_id not in spec_payloads:
            try:
                payload = warehouse.spec_rows(run_spec_id)
                modules = {
                    m for m in payload.get("modules", [])
                    if isinstance(m, str)
                }
                spec_modules[run_spec_id] = modules
            except ZoomError:
                findings.append(RULES.finding(
                    "WH035", run_id,
                    "run references unknown spec %r" % run_spec_id,
                    hint="store the specification first or drop the run",
                ))
        steps = warehouse.steps_of_run(run_id)
        io_rows = warehouse.io_rows(run_id)
        user_inputs = sorted(warehouse.user_inputs(run_id))
        final_outputs = sorted(warehouse.final_outputs(run_id))
        findings.extend(lint_run_rows(
            run_id, steps, io_rows, user_inputs, final_outputs,
            spec_modules=modules,
        ))
        facts = RunFacts.from_rows(
            run_id, list(steps), list(io_rows),
            frozenset(user_inputs), frozenset(final_outputs),
        )
        payload = spec_payloads.get(run_spec_id)
        if payload is not None:
            facts.attach_spec(
                spec_modules.get(run_spec_id, set()),
                [tuple(e) for e in payload.get("edges", [])],
            )
        # Keep only the dataflow rules with no WH0xx counterpart: the
        # integrity concepts (multi-producer, unknown module, dangling
        # rows, unproduced reads/finals) were already reported at rest.
        dataflow_only = {"RUN015", "RUN018", "RUN019"}
        findings.extend(
            f for f in lint_run_facts(facts) if f.rule_id in dataflow_only
        )
        findings.extend(lint_lineage_index(
            warehouse, run_id, steps, io_rows, user_inputs,
        ))
        findings.extend(lint_label_index(
            warehouse, run_id, steps, io_rows, user_inputs,
        ))
        findings.extend(lint_auto_index_gap(warehouse, run_id))
        try:
            has_labels = warehouse.has_label_index(run_id)
        except ZoomError:
            has_labels = False
        findings.extend(lint_closure_budget(
            run_id, steps, io_rows, user_inputs,
            threshold=closure_row_threshold,
            has_labels=has_labels,
        ))

    if spec_ids is None and run_ids is None:
        # Warehouse-wide physical checks only make sense on a full sweep;
        # a narrowed audit should not drag in unrelated findings.
        findings.extend(lint_integrity(warehouse))
        findings.extend(lint_ingest_journal(warehouse))
        findings.extend(
            lint_shard_topology(warehouse, skew_factor=shard_skew_factor)
        )
        findings.extend(
            lint_stream_states(warehouse, open_run_age=open_run_age)
        )
    return findings


def lint_integrity(warehouse: ProvenanceWarehouse) -> List[Finding]:
    """``WH040``: expected secondary indexes the warehouse does not hold.

    ``bulk_load()`` drops the ``io`` secondary indexes for the duration of
    a bulk ingestion and rebuilds them in a ``finally`` — but a hard kill
    skips ``finally``.  The startup probe repairs this on the next open;
    this rule reports the live state in between (and on backends opened
    without the probe), because every deep-provenance query silently
    degrades to full scans while an index is missing.
    """
    report = warehouse.integrity_report()
    missing = cast("Sequence[str]", report.get("missing_indexes") or ())
    findings = [
        RULES.finding(
            "WH040", str(name),
            "expected secondary index %r is missing" % str(name),
            hint="run 'zoom recover' (or reopen the database) to rebuild it",
        )
        for name in missing
    ]
    if not report.get("ok", True):
        findings.append(RULES.finding(
            "WH040", "quick_check",
            "PRAGMA quick_check reports physical corruption",
            hint="restore from backup or re-ingest into a fresh database",
        ))
    return findings


def lint_ingest_journal(warehouse: ProvenanceWarehouse) -> List[Finding]:
    """``WH041``: journal rows whose run the warehouse does not hold.

    The ingest journal records every run a bulk load intended to store; a
    row with no matching ``run_def`` means the load tore — it crashed
    after journalling but before (or during) the batch commit.  The data
    is not corrupt, but the warehouse is *incomplete* relative to its own
    manifest.
    """
    try:
        entries = warehouse.journal_entries()
    except ZoomError:
        return []
    if not entries:
        return []
    present = set(warehouse.list_runs())
    return [
        RULES.finding(
            "WH041", entry.run_id,
            "ingest journal holds a %s entry for run %r which the"
            " warehouse does not hold (torn ingest)"
            % (entry.state, entry.run_id),
            hint="run 'zoom recover', then re-load the dataset with"
                 " --resume to ingest the missing runs",
        )
        for entry in entries
        if entry.run_id not in present
    ]


def lint_stream_states(
    warehouse: ProvenanceWarehouse,
    open_run_age: float = DEFAULT_OPEN_RUN_AGE,
    now: Optional[float] = None,
) -> List[Finding]:
    """``WH046``/``WH047``: open streaming runs and trailing index deltas.

    ``WH046`` (warning) fires for every run still open for streaming
    appends whose ``opened_at`` is at least ``open_run_age`` seconds old
    — at rest that means the producer died (or forgot to finalize): the
    stored rows are a consistent prefix, but the run will never converge
    on its own.  Resume the stream (``open_run(resume=True)``) or
    finalize it.

    ``WH047`` (error) fires when a run's ``delta_epoch`` watermark
    trails its committed epoch while a lineage or label index is
    materialised: the epoch's rows committed but the crash hit before
    the incremental index maintenance ran, so the indexes answer with
    the previous epoch's closure.  ``recover()`` settles this by
    dropping the stale indexes for lazy rebuild.
    """
    stream_states = getattr(warehouse, "stream_states", None)
    if not callable(stream_states):
        return []
    try:
        states = stream_states()
    except ZoomError:
        return []
    if not states:
        return []
    if now is None:
        import time

        now = time.time()
    findings: List[Finding] = []
    for run_id, state in sorted(states.items()):
        age = (
            now - state.opened_at if state.opened_at is not None else None
        )
        if age is None or age >= open_run_age:
            since = (
                "" if age is None else ", open for %.0f s" % max(age, 0.0)
            )
            findings.append(RULES.finding(
                "WH046", run_id,
                "run %r is open for streaming appends at epoch %d%s —"
                " its producer is gone or never finalized"
                % (run_id, state.epoch, since),
                hint="resume the stream (StreamingIngestor.open_run(...,"
                     " resume=True)) and finalize it, or raise"
                     " --open-run-age when producers are live",
            ))
        if state.delta_epoch < state.epoch:
            try:
                indexed = (
                    warehouse.has_lineage_index(run_id)
                    or warehouse.has_label_index(run_id)
                )
            except ZoomError:
                indexed = False
            if indexed:
                findings.append(RULES.finding(
                    "WH047", run_id,
                    "run %r committed epoch %d but its indexes were last"
                    " maintained at epoch %d — lineage/label answers are"
                    " stale" % (run_id, state.epoch, state.delta_epoch),
                    hint="run 'zoom recover' to drop the stale indexes"
                         " (they rebuild lazily on the next query)",
                ))
    return findings


def lint_shard_topology(
    warehouse: ProvenanceWarehouse,
    skew_factor: float = DEFAULT_SHARD_SKEW,
) -> List[Finding]:
    """``WH044``/``WH045``: shard layout and balance of a federation.

    Only engages on warehouses exposing ``shard_health()`` (the sharded
    facade); the single-file backends have no layout to disagree with.

    ``WH044`` (error) fires when the directory disagrees with the
    manifest: a declared shard file was missing at open (the backend
    recreated it *empty*, so its runs are gone) or is missing now, or an
    undeclared ``shard-*.db`` is present (a manifest edited after the
    fact, or files copied in from another federation — either way the
    router will never look at it).

    ``WH045`` (warning) fires when the busiest shard owns more than
    ``skew_factor`` times the mean runs-per-shard (once the federation
    holds enough runs for the ratio to mean anything): ingest and
    scatter-gather latency degrade toward the single-file case because
    one writer does most of the work.
    """
    health_probe = getattr(warehouse, "shard_health", None)
    if not callable(health_probe):
        return []
    try:
        health = health_probe()
    except ZoomError:
        return []
    findings: List[Finding] = []
    declared = int(cast(int, health.get("declared", 0)))
    for name in cast("Sequence[str]", health.get("missing") or ()):
        findings.append(RULES.finding(
            "WH044", str(name),
            "manifest declares shard file %r but the directory does not"
            " hold it (its runs are unreachable)" % str(name),
            hint="restore the shard file from backup, or re-load the"
                 " dataset with --resume to re-ingest the lost runs",
        ))
    for name in cast("Sequence[str]", health.get("extra") or ()):
        findings.append(RULES.finding(
            "WH044", str(name),
            "directory holds shard file %r which the manifest (shards=%d)"
            " does not declare — the router never consults it"
            % (str(name), declared),
            hint="the manifest and directory disagree; remove the stray"
                 " file or recreate the federation with the intended"
                 " shard count",
        ))
    runs_per_shard = cast(
        "Dict[object, int]", health.get("runs_per_shard") or {}
    )
    counts = [int(c) for c in runs_per_shard.values()]
    if counts and len(counts) > 1:
        total = sum(counts)
        mean = total / len(counts)
        busiest = max(counts)
        if (
            mean >= SHARD_SKEW_MIN_RUNS_PER_SHARD
            and busiest > skew_factor * mean
        ):
            hot = max(runs_per_shard, key=lambda k: runs_per_shard[k])
            findings.append(RULES.finding(
                "WH045", "shard-%s" % hot,
                "shard %s owns %d of %d runs (%.1fx the per-shard mean of"
                " %.1f, skew factor %.1f)"
                % (hot, busiest, total, busiest / mean if mean else 0.0,
                   mean, skew_factor),
                hint="check the router (spec-affinity routing skews when"
                     " one workflow dominates); 'zoom shard"
                     " rebalance-check' quantifies a re-rout under more"
                     " shards",
            ))
    return findings


def lint_auto_index_gap(
    warehouse: ProvenanceWarehouse, run_id: str
) -> List[Finding]:
    """``WH039``: an ``auto_index=True`` warehouse holding an unindexed run.

    Every shipped ingestion path (``store_run``, the batch pipeline)
    honours ``auto_index`` by building the lineage closure as the run goes
    in, so an unindexed run on such a warehouse means some pipeline wrote
    rows directly (e.g. a bare ``store_many``) and silently skipped the
    build — queries quietly fall back to recursion.
    """
    if not getattr(warehouse, "auto_index", False):
        return []
    try:
        if warehouse.has_lineage_index(run_id):
            return []
    except ZoomError:
        return []  # unknown run: other rules report why
    return [RULES.finding(
        "WH039", run_id,
        "run %r has no lineage index although the warehouse was opened"
        " with auto_index=True" % run_id,
        hint="an ingestion path skipped the index build; run 'zoom index"
             " build' or rebuild via build_lineage_index(run_id)",
    )]


def lint_lineage_index(
    warehouse: ProvenanceWarehouse,
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> List[Finding]:
    """``WH038``: detect a stale materialised lineage index.

    The index is *derived* state; after any out-of-band edit to a run's
    rows it silently keeps answering with the old closure.  This rule
    recomputes the closure from the current rows and compares it with what
    the warehouse stores, row for row.  Runs whose rows cannot be closed
    (cycles, multi-producer data — already reported by other rules) are
    skipped rather than crashed into.
    """
    from ..provenance.index import closure_table_rows

    try:
        if not warehouse.has_lineage_index(run_id):
            return []
        stored = warehouse.lineage_rows_raw(run_id)
        expected = closure_table_rows(run_id, steps, io_rows, user_inputs)
    except ZoomError:
        return []  # rows too corrupt to close; other rules report why
    if stored == expected:
        return []
    missing = len(expected - stored)
    extra = len(stored - expected)
    return [RULES.finding(
        "WH038", run_id,
        "lineage index disagrees with the io rows:"
        " %d row(s) missing, %d stale" % (missing, extra),
        hint="rebuild with warehouse.build_lineage_index(run_id,"
             " rebuild=True) or 'zoom index build --rebuild'",
    )]


def lint_label_index(
    warehouse: ProvenanceWarehouse,
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> List[Finding]:
    """``WH043``: detect a stale or version-mismatched label index.

    The ``WH038`` mirror for the compact reachability labels: the label
    table is derived state, so an out-of-band edit to the run's rows (or
    an encoding change between releases) leaves it silently answering
    with the wrong reachability.  The rule recomputes the labels from the
    current rows and compares them with what the warehouse stores, row
    for row, and additionally checks the persisted encoding version
    against the library's.  Runs whose rows cannot be labeled (cycles,
    multi-producer data — already reported by other rules) are skipped
    rather than crashed into.
    """
    from ..provenance.labels import LABELS_VERSION, label_table_rows

    try:
        if not warehouse.has_label_index(run_id):
            return []
        version = warehouse.label_index_version(run_id)
    except ZoomError:
        return []
    if version != LABELS_VERSION:
        return [RULES.finding(
            "WH043", run_id,
            "label index was written with encoding version %s but the"
            " library expects %d" % (version, LABELS_VERSION),
            hint="rebuild with warehouse.build_label_index(run_id,"
                 " rebuild=True) or 'zoom index build --kind labeled"
                 " --rebuild'",
        )]
    try:
        stored = warehouse.label_rows_raw(run_id)
        expected = label_table_rows(run_id, steps, io_rows, user_inputs)
    except ZoomError:
        return []  # rows too corrupt to label; other rules report why
    if stored == expected:
        return []
    missing = len(expected - stored)
    extra = len(stored - expected)
    return [RULES.finding(
        "WH043", run_id,
        "label index disagrees with the io rows:"
        " %d row(s) missing, %d stale" % (missing, extra),
        hint="rebuild with warehouse.build_label_index(run_id,"
             " rebuild=True) or 'zoom index build --kind labeled"
             " --rebuild'",
    )]
