"""Observability primitives: bounded caches, metrics, and reporting.

This package is self-contained (stdlib only, no imports from the rest of
``repro``) so every layer — core algorithms, warehouse backends, the
reasoner, the ZOOM session — can depend on it without cycles.

* :class:`BoundedCache` — LRU cache with counters and invalidation hooks,
  backing the reasoner's and session's memoisation.
* :class:`MetricsRegistry` / :func:`timed` — counters and wall-clock
  timers on the hot paths (view building, composite construction, the
  UAdmin closure, view switches).
* :func:`format_stats` — plain-text rendering of ``stats()`` snapshots
  for the CLI and the benchmarks.
"""

from .cache import EVICTED, INVALIDATED, BoundedCache, CacheStats
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    get_registry,
    set_registry,
    timed,
)
from .report import format_stats, hit_rate_summary
from .retry import with_retries

__all__ = [
    "BoundedCache",
    "CacheStats",
    "Counter",
    "EVICTED",
    "Gauge",
    "INVALIDATED",
    "MetricsRegistry",
    "Timer",
    "format_stats",
    "get_registry",
    "hit_rate_summary",
    "set_registry",
    "timed",
    "with_retries",
]
