"""A bounded LRU cache with hit/miss/eviction counters and hooks.

The reasoner's memoisation (Section V: "compute UAdmin once, keep it in a
temporary structure") was originally plain unbounded dicts — fine for one
interactive session, untenable for a long-lived service answering queries
over many runs.  :class:`BoundedCache` is the drop-in replacement used by
:class:`~repro.provenance.reasoner.ProvenanceReasoner` and
:class:`~repro.zoom.session.Session`:

* least-recently-used eviction at a configurable capacity;
* per-cache hit/miss/eviction counters, exposed as a :class:`CacheStats`
  snapshot (what ``stats()`` on the reasoner and session aggregate);
* invalidation hooks — callables fired whenever an entry leaves the cache
  involuntarily (eviction) or explicitly (:meth:`invalidate`), which the
  reasoner uses to cascade run evictions to dependent composite structures;
* per-scope **generation counters** closing the invalidate/repopulate race:
  a builder that read its inputs *before* an invalidation must not publish
  its (now stale) result *after* it.  :meth:`get_or_build` captures the
  scope's generation before running the factory and drops the built value
  at put time when :meth:`bump_generation` ran in between — the concurrent
  reader still gets an answer, it just cannot poison the cache with it.

The implementation is thread-safe; hooks are fired outside the lock so a
hook may freely touch other caches (or this one).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from ..sanitize import guard, make_lock, yield_point

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Why an entry left the cache, as passed to invalidation hooks.
EVICTED = "evicted"
INVALIDATED = "invalidated"

#: Hook signature: ``hook(key, value, reason)``.
InvalidationHook = Callable[[K, V, str], None]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one cache's counters."""

    name: str
    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int
    #: Built values discarded at put time because their scope's generation
    #: advanced while the factory ran (the invalidate/repopulate race).
    stale_drops: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, ``0.0`` before the first lookup."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "hit_rate": round(self.hit_rate, 4),
        }


class BoundedCache(Generic[K, V]):
    """An LRU-bounded mapping with counters and invalidation hooks.

    Parameters
    ----------
    capacity:
        Maximum number of entries; inserting beyond it evicts the least
        recently used entry.  Must be at least 1.
    name:
        Label carried by :meth:`stats` snapshots and hook diagnostics.
    """

    def __init__(self, capacity: int = 256, name: str = "cache") -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1, got %r" % capacity)
        self.name = name
        self._capacity = capacity
        self._lock = make_lock("cache.%s" % name, recursive=True)
        self._data: "OrderedDict[K, V]" = guard(
            OrderedDict(), self._lock, "cache.%s._data" % name
        )  # guarded-by: _lock
        self._hits = 0         # guarded-by: _lock
        self._misses = 0       # guarded-by: _lock
        self._evictions = 0    # guarded-by: _lock
        self._stale_drops = 0  # guarded-by: _lock
        # Hooks are append-only and fired outside the lock by design (a
        # hook may touch this or other caches) — deliberately unguarded.
        self._hooks: List[InvalidationHook] = []
        # Per-scope generation counters (see bump_generation); only scopes
        # that were ever bumped occupy a slot, so the dict stays small.
        self._generations: Dict[Hashable, int] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> List[K]:
        """Keys from least to most recently used."""
        with self._lock:
            return list(self._data)

    def peek(self, key: K) -> Optional[V]:
        """Read an entry without touching recency or counters."""
        with self._lock:
            return self._data.get(key)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                capacity=self._capacity,
                size=len(self._data),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                stale_drops=self._stale_drops,
            )

    # ------------------------------------------------------------------
    # Lookup and insertion
    # ------------------------------------------------------------------

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """The entry for ``key`` (marked most recently used) or ``default``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert or overwrite ``key``, evicting the LRU entry if full."""
        removed = []
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                evicted_key, evicted_value = self._data.popitem(last=False)
                self._evictions += 1
                removed.append((evicted_key, evicted_value))
        self._fire(removed, EVICTED)

    def get_or_build(
        self,
        key: K,
        factory: Callable[[], V],
        scope: Optional[Hashable] = None,
    ) -> V:
        """The cached entry for ``key``, building and caching it on a miss.

        The factory runs outside the lock, so concurrent misses on the
        same key may build twice (last write wins) — acceptable for the
        pure derivations cached here, and deadlock-free when the factory
        itself touches caches.

        ``scope`` closes the invalidate/repopulate race: the scope's
        generation (:meth:`generation`) is captured *before* the factory
        runs, and the built value is published only if no
        :meth:`bump_generation` on that scope happened in between.  A
        factory that read pre-invalidation state therefore cannot
        re-poison the cache — its result is returned to the caller but
        never stored (counted as a ``stale_drop``).
        """
        sentinel = object()
        value = self.get(key, sentinel)  # type: ignore[arg-type]
        if value is not sentinel:
            return value  # type: ignore[return-value]
        token = None if scope is None else self.generation(scope)
        yield_point("cache.get_or_build.factory")
        built = factory()
        yield_point("cache.get_or_build.publish")
        if token is None or self.generation(scope) == token:
            self.put(key, built)
        else:
            with self._lock:
                self._stale_drops += 1
        return built

    # ------------------------------------------------------------------
    # Generations (stale-put protection)
    # ------------------------------------------------------------------

    def generation(self, scope: Hashable) -> int:
        """The scope's current generation (0 until first bumped)."""
        with self._lock:
            return self._generations.get(scope, 0)

    def bump_generation(self, scope: Hashable) -> int:
        """Advance a scope's generation, fencing off in-flight builds.

        Call *before* (or atomically with) dropping the scope's entries:
        any :meth:`get_or_build` whose factory started under the old
        generation will refuse to publish its result.  Returns the new
        generation.
        """
        with self._lock:
            value = self._generations.get(scope, 0) + 1
            self._generations[scope] = value
            return value

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def add_invalidation_hook(self, hook: InvalidationHook) -> None:
        """Register ``hook(key, value, reason)`` for evictions/invalidations."""
        self._hooks.append(hook)

    def invalidate(self, key: K) -> bool:
        """Explicitly drop ``key``; returns whether it was present."""
        sentinel = object()
        yield_point("cache.invalidate")
        with self._lock:
            value = self._data.pop(key, sentinel)
        if value is sentinel:
            return False
        self._fire([(key, value)], INVALIDATED)  # type: ignore[list-item]
        return True

    def invalidate_where(self, predicate: Callable[[K], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            removed = [(key, self._data.pop(key)) for key in doomed]
        self._fire(removed, INVALIDATED)
        return len(removed)

    def clear(self) -> None:
        """Drop every entry (without firing hooks); counters survive."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._stale_drops = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fire(self, removed: List[Tuple[K, V]], reason: str) -> None:
        if not self._hooks or not removed:
            return
        for key, value in removed:
            for hook in self._hooks:
                hook(key, value, reason)
