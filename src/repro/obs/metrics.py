"""A minimal metrics registry: counters, timers, and a timing decorator.

Zero hard dependencies — values accumulate in-process and are emitted, on
request, through the standard :mod:`logging` machinery (logger
``repro.obs.metrics``).  The hot paths of the reproduction are annotated
with :func:`timed`:

``view.build``
    :meth:`repro.core.builder.RelevUserViewBuilder.build` — the Fig. 5
    algorithm.
``composite.build``
    :class:`repro.core.composite.CompositeRun` construction — inducing a
    run under a view.
``reasoner.admin_deep``
    The warehouse's recursive UAdmin closure (the expensive first query).
``reasoner.view_switch``
    Re-answering a deep query under a different view on a warm reasoner
    (the paper's 13 ms interactivity claim).
``index.build``
    Materialising a run's lineage-closure index
    (:meth:`~repro.warehouse.base.ProvenanceWarehouse.build_lineage_index`).
``index.lookup``
    Serving a deep-provenance answer from the materialised index (the
    ``indexed`` reasoner strategy); the companion ``index.hit`` /
    ``index.miss`` counters record whether the warehouse closure was
    answered from the index or by recursion.
``ingest.prepare`` / ``ingest.gate`` / ``ingest.write``
    The three stages of the batch-ingestion pipeline
    (:func:`repro.warehouse.pipeline.ingest_dataset`): waiting on a
    prepared run (row shaping + lint + closure, possibly in a worker),
    applying the lint gate to a batch, and the single-transaction bulk
    write.  The companion counters ``ingest.runs`` / ``ingest.batches`` /
    ``ingest.specs`` record throughput.

All timers live in a process-wide default registry (:func:`get_registry`);
tests swap it out with :func:`set_registry`.
"""

from __future__ import annotations

import functools
import logging
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, TypeVar

from ..sanitize import guard, make_lock

logger = logging.getLogger("repro.obs.metrics")

F = TypeVar("F", bound=Callable)


class Counter:
    """A monotonically increasing (resettable) integer metric."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = make_lock("metrics.counter.%s" % name)
        self._value = 0  # guarded-by: _lock

    @property
    def value(self) -> int:
        return self._value  # lock-free read: int load is atomic under GIL

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def as_dict(self) -> Dict[str, object]:
        return {"count": self._value}


#: Recent observations a :class:`Timer` retains for percentile estimates.
TIMER_SAMPLE_WINDOW = 2048


class Gauge:
    """A point-in-time numeric metric (e.g. sustained QPS, pool size)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = make_lock("metrics.gauge.%s" % name)
        self._value = 0.0  # guarded-by: _lock

    @property
    def value(self) -> float:
        return self._value  # lock-free read: float load is atomic under GIL

    def set(self, value: float) -> float:
        with self._lock:
            self._value = float(value)
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"value": round(self._value, 3)}


class Timer:
    """Accumulated wall-clock observations of one code path.

    Beyond the running aggregates, the last :data:`TIMER_SAMPLE_WINDOW`
    observations are retained in a ring buffer so callers can ask for tail
    latency (:meth:`percentile`) — what the serving layer reports as
    p50/p95/p99.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = make_lock("metrics.timer.%s" % name)
        self.count = 0             # guarded-by: _lock
        self.total = 0.0           # guarded-by: _lock
        self.min = float("inf")    # guarded-by: _lock
        self.max = 0.0             # guarded-by: _lock
        self.last = 0.0            # guarded-by: _lock
        self._samples: Deque[float] = deque(maxlen=TIMER_SAMPLE_WINDOW)

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)
            self.last = seconds
            self._samples.append(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the retained sample window.

        Nearest-rank over the (bounded) recent window; ``0.0`` before the
        first observation.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % q)
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = 0.0
            self.last = 0.0
            self._samples.clear()

    def merge(self, other: "Timer") -> None:
        """Fold another timer's observations into this one.

        Aggregates (count/total/min/max) combine exactly; the sample
        window concatenates (bounded by its ring size) so percentiles
        over the merged timer reflect both sources' recent history.
        ``last`` takes the other timer's value when it has observations —
        merge order decides ties, which is fine for a display field.
        The other timer is snapshotted under its own lock first, then
        this one is mutated under ours: sequential acquisition, so two
        concurrent merges in opposite directions cannot deadlock.
        """
        with other._lock:
            other_count = other.count
            other_total = other.total
            other_min = other.min
            other_max = other.max
            other_last = other.last
            samples = list(other._samples)
        if not other_count:
            return
        with self._lock:
            self.count += other_count
            self.total += other_total
            self.min = min(self.min, other_min)
            self.max = max(self.max, other_max)
            self.last = other_last
            self._samples.extend(samples)

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_ms": round(self.total * 1000, 3),
            "mean_ms": round(self.mean * 1000, 3),
            "min_ms": round(self.min * 1000, 3) if self.count else 0.0,
            "max_ms": round(self.max * 1000, 3),
            "last_ms": round(self.last * 1000, 3),
        }


class MetricsRegistry:
    """Named counters and timers, created on first use.

    Lookups of *existing* metrics are lock-free: the metric maps follow a
    write-locked / read-free contract (mode ``"w"`` under the sanitizer) —
    every insertion happens under ``_lock`` with a double-checked re-read,
    while reads rely on CPython dict loads being atomic.  The serving hot
    path calls :meth:`counter`/:meth:`timer` per request, so taking the
    registry lock there would serialize unrelated worker threads on a
    metric lookup.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._lock = make_lock("metrics.registry")
        # Mutations guarded; reads deliberately lock-free (see class doc).
        self._counters: Dict[str, Counter] = guard(
            {}, self._lock, "metrics.registry._counters", mode="w"
        )  # guarded-by: _lock
        self._timers: Dict[str, Timer] = guard(
            {}, self._lock, "metrics.registry._timers", mode="w"
        )  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = guard(
            {}, self._lock, "metrics.registry._gauges", mode="w"
        )  # guarded-by: _lock
        self._children: Dict[str, "MetricsRegistry"] = guard(
            {}, self._lock, "metrics.registry._children", mode="w"
        )  # guarded-by: _lock

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is not None:
            return counter
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is not None:
            return timer
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = Timer(name)
            return timer

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def child(self, namespace: str) -> "MetricsRegistry":
        """A namespaced sub-registry tracked by this one.

        Children hold their metrics under *bare* names (a shard records
        ``ingest.runs``, not ``shard3.ingest.runs``); the namespace is a
        label applied when the parent rolls children up —
        :meth:`snapshot` with ``children=True`` prefixes, :meth:`merged`
        aggregates same-named metrics across children.  Repeated calls
        with one namespace return the same child, so per-shard registries
        survive reopen cycles of the object that owns them.
        """
        kid = self._children.get(namespace)
        if kid is not None:
            return kid
        with self._lock:
            kid = self._children.get(namespace)
            if kid is None:
                kid = self._children[namespace] = MetricsRegistry(
                    namespace=namespace
                )
            return kid

    def children(self) -> Dict[str, "MetricsRegistry"]:
        """Namespace → child registry, in sorted namespace order."""
        with self._lock:
            return dict(sorted(self._children.items()))

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry's metrics into this one.

        Counters add, timers combine aggregates and sample windows
        (:meth:`Timer.merge`), gauges take the other registry's value
        (last merge wins — gauges are point-in-time, summing them would
        fabricate a reading).  ``prefix`` namespaces the incoming names
        (``prefix + "." + name``); the other registry's children are
        folded in recursively under their own namespaces.  Merging with
        no prefix is how per-shard metrics aggregate into one view.
        """
        for name, counter in sorted(other._counters.items()):
            value = counter.value
            if value:
                self.counter(self._qualify(prefix, name)).increment(value)
        for name, timer in sorted(other._timers.items()):
            self.timer(self._qualify(prefix, name)).merge(timer)
        for name, gauge in sorted(other._gauges.items()):
            self.gauge(self._qualify(prefix, name)).set(gauge.value)
        for namespace, kid in sorted(other.children().items()):
            self.merge(kid, prefix=self._qualify(prefix, namespace))

    def merged(self, namespaced: bool = False) -> "MetricsRegistry":
        """One flat registry aggregating this one and all its children.

        With ``namespaced=False`` (default) same-named metrics across
        children add up — the "whole federation" view; with
        ``namespaced=True`` each child's names keep their namespace
        prefix — the "per shard" view.
        """
        out = MetricsRegistry()
        if namespaced:
            out.merge(self)
            return out
        stack: List["MetricsRegistry"] = [self]
        while stack:
            registry = stack.pop()
            out.merge(registry._without_children())
            stack.extend(registry.children().values())
        return out

    def _without_children(self) -> "MetricsRegistry":
        """A shallow view of this registry's own metrics (no children)."""
        view = MetricsRegistry(namespace=self.namespace)
        for name, counter in self._counters.items():
            if counter.value:
                view.counter(name).increment(counter.value)
        for name, timer in self._timers.items():
            view.timer(name).merge(timer)
        for name, gauge in self._gauges.items():
            view.gauge(name).set(gauge.value)
        return view

    @staticmethod
    def _qualify(prefix: str, name: str) -> str:
        return "%s.%s" % (prefix, name) if prefix else name

    @contextmanager
    def time(self, name: str) -> Iterator[Timer]:
        """Context manager observing the elapsed wall-clock time."""
        timer = self.timer(name)
        started = time.perf_counter()
        try:
            yield timer
        finally:
            timer.observe(time.perf_counter() - started)

    def snapshot(
        self, children: bool = False
    ) -> Dict[str, Dict[str, object]]:
        """All metrics as plain dicts, counters and timers alike.

        ``children=True`` appends every child registry's metrics under
        namespace-qualified names (``shard0.ingest.runs``).
        """
        with self._lock:
            names = sorted(
                set(self._counters) | set(self._timers) | set(self._gauges)
            )
            out: Dict[str, Dict[str, object]] = {}
            for name in names:
                merged: Dict[str, object] = {}
                if name in self._counters:
                    merged.update(self._counters[name].as_dict())
                if name in self._timers:
                    merged.update(self._timers[name].as_dict())
                if name in self._gauges:
                    merged.update(self._gauges[name].as_dict())
                out[name] = merged
        if children:
            for namespace, kid in self.children().items():
                for name, values in kid.snapshot(children=True).items():
                    out[self._qualify(namespace, name)] = values
        return out

    def reset(self) -> None:
        """Zero every metric, children included (names survive)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for timer in self._timers.values():
                timer.reset()
            for gauge in self._gauges.values():
                gauge.reset()
        for kid in self.children().values():
            kid.reset()

    def log_snapshot(self, level: int = logging.DEBUG) -> None:
        """Emit the current snapshot through ``repro.obs.metrics``."""
        for name, values in self.snapshot().items():
            logger.log(level, "%s %s", name, values)


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def timed(name: str) -> Callable[[F], F]:
    """Decorator recording the wrapped callable's wall time under ``name``.

    The registry is resolved at call time, so :func:`set_registry` affects
    already-decorated functions.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object):
            timer = get_registry().timer(name)
            started = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                timer.observe(time.perf_counter() - started)

        return wrapper  # type: ignore[return-value]

    return decorate
