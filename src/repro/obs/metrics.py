"""A minimal metrics registry: counters, timers, and a timing decorator.

Zero hard dependencies — values accumulate in-process and are emitted, on
request, through the standard :mod:`logging` machinery (logger
``repro.obs.metrics``).  The hot paths of the reproduction are annotated
with :func:`timed`:

``view.build``
    :meth:`repro.core.builder.RelevUserViewBuilder.build` — the Fig. 5
    algorithm.
``composite.build``
    :class:`repro.core.composite.CompositeRun` construction — inducing a
    run under a view.
``reasoner.admin_deep``
    The warehouse's recursive UAdmin closure (the expensive first query).
``reasoner.view_switch``
    Re-answering a deep query under a different view on a warm reasoner
    (the paper's 13 ms interactivity claim).
``index.build``
    Materialising a run's lineage-closure index
    (:meth:`~repro.warehouse.base.ProvenanceWarehouse.build_lineage_index`).
``index.lookup``
    Serving a deep-provenance answer from the materialised index (the
    ``indexed`` reasoner strategy); the companion ``index.hit`` /
    ``index.miss`` counters record whether the warehouse closure was
    answered from the index or by recursion.
``ingest.prepare`` / ``ingest.gate`` / ``ingest.write``
    The three stages of the batch-ingestion pipeline
    (:func:`repro.warehouse.pipeline.ingest_dataset`): waiting on a
    prepared run (row shaping + lint + closure, possibly in a worker),
    applying the lint gate to a batch, and the single-transaction bulk
    write.  The companion counters ``ingest.runs`` / ``ingest.batches`` /
    ``ingest.specs`` record throughput.

All timers live in a process-wide default registry (:func:`get_registry`);
tests swap it out with :func:`set_registry`.
"""

from __future__ import annotations

import functools
import logging
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, TypeVar

from ..sanitize import guard, make_lock

logger = logging.getLogger("repro.obs.metrics")

F = TypeVar("F", bound=Callable)


class Counter:
    """A monotonically increasing (resettable) integer metric."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = make_lock("metrics.counter.%s" % name)
        self._value = 0  # guarded-by: _lock

    @property
    def value(self) -> int:
        return self._value  # lock-free read: int load is atomic under GIL

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def as_dict(self) -> Dict[str, object]:
        return {"count": self._value}


#: Recent observations a :class:`Timer` retains for percentile estimates.
TIMER_SAMPLE_WINDOW = 2048


class Gauge:
    """A point-in-time numeric metric (e.g. sustained QPS, pool size)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = make_lock("metrics.gauge.%s" % name)
        self._value = 0.0  # guarded-by: _lock

    @property
    def value(self) -> float:
        return self._value  # lock-free read: float load is atomic under GIL

    def set(self, value: float) -> float:
        with self._lock:
            self._value = float(value)
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"value": round(self._value, 3)}


class Timer:
    """Accumulated wall-clock observations of one code path.

    Beyond the running aggregates, the last :data:`TIMER_SAMPLE_WINDOW`
    observations are retained in a ring buffer so callers can ask for tail
    latency (:meth:`percentile`) — what the serving layer reports as
    p50/p95/p99.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = make_lock("metrics.timer.%s" % name)
        self.count = 0             # guarded-by: _lock
        self.total = 0.0           # guarded-by: _lock
        self.min = float("inf")    # guarded-by: _lock
        self.max = 0.0             # guarded-by: _lock
        self.last = 0.0            # guarded-by: _lock
        self._samples: Deque[float] = deque(maxlen=TIMER_SAMPLE_WINDOW)

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)
            self.last = seconds
            self._samples.append(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the retained sample window.

        Nearest-rank over the (bounded) recent window; ``0.0`` before the
        first observation.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % q)
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = 0.0
            self.last = 0.0
            self._samples.clear()

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_ms": round(self.total * 1000, 3),
            "mean_ms": round(self.mean * 1000, 3),
            "min_ms": round(self.min * 1000, 3) if self.count else 0.0,
            "max_ms": round(self.max * 1000, 3),
            "last_ms": round(self.last * 1000, 3),
        }


class MetricsRegistry:
    """Named counters and timers, created on first use.

    Lookups of *existing* metrics are lock-free: the metric maps follow a
    write-locked / read-free contract (mode ``"w"`` under the sanitizer) —
    every insertion happens under ``_lock`` with a double-checked re-read,
    while reads rely on CPython dict loads being atomic.  The serving hot
    path calls :meth:`counter`/:meth:`timer` per request, so taking the
    registry lock there would serialize unrelated worker threads on a
    metric lookup.
    """

    def __init__(self) -> None:
        self._lock = make_lock("metrics.registry")
        # Mutations guarded; reads deliberately lock-free (see class doc).
        self._counters: Dict[str, Counter] = guard(
            {}, self._lock, "metrics.registry._counters", mode="w"
        )  # guarded-by: _lock
        self._timers: Dict[str, Timer] = guard(
            {}, self._lock, "metrics.registry._timers", mode="w"
        )  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = guard(
            {}, self._lock, "metrics.registry._gauges", mode="w"
        )  # guarded-by: _lock

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is not None:
            return counter
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is not None:
            return timer
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = Timer(name)
            return timer

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    @contextmanager
    def time(self, name: str) -> Iterator[Timer]:
        """Context manager observing the elapsed wall-clock time."""
        timer = self.timer(name)
        started = time.perf_counter()
        try:
            yield timer
        finally:
            timer.observe(time.perf_counter() - started)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain dicts, counters and timers alike."""
        with self._lock:
            names = sorted(
                set(self._counters) | set(self._timers) | set(self._gauges)
            )
            out: Dict[str, Dict[str, object]] = {}
            for name in names:
                merged: Dict[str, object] = {}
                if name in self._counters:
                    merged.update(self._counters[name].as_dict())
                if name in self._timers:
                    merged.update(self._timers[name].as_dict())
                if name in self._gauges:
                    merged.update(self._gauges[name].as_dict())
                out[name] = merged
            return out

    def reset(self) -> None:
        """Zero every metric (names survive)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for timer in self._timers.values():
                timer.reset()
            for gauge in self._gauges.values():
                gauge.reset()

    def log_snapshot(self, level: int = logging.DEBUG) -> None:
        """Emit the current snapshot through ``repro.obs.metrics``."""
        for name, values in self.snapshot().items():
            logger.log(level, "%s %s", name, values)


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def timed(name: str) -> Callable[[F], F]:
    """Decorator recording the wrapped callable's wall time under ``name``.

    The registry is resolved at call time, so :func:`set_registry` affects
    already-decorated functions.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object):
            timer = get_registry().timer(name)
            started = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                timer.observe(time.perf_counter() - started)

        return wrapper  # type: ignore[return-value]

    return decorate
