"""Plain-text rendering of cache and metrics snapshots.

Both :meth:`~repro.provenance.reasoner.ProvenanceReasoner.stats` and
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` return a mapping of
names to flat dicts; :func:`format_stats` turns either into the aligned
table the ``zoom stats --probe-run`` command and the benchmarks print.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def format_stats(
    stats: Mapping[str, Mapping[str, object]],
    title: Optional[str] = None,
) -> str:
    """Render ``{name: {column: value}}`` as an aligned text table.

    Columns are the union of every row's keys, in first-seen order, so
    cache snapshots (hits/misses/evictions) and timer snapshots
    (count/mean_ms/...) both render without configuration.
    """
    columns: List[str] = []
    for row in stats.values():
        for key in row:
            if key not in columns:
                columns.append(key)
    header = ["name"] + columns
    rows = [
        [name] + [
            _format_value(row.get(column, "-")) for column in columns
        ]
        for name, row in stats.items()
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append("== %s ==" % title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def hit_rate_summary(stats: Mapping[str, Mapping[str, object]]) -> Dict[str, float]:
    """Extract ``{cache_name: hit_rate}`` from a cache-stats mapping."""
    out: Dict[str, float] = {}
    for name, row in stats.items():
        rate = row.get("hit_rate")
        if isinstance(rate, (int, float)):
            out[name] = float(rate)
    return out
