"""Retry-with-backoff for transient warehouse write failures.

SQLite under WAL serialises writers: a concurrent loader (or an injected
fault, see :mod:`repro.faults`) surfaces as ``sqlite3.OperationalError``
with "database is locked" / "database is busy".  ``busy_timeout`` already
absorbs short waits inside a single statement, but it cannot help when the
error escapes a transaction — the whole batch must be re-run.  The
:func:`with_retries` decorator does exactly that: it re-invokes the wrapped
callable with exponential backoff plus jitter, counting every retry under
``retry.attempts`` and every exhaustion under ``retry.giveup``.

The sleeper and RNG are injectable so tests run in microseconds and stay
deterministic.  Only errors matching ``is_transient`` are retried; anything
else — including :class:`~repro.faults.InjectedCrash`, which is a
``BaseException`` — propagates immediately.
"""

from __future__ import annotations

import functools
import random
import sqlite3
import time
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

from .metrics import get_registry

F = TypeVar("F", bound=Callable[..., Any])

#: Default predicate: retry only lock/busy contention, not real failures
#: (disk I/O errors, malformed databases, syntax errors ...).
def _default_is_transient(exc: BaseException) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def with_retries(
    attempts: int = 5,
    *,
    base_delay: float = 0.01,
    max_delay: float = 0.5,
    jitter: float = 0.25,
    retry_on: Tuple[Type[BaseException], ...] = (sqlite3.OperationalError,),
    is_transient: Optional[Callable[[BaseException], bool]] = None,
    sleeper: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    metric_prefix: str = "retry",
) -> Callable[[F], F]:
    """Decorate a callable to retry transient failures with backoff.

    ``attempts`` is the total number of invocations (so ``attempts=5``
    means up to four retries).  Delay before retry *k* (1-based) is
    ``min(max_delay, base_delay * 2**(k-1))`` scaled by ``1 + jitter*r``
    with ``r`` uniform in [0, 1).  When every attempt fails the *original*
    exception is re-raised, so callers see the same error type and message
    they would without the decorator.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1, got %d" % attempts)
    transient = is_transient or _default_is_transient
    chooser = rng or random

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            registry = get_registry()
            for attempt in range(1, attempts + 1):
                try:
                    return func(*args, **kwargs)
                except retry_on as exc:
                    if not transient(exc):
                        raise
                    if attempt == attempts:
                        registry.counter("%s.giveup" % metric_prefix).increment()
                        raise
                    registry.counter("%s.attempts" % metric_prefix).increment()
                    delay = min(max_delay, base_delay * (2 ** (attempt - 1)))
                    sleeper(delay * (1.0 + jitter * chooser.random()))
            raise AssertionError("unreachable")  # pragma: no cover

        return wrapper  # type: ignore[return-value]

    return decorate


__all__ = ["with_retries"]
