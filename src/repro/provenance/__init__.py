"""Provenance semantics, the view-aware reasoner, OPM export, planning."""

from .derivation import (
    DerivationPath,
    derivation_exists,
    derivation_paths,
    shortest_derivation,
)
from .index import (
    LineageClosure,
    closure_from_rows,
    closure_table_rows,
    compute_lineage_closure,
    project_closure,
)
from .invalidation import ReexecutionPlan, ReexecutionPlanner
from .opm import account_overlap, export_account, export_opm, to_json
from .queries import deep_provenance, immediate_provenance, reverse_provenance
from .reasoner import ProvenanceReasoner
from .result import ProvenanceResult, ProvenanceRow, ReverseProvenanceResult
from .rundiff import EdgeDelta, ModuleDelta, RunDiff, diff_runs

__all__ = [
    "DerivationPath",
    "EdgeDelta",
    "LineageClosure",
    "ModuleDelta",
    "ProvenanceReasoner",
    "ProvenanceResult",
    "ProvenanceRow",
    "ReexecutionPlan",
    "ReexecutionPlanner",
    "ReverseProvenanceResult",
    "RunDiff",
    "account_overlap",
    "closure_from_rows",
    "closure_table_rows",
    "compute_lineage_closure",
    "deep_provenance",
    "derivation_exists",
    "derivation_paths",
    "diff_runs",
    "project_closure",
    "shortest_derivation",
    "export_account",
    "export_opm",
    "immediate_provenance",
    "reverse_provenance",
    "to_json",
]
