"""Derivation paths: *how* one data object led to another.

Deep provenance answers *what* contributed to a result; scientists asking
"how did this corrupted sequence end up in the tree?" need the actual
derivation chains — alternating data objects and (virtual) steps — between
two objects.  Like every query in this system, the answer is relative to a
user view: chains pass only through visible data and composite steps, so
Joe sees one hop through the alignment composite where Mary sees the
loop's boundary crossings.

Path enumeration can explode on large runs, so the API takes an explicit
``limit`` and callers needing only existence use :func:`derivation_exists`
(linear time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.composite import CompositeRun
from ..core.errors import HiddenDataError, QueryError
from ..core.spec import OUTPUT


@dataclass(frozen=True)
class DerivationPath:
    """One derivation chain: data, step, data, step, ..., data."""

    data: Tuple[str, ...]
    steps: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.data) != len(self.steps) + 1:
            raise QueryError("a derivation path alternates data and steps")

    def __len__(self) -> int:
        """Number of derivation hops (steps) on the path."""
        return len(self.steps)

    def render(self) -> str:
        """Human-readable ``d1 -[S1]-> d2 -[S2]-> d3`` form."""
        parts = [self.data[0]]
        for step, data in zip(self.steps, self.data[1:]):
            parts.append("-[%s]->" % step)
            parts.append(data)
        return " ".join(parts)


def _require_visible(composite_run: CompositeRun, data_id: str) -> None:
    if not composite_run.is_visible(data_id):
        raise HiddenDataError(
            "data %r is not visible under view %r"
            % (data_id, composite_run.view.name)
        )


def _successor_map(
    composite_run: CompositeRun,
) -> Dict[str, List[Tuple[str, str]]]:
    """For each visible data object: the (step, produced data) hops out.

    A hop exists when a (virtual) step consumed the object and produced
    another; both objects are visible by construction of the composite
    run's edges.
    """
    hops: Dict[str, List[Tuple[str, str]]] = {}
    graph = composite_run.graph
    for _src, step, payload in graph.edges(data="data"):
        if step == OUTPUT:
            continue
        outputs = sorted(composite_run.outputs_of(step))
        for data_id in payload:
            bucket = hops.setdefault(data_id, [])
            for produced in outputs:
                bucket.append((step, produced))
    for bucket in hops.values():
        bucket.sort()
    return hops


def derivation_exists(
    composite_run: CompositeRun, source: str, target: str
) -> bool:
    """Whether some derivation chain leads from ``source`` to ``target``."""
    _require_visible(composite_run, source)
    _require_visible(composite_run, target)
    if source == target:
        return True
    hops = _successor_map(composite_run)
    seen: Set[str] = {source}
    frontier = [source]
    while frontier:
        current = frontier.pop()
        for _step, produced in hops.get(current, []):
            if produced == target:
                return True
            if produced not in seen:
                seen.add(produced)
                frontier.append(produced)
    return False


def derivation_paths(
    composite_run: CompositeRun,
    source: str,
    target: str,
    limit: int = 10,
    max_hops: Optional[int] = None,
) -> List[DerivationPath]:
    """Up to ``limit`` simple derivation chains from ``source`` to ``target``.

    Chains are found by depth-first search over the visible data-flow
    hops, shortest-first is *not* guaranteed — use ``max_hops`` to bound
    the length if only short explanations are wanted.
    """
    _require_visible(composite_run, source)
    _require_visible(composite_run, target)
    if limit < 1:
        raise QueryError("limit must be at least 1")
    hops = _successor_map(composite_run)
    results: List[DerivationPath] = []

    def explore(
        current: str, data_trail: List[str], step_trail: List[str]
    ) -> bool:
        if len(results) >= limit:
            return True
        if current == target:
            results.append(DerivationPath(
                data=tuple(data_trail), steps=tuple(step_trail)
            ))
            return len(results) >= limit
        if max_hops is not None and len(step_trail) >= max_hops:
            return False
        for step, produced in hops.get(current, []):
            if produced in data_trail:
                continue  # keep chains simple
            data_trail.append(produced)
            step_trail.append(step)
            done = explore(produced, data_trail, step_trail)
            data_trail.pop()
            step_trail.pop()
            if done:
                return True
        return False

    explore(source, [source], [])
    # Deduplicate (the same step pair can be reached via several edges).
    unique: List[DerivationPath] = []
    seen_paths: Set[Tuple[Tuple[str, ...], Tuple[str, ...]]] = set()
    for path in results:
        key = (path.data, path.steps)
        if key not in seen_paths:
            seen_paths.add(key)
            unique.append(path)
    return unique


def shortest_derivation(
    composite_run: CompositeRun, source: str, target: str
) -> Optional[DerivationPath]:
    """A minimum-hop derivation chain, or ``None`` if none exists."""
    _require_visible(composite_run, source)
    _require_visible(composite_run, target)
    if source == target:
        return DerivationPath(data=(source,), steps=())
    hops = _successor_map(composite_run)
    # BFS with parent pointers.
    parents: Dict[str, Tuple[str, str]] = {}
    frontier = [source]
    seen: Set[str] = {source}
    while frontier:
        next_frontier: List[str] = []
        for current in frontier:
            for step, produced in hops.get(current, []):
                if produced in seen:
                    continue
                seen.add(produced)
                parents[produced] = (current, step)
                if produced == target:
                    return _reconstruct(parents, source, target)
                next_frontier.append(produced)
        frontier = next_frontier
    return None


def _reconstruct(
    parents: Dict[str, Tuple[str, str]], source: str, target: str
) -> DerivationPath:
    data: List[str] = [target]
    steps: List[str] = []
    current = target
    while current != source:
        previous, step = parents[current]
        steps.append(step)
        data.append(previous)
        current = previous
    return DerivationPath(data=tuple(reversed(data)), steps=tuple(reversed(steps)))
