"""The materialized lineage-closure index: compute once, look up forever.

The paper's response-time experiment (Section V-B) is dominated by the
recursive closure — Oracle ``CONNECT BY`` there, a SQLite recursive CTE or
BFS here — and its winning strategy amortises that cost by computing UAdmin
provenance once per run and projecting view-level answers from it.  Bao &
Davidson's *Labeling Workflow Views with Fine-Grained Dependencies* pushes
the idea to its limit: precompute reachability so lineage queries become
lookups rather than traversals.

This module is that precomputation.  :func:`compute_lineage_closure` makes
**one** topological pass over a run's relational rows and derives, for every
data object, the full set of ancestor steps and lineage user inputs — the
exact answer :meth:`~repro.warehouse.base.ProvenanceWarehouse.admin_deep_provenance`
would compute by recursion.  Warehouses persist the result (a
``dict``-of-``frozenset`` structure in memory, a ``lineage`` table in
SQLite), after which deep provenance at UAdmin granularity is a single
indexed range lookup: constant traversal depth regardless of how deep the
workflow is.

:func:`project_closure` supplies the second half of the paper's design:
given a (cached) :class:`~repro.core.composite.CompositeRun` and an
accessor for UAdmin closures, it answers a *view-level* deep-provenance
query by folding whole admin closures into the induced run — provably equal
to the reference BFS of :func:`~repro.provenance.queries.deep_provenance`,
but jumping an entire admin lineage per index lookup instead of walking
edge by edge.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import HiddenDataError, WarehouseError
from ..core.spec import INPUT
from .result import ProvenanceResult, ProvenanceRow

if TYPE_CHECKING:  # pragma: no cover — annotation-only imports
    from ..core.composite import CompositeRun
    from ..warehouse.base import ProvenanceWarehouse

#: ``step_id`` sentinel of stored closure rows that mark a lineage user
#: input rather than a (step, input-data) ancestor pair.  Reuses the run
#: graph's reserved ``input`` node name, which no real step may carry.
INPUT_MARKER = INPUT


@dataclass
class LineageClosure:
    """The full data-lineage closure of one run, ready to persist.

    Attributes
    ----------
    run_id:
        The run the closure describes.
    modules:
        ``step_id -> module`` for every step of the run.
    step_inputs:
        ``step_id -> sorted input data ids`` (one closure row per pair).
    lineage_steps:
        ``data_id -> frozenset of ancestor step ids``: every step whose
        execution transitively contributed to the data object.
    lineage_inputs:
        ``data_id -> frozenset of user inputs`` in the object's lineage
        (a user input's lineage is itself).
    """

    run_id: str
    modules: Dict[str, str] = field(default_factory=dict)
    step_inputs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    lineage_steps: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    lineage_inputs: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def data_ids(self) -> List[str]:
        """Every data object covered by the closure, sorted."""
        return sorted(self.lineage_steps)

    def result_for(self, data_id: str) -> ProvenanceResult:
        """Materialise the stored closure of one object as a query answer."""
        try:
            steps = self.lineage_steps[data_id]
        except KeyError:
            raise WarehouseError(
                "data %r is not covered by the lineage closure of run %r"
                % (data_id, self.run_id)
            ) from None
        result = ProvenanceResult(target=data_id, view_name="UAdmin")
        for step_id in sorted(steps):
            module = self.modules[step_id]
            for data_in in self.step_inputs[step_id]:
                result.rows.append(
                    ProvenanceRow(step_id=step_id, module=module, data_in=data_in)
                )
        result.user_inputs = set(self.lineage_inputs[data_id])
        return result

    def iter_table_rows(self) -> Iterator[Tuple[str, str, str]]:
        """Flatten to ``(data_id, step_id, data_in)`` relational rows.

        Ancestor rows carry a real step id; lineage user inputs are stored
        as ``(data_id, INPUT_MARKER, user_input_id)`` marker rows, so one
        table holds the complete answer to a deep-provenance query.
        """
        for data_id in self.data_ids():
            for step_id in sorted(self.lineage_steps[data_id]):
                for data_in in self.step_inputs[step_id]:
                    yield (data_id, step_id, data_in)
            for user_input in sorted(self.lineage_inputs[data_id]):
                yield (data_id, INPUT_MARKER, user_input)

    def num_rows(self) -> int:
        """Number of relational rows the closure materialises to."""
        total = 0
        for data_id in self.lineage_steps:
            total += sum(
                len(self.step_inputs[s]) for s in self.lineage_steps[data_id]
            )
            total += len(self.lineage_inputs[data_id])
        return total


def closure_from_rows(
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> LineageClosure:
    """Compute the lineage closure of one run from its relational rows.

    One Kahn-style topological pass over the step graph: a step's ancestor
    set is itself plus the union of its inputs' ancestor sets, and every
    data object inherits the set of the step that wrote it.  The frozensets
    are shared between a step's outputs, so memory stays proportional to
    the number of *distinct* closures, not to the expanded row count.

    Raises :class:`~repro.core.errors.WarehouseError` on rows no valid run
    can produce (multiple producers, reads of unproduced data, cycles) —
    the same conditions :meth:`ProvenanceWarehouse.get_run` rejects.
    """
    from ..warehouse.schema import DIR_OUT

    modules: Dict[str, str] = dict(steps)
    producer: Dict[str, str] = {d: INPUT for d in user_inputs}
    inputs: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    outputs: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    for step_id, data_id, direction in io_rows:
        if step_id not in modules:
            raise WarehouseError(
                "io row (%r, %r) references an undeclared step" % (step_id, data_id)
            )
        if direction == DIR_OUT:
            if data_id in producer and producer[data_id] != step_id:
                raise WarehouseError(
                    "data %r written by both %r and %r"
                    % (data_id, producer[data_id], step_id)
                )
            producer[data_id] = step_id
            outputs[step_id].append(data_id)
        else:
            inputs[step_id].append(data_id)

    closure = LineageClosure(run_id=run_id, modules=modules)
    for step_id in modules:
        closure.step_inputs[step_id] = tuple(sorted(set(inputs[step_id])))

    empty: FrozenSet[str] = frozenset()
    for data_id in user_inputs:
        closure.lineage_steps[data_id] = empty
        closure.lineage_inputs[data_id] = frozenset([data_id])

    # Kahn topological order over steps: a step waits for the producers of
    # its inputs.  ``indegree`` counts distinct upstream steps.
    upstream: Dict[str, Set[str]] = {}
    downstream: Dict[str, Set[str]] = {s: set() for s in modules}
    for step_id in modules:
        sources: Set[str] = set()
        for data_id in closure.step_inputs[step_id]:
            source = producer.get(data_id)
            if source is None:
                raise WarehouseError(
                    "step %r read %r which nothing produced" % (step_id, data_id)
                )
            if source != INPUT and source != step_id:
                sources.add(source)
        upstream[step_id] = sources
        for source in sources:
            downstream[source].add(step_id)

    ready: Deque[str] = deque(
        sorted(s for s in modules if not upstream[s])
    )
    processed = 0
    while ready:
        step_id = ready.popleft()
        processed += 1
        ancestor_sets = []
        input_sets = []
        for data_id in closure.step_inputs[step_id]:
            ancestor_sets.append(closure.lineage_steps[data_id])
            input_sets.append(closure.lineage_inputs[data_id])
        steps_here = frozenset([step_id]).union(*ancestor_sets) \
            if ancestor_sets else frozenset([step_id])
        inputs_here = frozenset().union(*input_sets) if input_sets else empty
        for data_id in outputs[step_id]:
            closure.lineage_steps[data_id] = steps_here
            closure.lineage_inputs[data_id] = inputs_here
        for successor in sorted(downstream[step_id]):
            upstream[successor].discard(step_id)
            if not upstream[successor]:
                ready.append(successor)
    if processed != len(modules):
        raise WarehouseError(
            "run %r has a cyclic io dependency; cannot close its lineage"
            % run_id
        )
    return closure


def compute_lineage_closure(
    warehouse: "ProvenanceWarehouse", run_id: str
) -> LineageClosure:
    """Compute a stored run's lineage closure from its warehouse rows."""
    return closure_from_rows(
        run_id,
        warehouse.steps_of_run(run_id),
        warehouse.io_rows(run_id),
        sorted(warehouse.user_inputs(run_id)),
    )


def closure_delta_rows(
    run_id: str,
    new_steps: Sequence[Tuple[str, str]],
    new_io_rows: Sequence[Tuple[str, str, str]],
    new_user_inputs: Sequence[str],
    ancestor_lookup: Callable[[str], ProvenanceResult],
) -> List[Tuple[str, str, str]]:
    """Closure rows for one streaming epoch's *new* data objects only.

    The streaming delta path: a provenance run grows append-only and each
    data object has a unique producer, so a committed epoch never changes
    an existing object's ancestor set — it only *adds* objects whose rows
    can be derived from the epoch's delta subgraph plus the already-indexed
    closures of the data it reads across the epoch boundary
    (``ancestor_lookup``, typically
    ``lambda d: warehouse.lineage_lookup(run_id, d)``).

    One Kahn pass over the epoch's new steps, exactly mirroring
    :func:`closure_from_rows` but seeded at the boundary: a read of
    prior-epoch data pulls that object's full ``(step, data_in)`` row set
    and lineage user inputs out of the index in a single lookup, after
    which the frontier propagates forward without ever touching old rows.
    Returns the sorted ``(data_id, step_id, data_in)`` /
    ``(data_id, INPUT_MARKER, user_input)`` rows to append via
    :meth:`~repro.warehouse.base.ProvenanceWarehouse.extend_lineage_index`.

    Raises :class:`~repro.core.errors.WarehouseError` when the epoch is
    not frontier-shaped — an io row referencing a step declared in an
    earlier epoch (its input set may still be growing), multiple
    producers, or a cycle — and lets ``ancestor_lookup`` errors propagate;
    the streaming ingestor treats either as the signal to fall back to a
    full rebuild (the ``stream.rebuild`` counter).
    """
    from ..warehouse.schema import DIR_OUT

    modules: Dict[str, str] = dict(new_steps)
    producer: Dict[str, str] = {d: INPUT for d in new_user_inputs}
    inputs: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    outputs: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    for step_id, data_id, direction in new_io_rows:
        if step_id not in modules:
            raise WarehouseError(
                "epoch io row (%r, %r) references a step declared in an"
                " earlier epoch; the delta is not frontier-shaped"
                % (step_id, data_id)
            )
        if direction == DIR_OUT:
            if data_id in producer and producer[data_id] != step_id:
                raise WarehouseError(
                    "data %r written by both %r and %r"
                    % (data_id, producer[data_id], step_id)
                )
            producer[data_id] = step_id
            outputs[step_id].append(data_id)
        else:
            inputs[step_id].append(data_id)
    step_inputs = {s: tuple(sorted(set(inputs[s]))) for s in modules}

    # Ancestor (step, data_in) pairs and lineage user inputs per object;
    # seeded from the epoch's user inputs and, lazily, from the index for
    # data flowing in across the epoch boundary.
    pairs: Dict[str, FrozenSet[Tuple[str, str]]] = {}
    lineage_inputs: Dict[str, FrozenSet[str]] = {}
    for data_id in new_user_inputs:
        pairs[data_id] = frozenset()
        lineage_inputs[data_id] = frozenset([data_id])

    def resolve_boundary(data_id: str) -> None:
        if data_id in pairs:
            return
        prior = ancestor_lookup(data_id)
        pairs[data_id] = frozenset(
            (row.step_id, row.data_in) for row in prior.rows
        )
        lineage_inputs[data_id] = frozenset(prior.user_inputs)

    upstream: Dict[str, Set[str]] = {}
    downstream: Dict[str, Set[str]] = {s: set() for s in modules}
    for step_id in modules:
        sources: Set[str] = set()
        for data_id in step_inputs[step_id]:
            source = producer.get(data_id)
            if source is None:
                resolve_boundary(data_id)
            elif source != INPUT and source != step_id:
                sources.add(source)
        upstream[step_id] = sources
        for source in sources:
            downstream[source].add(step_id)

    ready: Deque[str] = deque(sorted(s for s in modules if not upstream[s]))
    processed = 0
    while ready:
        step_id = ready.popleft()
        processed += 1
        own = frozenset((step_id, d) for d in step_inputs[step_id])
        pairs_here = own.union(
            *(pairs[d] for d in step_inputs[step_id])
        )
        input_sets = [lineage_inputs[d] for d in step_inputs[step_id]]
        inputs_here = (
            frozenset().union(*input_sets) if input_sets else frozenset()
        )
        for data_id in outputs[step_id]:
            pairs[data_id] = pairs_here
            lineage_inputs[data_id] = inputs_here
        for successor in sorted(downstream[step_id]):
            upstream[successor].discard(step_id)
            if not upstream[successor]:
                ready.append(successor)
    if processed != len(modules):
        raise WarehouseError(
            "epoch delta of run %r has a cyclic io dependency" % run_id
        )

    rows: Set[Tuple[str, str, str]] = set()
    new_data = set(new_user_inputs)
    for step_id in modules:
        new_data.update(outputs[step_id])
    for data_id in new_data:
        for step_id, data_in in pairs[data_id]:
            rows.add((data_id, step_id, data_in))
        for user_input in lineage_inputs[data_id]:
            rows.add((data_id, INPUT_MARKER, user_input))
    return sorted(rows)


def closure_table_rows(
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> Set[Tuple[str, str, str]]:
    """The relational rows a fresh closure of these run rows would hold.

    Used by the warehouse lint rule ``WH038`` to detect a stale index:
    whatever a backend stores must equal this set exactly.
    """
    return set(
        closure_from_rows(run_id, steps, io_rows, user_inputs).iter_table_rows()
    )


def project_closure(
    composite_run: "CompositeRun",
    admin_lookup: Callable[[str], ProvenanceResult],
    data_id: str,
) -> ProvenanceResult:
    """Deep provenance under a view, projected from UAdmin closures.

    ``admin_lookup`` must return the UAdmin deep provenance of a data
    object (typically a memoised indexed lookup).  The projection folds
    whole admin closures into the induced run: every ancestor step maps to
    its virtual step, and — because composite executions can pull in data
    that is *not* in the target's admin lineage (a merged step's other
    inputs) — the fold iterates until no virtual step adds new visible
    inputs.  The fixpoint equals the reference BFS of
    :func:`~repro.provenance.queries.deep_provenance` row for row.
    """
    if not composite_run.is_visible(data_id):
        raise HiddenDataError(
            "data %r is internal to a composite execution under view %r"
            % (data_id, composite_run.view.name)
        )
    result = ProvenanceResult(
        target=data_id, view_name=composite_run.view.name
    )
    reached: Set[str] = set()
    seen_data: Set[str] = set()
    frontier: Deque[str] = deque([data_id])
    while frontier:
        current = frontier.popleft()
        if current in seen_data:
            continue
        seen_data.add(current)
        virtual_producer = composite_run.producer(current)
        if virtual_producer == INPUT:
            result.user_inputs.add(current)
            continue
        if virtual_producer in reached:
            continue
        # One indexed lookup covers the whole admin lineage of ``current``;
        # every ancestor's virtual step joins in a single stroke.
        admin = admin_lookup(current)
        fresh = {composite_run.group_of(s) for s in admin.steps()}
        fresh.add(virtual_producer)
        fresh -= reached
        reached |= fresh
        for virtual_step in fresh:
            frontier.extend(composite_run.inputs_of(virtual_step))
    for virtual_step in sorted(reached):
        composite = composite_run.composite_step(virtual_step).composite
        for data_in in sorted(composite_run.inputs_of(virtual_step)):
            result.rows.append(
                ProvenanceRow(
                    step_id=virtual_step, module=composite, data_in=data_in
                )
            )
    return result
