"""Re-execution planning: what must be recomputed when inputs change.

The paper motivates provenance with reproducibility: "to understand and
reproduce the results of an experiment, scientists must be able to
determine what sequence of steps and input data were used".  The natural
operational companion is *invalidation*: when a user input turns out to
be wrong (a bad reagent batch, a corrupted download), which steps must be
re-executed and which results re-derived?

:class:`ReexecutionPlanner` answers this over a warehouse-backed run.
Plans are computed at step granularity and can be *presented* at any user
view's granularity, mirroring how the rest of the system scopes
provenance answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import networkx as nx

from ..core.composite import CompositeRun
from ..core.errors import QueryError
from ..core.spec import INPUT, OUTPUT
from ..core.view import UserView
from ..run.run import WorkflowRun
from ..warehouse.base import ProvenanceWarehouse


@dataclass
class ReexecutionPlan:
    """The fallout of a set of changed user inputs.

    Attributes
    ----------
    changed_inputs:
        The user inputs declared stale.
    stale_steps:
        Steps that transitively consumed a stale object, in a topological
        (re-executable) order.
    stale_data:
        Every data object that must be re-derived.
    stale_outputs:
        The run's final outputs among the stale data.
    fresh_steps:
        Steps untouched by the change (their cached outputs are reusable).
    """

    changed_inputs: FrozenSet[str]
    stale_steps: List[str] = field(default_factory=list)
    stale_data: Set[str] = field(default_factory=set)
    stale_outputs: Set[str] = field(default_factory=set)
    fresh_steps: Set[str] = field(default_factory=set)

    def work_fraction(self) -> float:
        """Share of the run's steps that must be re-executed."""
        total = len(self.stale_steps) + len(self.fresh_steps)
        if total == 0:
            return 0.0
        return len(self.stale_steps) / total

    def summary(self) -> Dict[str, object]:
        """Compact description for reports."""
        return {
            "changed_inputs": sorted(self.changed_inputs),
            "stale_steps": len(self.stale_steps),
            "fresh_steps": len(self.fresh_steps),
            "stale_outputs": sorted(self.stale_outputs),
            "work_fraction": round(self.work_fraction(), 3),
        }


class ReexecutionPlanner:
    """Computes re-execution plans from warehouse provenance."""

    def __init__(self, warehouse: ProvenanceWarehouse) -> None:
        self.warehouse = warehouse
        self._run_cache: Dict[str, WorkflowRun] = {}

    def _run(self, run_id: str) -> WorkflowRun:
        run = self._run_cache.get(run_id)
        if run is None:
            run = self.warehouse.get_run(run_id)
            self._run_cache[run_id] = run
        return run

    def invalidate_run(self, run_id: str) -> None:
        """Forget the memoised run, e.g. after a streamed epoch extended
        it; the next plan re-materialises the current rows."""
        self._run_cache.pop(run_id, None)

    def plan(self, run_id: str, changed_inputs: Iterable[str]) -> ReexecutionPlan:
        """Plan the re-execution caused by changing some user inputs."""
        run = self._run(run_id)
        changed = frozenset(changed_inputs)
        unknown = changed - run.data_ids()
        if unknown:
            raise QueryError("unknown data ids: %s" % sorted(unknown))
        not_inputs = changed - run.user_inputs()
        if not_inputs:
            raise QueryError(
                "not user inputs (only inputs can be replaced): %s"
                % sorted(not_inputs)
            )
        plan = ReexecutionPlan(changed_inputs=changed)
        stale_data: Set[str] = set(changed)
        stale_steps: Set[str] = set()
        # Forward closure over the run DAG in topological order: a step is
        # stale iff any of its inputs is stale; its outputs then are too.
        order = [
            node
            for node in nx.lexicographical_topological_sort(run.graph)
            if node not in (INPUT, OUTPUT)
        ]
        for step_id in order:
            if run.inputs_of(step_id) & stale_data:
                stale_steps.add(step_id)
                plan.stale_steps.append(step_id)
                stale_data |= run.outputs_of(step_id)
        plan.stale_data = stale_data - changed
        plan.stale_outputs = run.final_outputs() & stale_data
        plan.fresh_steps = {s.step_id for s in run.steps()} - stale_steps
        return plan

    def plan_through_view(
        self, run_id: str, changed_inputs: Iterable[str], view: UserView
    ) -> ReexecutionPlan:
        """The same plan presented at a user view's granularity.

        Virtual steps are stale when any member step is stale; stale data
        is restricted to what the view makes visible.  A scientist reading
        the plan through their view sees the composite tasks to re-run,
        not the formatting internals.
        """
        base = self.plan(run_id, changed_inputs)
        composite_run = CompositeRun(self._run(run_id), view)
        stale_groups: List[str] = []
        seen: Set[str] = set()
        for step_id in base.stale_steps:
            group = composite_run.group_of(step_id)
            if group not in seen:
                seen.add(group)
                stale_groups.append(group)
        visible = composite_run.visible_data()
        all_groups = {c.step_id for c in composite_run.composite_steps()}
        return ReexecutionPlan(
            changed_inputs=base.changed_inputs,
            stale_steps=stale_groups,
            stale_data=base.stale_data & visible,
            stale_outputs=base.stale_outputs,
            fresh_steps=all_groups - seen,
        )

    def cheapest_scapegoat(self, run_id: str) -> str:
        """The user input whose change invalidates the fewest steps.

        A small planning utility: when several candidate inputs could be
        re-measured, start with the one with the smallest blast radius.
        """
        run = self._run(run_id)
        best: Optional[str] = None
        best_cost = float("inf")
        for data_id in sorted(run.user_inputs()):
            cost = len(self.plan(run_id, [data_id]).stale_steps)
            if cost < best_cost:
                best, best_cost = data_id, cost
        if best is None:
            raise QueryError("run %r has no user inputs" % run_id)
        return best
