"""Compact reachability labels: deep provenance without materialised pairs.

The lineage closure of :mod:`repro.provenance.index` answers deep
provenance in one range scan, but it stores O(reachable-pairs) rows per
run — quadratic on deep chains, which is exactly what lint rule ``WH042``
warns about.  Bao & Davidson's *Labeling Workflow Views with Fine-Grained
Dependencies* shows the fix for this graph class: give every node a
compact label such that reachability is decided from the labels alone,
and the index shrinks from O(V·E) rows to O(V).

This module implements the hybrid (tree + remainder) encoding of that
line of work over the **step DAG** of one run:

* pick a spanning forest — each step's tree parent is its
  lexicographically smallest upstream step, so the forest is a pure
  function of the rows (deterministic across backends and rebuilds);
* one DFS over the forest assigns every step an interval ``[pre, post]``;
  ``a`` reaches ``b`` through tree edges iff ``pre(a) <= pre(b)`` and
  ``post(b) <= post(a)`` — an O(1) test;
* the few non-tree edges survive as each step's *remainder set* (its
  other direct upstream steps).  Parent plus remainder together are
  exactly the step's direct predecessors, so an upward traversal over
  them enumerates a step's full ancestor set in O(ancestors + their
  edges) — never touching the rest of the run.

One label row per step, computed in one topological pass
(:func:`labels_from_rows`), persisted by both warehouse backends
(``lineage_labels`` table in SQLite, a frozen :class:`LineageLabels` in
memory) and served through ``label_lookup`` — the storage-compact twin of
the closure index behind the reasoner's ``strategy="labeled"``.

:func:`predict_closure_rows` — the static row-count bound ``WH042``
applies — also lives here so the lint rule and the reasoner's
``strategy="auto"`` heuristic (labeled when the predicted closure blows
the budget, indexed otherwise) share one estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import WarehouseError
from ..core.spec import INPUT
from .result import ProvenanceResult, ProvenanceRow

if TYPE_CHECKING:  # pragma: no cover — annotation-only imports
    from ..warehouse.base import ProvenanceWarehouse

#: Version stamp persisted with every label index (``labels_meta`` row in
#: SQLite, ``LineageLabels.version`` in memory).  Bump it when the
#: encoding changes; lint rule ``WH043`` flags stored labels whose version
#: differs from the code's.
LABELS_VERSION = 1


@dataclass
class LineageLabels:
    """The reachability labels of one run, ready to persist.

    One label per *step* — data objects resolve through ``producer`` —
    so the whole structure is O(V + E) where the closure is O(V·E).

    Attributes
    ----------
    run_id:
        The run the labels describe.
    version:
        The :data:`LABELS_VERSION` the labels were computed under.
    modules:
        ``step_id -> module`` for every step of the run.
    step_inputs:
        ``step_id -> sorted input data ids`` (the row expansion of a
        provenance answer).
    producer:
        ``data_id -> producing step`` (:data:`~repro.core.spec.INPUT`
        for user inputs).
    user_inputs:
        The run's user-supplied data objects.
    parent:
        ``step_id -> tree parent`` in the spanning forest (``None`` for
        roots): the lexicographically smallest direct upstream step.
    intervals:
        ``step_id -> (pre, post)`` DFS interval over the forest.
    remainder:
        ``step_id -> sorted non-tree direct upstream steps``.
    """

    run_id: str
    version: int = LABELS_VERSION
    modules: Dict[str, str] = field(default_factory=dict)
    step_inputs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    producer: Dict[str, str] = field(default_factory=dict)
    user_inputs: FrozenSet[str] = frozenset()
    parent: Dict[str, Optional[str]] = field(default_factory=dict)
    intervals: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    remainder: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Reachability primitives
    # ------------------------------------------------------------------

    def _require_step(self, step_id: str) -> None:
        if step_id not in self.intervals:
            raise WarehouseError(
                "step %r carries no label in run %r" % (step_id, self.run_id)
            )

    def _upstream(self, step_id: str) -> Iterator[str]:
        """Direct predecessors: the tree parent plus the remainder set."""
        source = self.parent[step_id]
        if source is not None:
            yield source
        yield from self.remainder[step_id]

    def reaches(self, a: str, b: str) -> bool:
        """Does step ``a`` reach step ``b`` along dataflow edges?

        Reflexive (``reaches(s, s)`` is true).  Tree descendants answer in
        O(1) from the intervals; otherwise an upward traversal from ``b``
        prunes whole subtrees with the same interval test.
        """
        self._require_step(a)
        self._require_step(b)
        if a == b:
            return True
        pre_a, post_a = self.intervals[a]
        seen: Set[str] = set()
        stack: List[str] = [b]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            pre, post = self.intervals[current]
            if pre_a <= pre and post <= post_a:
                return True  # a tree-ancestor of ``current``
            stack.extend(self._upstream(current))
        return False

    def ancestors_of(self, step_id: str) -> FrozenSet[str]:
        """Every step strictly upstream of ``step_id`` (excluding it)."""
        self._require_step(step_id)
        seen: Set[str] = set()
        stack: List[str] = list(self._upstream(step_id))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._upstream(current))
        return frozenset(seen)

    # ------------------------------------------------------------------
    # Deep-provenance answers (parity with the closure index)
    # ------------------------------------------------------------------

    def data_ids(self) -> List[str]:
        """Every data object the labels cover, sorted."""
        return sorted(self.producer)

    def lineage_steps_of(self, data_id: str) -> FrozenSet[str]:
        """The ancestor-step set of one data object."""
        try:
            source = self.producer[data_id]
        except KeyError:
            raise WarehouseError(
                "data %r is not covered by the lineage labels of run %r"
                % (data_id, self.run_id)
            ) from None
        if source == INPUT:
            return frozenset()
        return self.ancestors_of(source) | {source}

    def lineage_inputs_of(self, data_id: str) -> FrozenSet[str]:
        """The lineage user inputs of one data object.

        Not stored: a user input is in the lineage exactly when some
        ancestor step reads it directly, so the set is derived from the
        ancestor steps' input lists.
        """
        if data_id in self.user_inputs:
            return frozenset([data_id])
        found: Set[str] = set()
        for step_id in self.lineage_steps_of(data_id):
            for data_in in self.step_inputs[step_id]:
                if data_in in self.user_inputs:
                    found.add(data_in)
        return frozenset(found)

    def result_for(self, data_id: str) -> ProvenanceResult:
        """Materialise the deep provenance of one object as a query answer.

        Row-identical to what ``lineage_lookup`` serves from the closure
        index: one row per (ancestor step, that step's input) pair.
        """
        steps = self.lineage_steps_of(data_id)
        result = ProvenanceResult(target=data_id, view_name="UAdmin")
        user_inputs: Set[str] = set()
        for step_id in sorted(steps):
            module = self.modules[step_id]
            for data_in in self.step_inputs[step_id]:
                result.rows.append(
                    ProvenanceRow(step_id=step_id, module=module, data_in=data_in)
                )
                if data_in in self.user_inputs:
                    user_inputs.add(data_in)
        if data_id in self.user_inputs:
            user_inputs.add(data_id)
        result.user_inputs = user_inputs
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def iter_table_rows(self) -> Iterator[Tuple[str, int, int, str, str]]:
        """Flatten to ``(step_id, pre, post, parent, remainder)`` rows.

        The canonical persisted shape on both backends: roots store an
        empty-string parent, the remainder set is space-joined (step ids
        never contain spaces — the run grammar forbids them).
        """
        for step_id in sorted(self.intervals):
            pre, post = self.intervals[step_id]
            yield (
                step_id,
                pre,
                post,
                self.parent[step_id] or "",
                " ".join(self.remainder[step_id]),
            )

    def num_rows(self) -> int:
        """Number of relational rows the labels materialise to: one per step."""
        return len(self.intervals)


def labels_from_rows(
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> LineageLabels:
    """Compute the reachability labels of one run from its relational rows.

    One topological pass, same input validation as
    :func:`~repro.provenance.index.closure_from_rows` — rows no valid run
    can produce (multiple producers, reads of unproduced data, cycles)
    raise :class:`~repro.core.errors.WarehouseError` with the same
    messages, so callers can swap strategies without changing their error
    handling.
    """
    from ..warehouse.schema import DIR_OUT

    modules: Dict[str, str] = dict(steps)
    producer: Dict[str, str] = {d: INPUT for d in user_inputs}
    inputs: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    for step_id, data_id, direction in io_rows:
        if step_id not in modules:
            raise WarehouseError(
                "io row (%r, %r) references an undeclared step" % (step_id, data_id)
            )
        if direction == DIR_OUT:
            if data_id in producer and producer[data_id] != step_id:
                raise WarehouseError(
                    "data %r written by both %r and %r"
                    % (data_id, producer[data_id], step_id)
                )
            producer[data_id] = step_id
        else:
            inputs[step_id].append(data_id)

    labels = LineageLabels(
        run_id=run_id,
        modules=modules,
        producer=producer,
        user_inputs=frozenset(user_inputs),
    )
    for step_id in modules:
        labels.step_inputs[step_id] = tuple(sorted(set(inputs[step_id])))

    upstream: Dict[str, Set[str]] = {}
    downstream: Dict[str, Set[str]] = {s: set() for s in modules}
    for step_id in modules:
        sources: Set[str] = set()
        for data_id in labels.step_inputs[step_id]:
            source = producer.get(data_id)
            if source is None:
                raise WarehouseError(
                    "step %r read %r which nothing produced" % (step_id, data_id)
                )
            if source != INPUT and source != step_id:
                sources.add(source)
        upstream[step_id] = sources
        for source in sources:
            downstream[source].add(step_id)

    # Kahn sweep purely for acyclicity: a cyclic step can still hang off
    # an acyclic tree parent, so forest construction alone cannot tell.
    pending = {s: len(upstream[s]) for s in modules}
    frontier = [s for s, count in pending.items() if count == 0]
    ordered = 0
    while frontier:
        step_id = frontier.pop()
        ordered += 1
        for successor in downstream[step_id]:
            pending[successor] -= 1
            if pending[successor] == 0:
                frontier.append(successor)
    if ordered != len(modules):
        raise WarehouseError(
            "run %r has a cyclic io dependency; cannot label its lineage"
            % run_id
        )

    # Spanning forest: tree parent = smallest direct upstream step, the
    # rest of the predecessors become the remainder set.
    tree_children: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    for step_id in modules:
        sources = upstream[step_id]
        if sources:
            tree_parent: Optional[str] = min(sources)
            tree_children[tree_parent].append(step_id)
            labels.remainder[step_id] = tuple(
                sorted(sources - {tree_parent})
            )
        else:
            tree_parent = None
            labels.remainder[step_id] = ()
        labels.parent[step_id] = tree_parent
    for step_id in tree_children:
        tree_children[step_id].sort()

    # One DFS over the forest assigns the intervals; visiting roots and
    # children in sorted order makes the numbering deterministic.
    clock = 0
    roots = sorted(s for s in modules if labels.parent[s] is None)
    for root in roots:
        stack: List[Tuple[str, Iterator[str]]] = [
            (root, iter(tree_children[root]))
        ]
        pre_of: Dict[str, int] = {root: clock}
        clock += 1
        while stack:
            node, children = stack[-1]
            child = next(children, None)
            if child is None:
                labels.intervals[node] = (pre_of[node], clock)
                clock += 1
                stack.pop()
            else:
                pre_of[child] = clock
                clock += 1
                stack.append((child, iter(tree_children[child])))

    return labels


def compute_lineage_labels(
    warehouse: "ProvenanceWarehouse", run_id: str
) -> LineageLabels:
    """Compute a stored run's reachability labels from its warehouse rows."""
    return labels_from_rows(
        run_id,
        warehouse.steps_of_run(run_id),
        warehouse.io_rows(run_id),
        sorted(warehouse.user_inputs(run_id)),
    )


def try_extend(
    labels: LineageLabels,
    new_steps: Sequence[Tuple[str, str]],
    new_io_rows: Sequence[Tuple[str, str, str]],
    new_user_inputs: Sequence[str],
) -> Optional[LineageLabels]:
    """Incrementally extend labels with one streaming epoch, when safe.

    The interval encoding is a *global* property of the spanning forest:
    a new step hanging below an existing one renumbers every interval to
    its right, so most epochs must rebuild.  Two delta shapes, however,
    provably reproduce the exact rows :func:`labels_from_rows` would
    compute from scratch — the bar lint rule ``WH043`` holds stored
    labels to:

    * **no new steps** — the epoch only adds user inputs (and final
      outputs, which labels do not encode).  Label rows are per-step, so
      they are untouched; only the resolution maps (``producer``,
      ``user_inputs``) grow.
    * **new forest roots, appended in order** — every new step reads
      only user inputs (no upstream steps, so the forest gains isolated
      roots) *and* every new step id sorts after every existing root.
      The rebuild DFS visits roots in sorted order, so such roots take
      the next interval slots verbatim: ``(clock, clock+1)`` each, after
      the current maximum ``post``.

    Returns the extended (new, independent) :class:`LineageLabels`, or
    ``None`` when the epoch does not fit either shape and the caller
    must fall back to a full rebuild (the streaming ingestor's
    ``stream.rebuild`` counter).
    """
    from ..warehouse.schema import DIR_OUT

    modules: Dict[str, str] = dict(new_steps)
    producer_delta: Dict[str, str] = {d: INPUT for d in new_user_inputs}
    inputs: Dict[str, List[str]] = {step_id: [] for step_id in modules}
    for step_id, data_id, direction in new_io_rows:
        if step_id not in modules:
            return None  # touches a prior-epoch step: not frontier-shaped
        if direction == DIR_OUT:
            if data_id in producer_delta and producer_delta[data_id] != step_id:
                return None  # invalid delta; the rebuild path will raise
            producer_delta[data_id] = step_id
        else:
            inputs[step_id].append(data_id)
    for step_id in modules:
        for data_id in inputs[step_id]:
            source = producer_delta.get(data_id)
            if source is None:
                source = labels.producer.get(data_id)
            if source != INPUT:
                return None  # an upstream step: the forest would reshape

    extended = LineageLabels(
        run_id=labels.run_id,
        version=labels.version,
        modules={**labels.modules, **modules},
        producer={**labels.producer, **producer_delta},
        user_inputs=labels.user_inputs | frozenset(new_user_inputs),
    )
    extended.step_inputs = dict(labels.step_inputs)
    extended.parent = dict(labels.parent)
    extended.intervals = dict(labels.intervals)
    extended.remainder = dict(labels.remainder)
    if not modules:
        return extended

    existing_roots = [s for s, p in labels.parent.items() if p is None]
    new_ids = sorted(modules)
    if existing_roots and min(new_ids) <= max(existing_roots):
        return None  # a rebuild would interleave the DFS numbering
    clock = 1 + max(
        (post for _pre, post in labels.intervals.values()), default=-1
    )
    for step_id in new_ids:
        extended.step_inputs[step_id] = tuple(sorted(set(inputs[step_id])))
        extended.parent[step_id] = None
        extended.remainder[step_id] = ()
        extended.intervals[step_id] = (clock, clock + 1)
        clock += 2
    return extended


def labels_from_stored(
    run_id: str,
    label_rows: Sequence[Tuple[str, int, int, str, str]],
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
    version: int = LABELS_VERSION,
) -> LineageLabels:
    """Rehydrate :class:`LineageLabels` from persisted label rows.

    The inverse of :meth:`LineageLabels.iter_table_rows`, joined back with
    the run's base rows (steps, io, user inputs) which the labels resolve
    through.  No validation — the rows were validated when the labels were
    built; lint rule ``WH043`` audits drift after the fact.
    """
    from ..warehouse.schema import DIR_OUT

    labels = LineageLabels(
        run_id=run_id,
        version=version,
        modules=dict(steps),
        user_inputs=frozenset(user_inputs),
    )
    labels.producer = {d: INPUT for d in user_inputs}
    inputs: Dict[str, List[str]] = {s: [] for s in labels.modules}
    for step_id, data_id, direction in io_rows:
        if direction == DIR_OUT:
            labels.producer[data_id] = step_id
        elif step_id in inputs:
            inputs[step_id].append(data_id)
    for step_id in labels.modules:
        labels.step_inputs[step_id] = tuple(sorted(set(inputs[step_id])))
    for step_id, pre, post, tree_parent, remainder in label_rows:
        labels.parent[step_id] = tree_parent or None
        labels.intervals[step_id] = (pre, post)
        labels.remainder[step_id] = (
            tuple(remainder.split(" ")) if remainder else ()
        )
    return labels


def label_table_rows(
    run_id: str,
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> Set[Tuple[str, int, int, str, str]]:
    """The relational rows a fresh labelling of these run rows would hold.

    Used by lint rule ``WH043`` to detect a stale label index: whatever a
    backend stores must equal this set exactly (the forest and the DFS
    order are deterministic functions of the rows).
    """
    return set(
        labels_from_rows(run_id, steps, io_rows, user_inputs).iter_table_rows()
    )


def predict_closure_rows(
    steps: Sequence[Tuple[str, str]],
    io_rows: Sequence[Tuple[str, str, str]],
    user_inputs: Sequence[str],
) -> Optional[int]:
    """Upper-bound the lineage-closure row count without computing it.

    Propagates, in topological order, a bound on each step's reachable
    ancestor-set size — ``ub(s) = 1 + sum(ub(parents))``, capped at the
    run's step count — then charges every produced data object its
    producer's bound.  A true upper bound on what
    ``build_lineage_index`` would store, cheap enough for ingestion time.

    Shared by lint rule ``WH042`` and the reasoner's ``strategy="auto"``
    heuristic.  Returns ``None`` when the rows do not topologically sort
    (cycles — reported by other rules).
    """
    if not steps:
        return 0
    step_ids = {step_id for step_id, _module in steps}
    producer: Dict[str, str] = {}
    consumers: Dict[str, List[str]] = {}
    for step_id, data_id, direction in io_rows:
        if step_id not in step_ids:
            continue  # dangling row: WH032 reports it
        if direction == "out":
            producer.setdefault(data_id, step_id)
        else:
            consumers.setdefault(data_id, []).append(step_id)

    parents: Dict[str, Set[str]] = {step_id: set() for step_id in step_ids}
    children: Dict[str, Set[str]] = {step_id: set() for step_id in step_ids}
    inputs = set(user_inputs)
    for data_id, readers in consumers.items():
        writer = producer.get(data_id)
        if writer is None or data_id in inputs:
            continue
        for reader in readers:
            if reader != writer:
                parents[reader].add(writer)
                children[writer].add(reader)

    # Kahn topological sweep; a leftover step means a cycle -> None.
    pending = {step_id: len(parents[step_id]) for step_id in step_ids}
    frontier = [step_id for step_id, count in pending.items() if count == 0]
    cap = len(step_ids)
    bound: Dict[str, int] = {}
    ordered = 0
    while frontier:
        step_id = frontier.pop()
        ordered += 1
        bound[step_id] = min(
            cap, 1 + sum(bound[parent] for parent in parents[step_id])
        )
        for child in children[step_id]:
            pending[child] -= 1
            if pending[child] == 0:
                frontier.append(child)
    if ordered != len(step_ids):
        return None

    return sum(
        bound.get(step_id, 1)
        for data_id, step_id in producer.items()
        if data_id not in inputs
    )
