"""Export provenance to an Open Provenance Model (OPM) style document.

The paper's community context is the provenance challenges (reference
[5]), whose lingua franca became the Open Provenance Model: *artifacts*
(data objects), *processes* (steps), and the causal edges ``used``,
``wasGeneratedBy``, ``wasTriggeredBy`` and ``wasDerivedFrom``, grouped
into *accounts* — alternative descriptions of the same execution.

User views map onto OPM beautifully: **each user view is an account**.
The same run exported under Joe's view and under Mary's view yields two
accounts of one execution, at different granularities, exactly the
"level of abstraction" role OPM assigns to accounts.  This module exports
a :class:`~repro.core.composite.CompositeRun` (or several, as multiple
accounts of one run) to a JSON-serialisable OPM document.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.composite import CompositeRun
from ..core.spec import INPUT, OUTPUT


def export_account(composite_run: CompositeRun) -> Dict[str, object]:
    """One OPM account: the run as seen through one user view.

    Artifacts are the *visible* data objects; processes the (virtual)
    steps.  ``used``/``wasGeneratedBy`` edges come from the induced run
    graph; ``wasDerivedFrom`` links each produced artifact to the inputs
    of its producing process (OPM's one-step data dependency).
    """
    account = composite_run.view.name
    processes = [
        {
            "id": cstep.step_id,
            "label": cstep.composite,
            "members": sorted(cstep.members),
        }
        for cstep in composite_run.composite_steps()
    ]
    artifacts = sorted(composite_run.visible_data())
    used: List[Dict[str, str]] = []
    generated: List[Dict[str, str]] = []
    for src, dst, data_ids in sorted(composite_run.edges()):
        for data_id in sorted(data_ids):
            if dst != OUTPUT:
                used.append({"process": dst, "artifact": data_id})
            if src != INPUT:
                generated.append({"artifact": data_id, "process": src})
    # Dedup: an artifact consumed by several processes appears once per
    # (process, artifact) pair; generation is unique per artifact, but the
    # same (artifact, process) pair can arise from several edges.
    generated = [dict(t) for t in sorted({tuple(sorted(g.items())) for g in generated})]
    used = [dict(t) for t in sorted({tuple(sorted(u.items())) for u in used})]
    derived: List[Dict[str, str]] = []
    for entry in generated:
        producer = entry["process"]
        for cause in sorted(composite_run.inputs_of(producer)):
            derived.append({"effect": entry["artifact"], "cause": cause})
    return {
        "account": account,
        "processes": processes,
        "artifacts": artifacts,
        "used": used,
        "wasGeneratedBy": generated,
        "wasDerivedFrom": derived,
    }


def export_opm(
    composite_runs: Sequence[CompositeRun],
    run_id: Optional[str] = None,
) -> Dict[str, object]:
    """An OPM document with one account per provided view of one run.

    All composite runs must describe the same underlying run; the account
    names (view names) must be unique.
    """
    if not composite_runs:
        raise ValueError("need at least one view to export")
    base = composite_runs[0].run
    names: Set[str] = set()
    accounts = []
    for composite_run in composite_runs:
        if composite_run.run is not base and (
            composite_run.run.run_id != base.run_id
            or set(composite_run.run.edges()) != set(base.edges())
        ):
            raise ValueError("all accounts must describe the same run")
        name = composite_run.view.name
        if name in names:
            raise ValueError("duplicate account name %r" % name)
        names.add(name)
        accounts.append(export_account(composite_run))
    return {
        "opm_version": "1.1-like",
        "run_id": run_id or base.run_id,
        "user_inputs": sorted(base.user_inputs()),
        "final_outputs": sorted(base.final_outputs()),
        "accounts": accounts,
    }


def to_json(document: Dict[str, object], indent: int = 2) -> str:
    """Serialise an OPM document to JSON text."""
    return json.dumps(document, indent=indent, sort_keys=True)


def account_overlap(document: Dict[str, object]) -> Dict[str, object]:
    """Cross-account report: which artifacts every account can see.

    OPM consumers use overlapping accounts to reconcile granularities;
    this helper computes the artifacts visible in all accounts (the
    boundary data between composite executions shared by every view) and
    per-account exclusives.
    """
    accounts: Iterable[Dict[str, object]] = document["accounts"]  # type: ignore[assignment]
    artifact_sets = {
        str(acc["account"]): set(acc["artifacts"])  # type: ignore[arg-type]
        for acc in accounts
    }
    if not artifact_sets:
        return {"common": [], "exclusive": {}}
    common = set.intersection(*artifact_sets.values())
    exclusive = {
        name: sorted(artifacts - set.union(
            *(o for other, o in artifact_sets.items() if other != name)
        )) if len(artifact_sets) > 1 else sorted(artifacts)
        for name, artifacts in artifact_sets.items()
    }
    return {"common": sorted(common), "exclusive": exclusive}
