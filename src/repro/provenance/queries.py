"""Provenance queries at the granularity of a user view (Section II).

The *immediate provenance* of a data object is the (virtual) step that
produced it together with that step's input data set; the *deep provenance*
closes this recursively down to user inputs.  Both are answered relative to
a user view: the queries run over a :class:`~repro.core.composite.CompositeRun`,
so internal steps and internal data of composite executions never appear.

These functions are the reference semantics.  The warehouse-backed
:class:`~repro.provenance.reasoner.ProvenanceReasoner` must return exactly
the same answers (a property the integration tests enforce); it differs
only in where the run graph comes from and what gets cached.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from ..core.composite import CompositeRun
from ..core.errors import HiddenDataError
from ..core.spec import INPUT
from .result import ProvenanceResult, ProvenanceRow, ReverseProvenanceResult


def _require_visible(composite_run: CompositeRun, data_id: str) -> None:
    if not composite_run.is_visible(data_id):
        raise HiddenDataError(
            "data %r is internal to a composite execution under view %r"
            % (data_id, composite_run.view.name)
        )


def immediate_provenance(
    composite_run: CompositeRun, data_id: str
) -> ProvenanceResult:
    """The producing (virtual) step of ``data_id`` and its input set.

    User-input data has no producing step; the result then carries the
    object in ``user_inputs`` and no rows, matching the paper's convention
    that a user input's provenance is its recorded metadata.
    """
    _require_visible(composite_run, data_id)
    result = ProvenanceResult(
        target=data_id, view_name=composite_run.view.name
    )
    producer = composite_run.producer(data_id)
    if producer == INPUT:
        result.user_inputs.add(data_id)
        return result
    cstep = composite_run.composite_step(producer)
    for data_in in sorted(composite_run.inputs_of(producer)):
        result.rows.append(
            ProvenanceRow(step_id=producer, module=cstep.composite, data_in=data_in)
        )
    return result


def deep_provenance(composite_run: CompositeRun, data_id: str) -> ProvenanceResult:
    """All (virtual) steps and data that transitively produced ``data_id``.

    Breadth-first traversal over the induced run graph, deduplicating
    steps: a step contributes its input rows once even when several of its
    outputs are in the provenance.
    """
    _require_visible(composite_run, data_id)
    result = ProvenanceResult(
        target=data_id, view_name=composite_run.view.name
    )
    seen_data: Set[str] = set()
    seen_steps: Set[str] = set()
    frontier: Deque[str] = deque([data_id])
    while frontier:
        current = frontier.popleft()
        if current in seen_data:
            continue
        seen_data.add(current)
        producer = composite_run.producer(current)
        if producer == INPUT:
            result.user_inputs.add(current)
            continue
        if producer in seen_steps:
            continue
        seen_steps.add(producer)
        composite = composite_run.composite_step(producer).composite
        for data_in in sorted(composite_run.inputs_of(producer)):
            result.rows.append(
                ProvenanceRow(step_id=producer, module=composite, data_in=data_in)
            )
            frontier.append(data_in)
    return result


def reverse_provenance(
    composite_run: CompositeRun, data_id: str
) -> ReverseProvenanceResult:
    """Everything derived *from* ``data_id`` under the view.

    This is the paper's canned query "return the data objects which have a
    given data object in their data provenance", answered forward: steps
    that transitively consumed the object and the data they produced.
    """
    _require_visible(composite_run, data_id)
    result = ReverseProvenanceResult(
        source=data_id, view_name=composite_run.view.name
    )
    final_outputs = composite_run.run.final_outputs()
    seen_data: Set[str] = set()
    seen_steps: Set[str] = set()
    frontier: Deque[str] = deque([data_id])
    while frontier:
        current = frontier.popleft()
        if current in seen_data:
            continue
        seen_data.add(current)
        if current in final_outputs:
            result.final_outputs.add(current)
        for consumer in composite_run.consumers_of(current):
            result.rows.append(
                ProvenanceRow(
                    step_id=consumer,
                    module=composite_run.composite_step(consumer).composite,
                    data_in=current,
                )
            )
            if consumer not in seen_steps:
                seen_steps.add(consumer)
                outputs = sorted(composite_run.outputs_of(consumer))
                result.derived.update(outputs)
                frontier.extend(outputs)
    return result
