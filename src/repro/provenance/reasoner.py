"""The provenance reasoner: warehouse-backed, view-aware, cache-friendly.

The paper's best-performing strategy computes the finest-grained (UAdmin)
provenance once per run, stores it in a temporary structure, and answers
subsequent queries — in particular *view switches* on the same run — from
that cached state, making the switch one to two orders of magnitude cheaper
than the initial query (avg 13 ms vs up to seconds).  The
:class:`ProvenanceReasoner` reproduces this design:

* the first query on a run materialises the run graph from the warehouse
  and runs the warehouse's recursive closure (the expensive part);
* per-view composite-execution structures are built lazily and memoised, so
  switching the user view re-traverses only in-memory state;
* ``strategy="uncached"`` disables all memoisation, giving the naive
  baseline the ablation benchmark compares against.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.composite import CompositeRun
from ..core.errors import QueryError
from ..core.view import UserView, admin_view
from ..run.run import WorkflowRun
from ..warehouse.base import ProvenanceWarehouse
from .queries import deep_provenance, immediate_provenance, reverse_provenance
from .result import ProvenanceResult, ReverseProvenanceResult

_STRATEGIES = ("cached", "uncached")


class ProvenanceReasoner:
    """Answers provenance queries against a warehouse, through user views.

    Parameters
    ----------
    warehouse:
        Any :class:`~repro.warehouse.base.ProvenanceWarehouse`.
    strategy:
        ``"cached"`` (default) memoises materialised runs, composite-run
        structures and UAdmin closures; ``"uncached"`` recomputes
        everything on each query.
    """

    def __init__(
        self, warehouse: ProvenanceWarehouse, strategy: str = "cached"
    ) -> None:
        if strategy not in _STRATEGIES:
            raise QueryError(
                "unknown strategy %r (expected one of %s)" % (strategy, _STRATEGIES)
            )
        self.warehouse = warehouse
        self.strategy = strategy
        self._run_cache: Dict[str, WorkflowRun] = {}
        self._composite_cache: Dict[Tuple[str, UserView], CompositeRun] = {}
        self._admin_closure_cache: Dict[Tuple[str, str], ProvenanceResult] = {}

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop all memoised state (used between benchmark repetitions)."""
        self._run_cache.clear()
        self._composite_cache.clear()
        self._admin_closure_cache.clear()

    def _materialize_run(self, run_id: str) -> WorkflowRun:
        if self.strategy == "uncached":
            return self.warehouse.get_run(run_id)
        run = self._run_cache.get(run_id)
        if run is None:
            run = self.warehouse.get_run(run_id)
            self._run_cache[run_id] = run
        return run

    def composite_run(self, run_id: str, view: UserView) -> CompositeRun:
        """The (possibly cached) composite-execution structure of a run."""
        if self.strategy == "uncached":
            return CompositeRun(self._materialize_run(run_id), view)
        key = (run_id, view)
        composite = self._composite_cache.get(key)
        if composite is None:
            composite = CompositeRun(self._materialize_run(run_id), view)
            self._composite_cache[key] = composite
        return composite

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def admin_deep(self, run_id: str, data_id: str) -> ProvenanceResult:
        """Deep provenance at UAdmin granularity via the warehouse closure.

        This is the recursive-SQL (or BFS) query whose cost dominates the
        paper's response-time experiment; under the cached strategy it runs
        once per (run, data) pair.
        """
        if self.strategy == "uncached":
            return self.warehouse.admin_deep_provenance(run_id, data_id)
        key = (run_id, data_id)
        closure = self._admin_closure_cache.get(key)
        if closure is None:
            closure = self.warehouse.admin_deep_provenance(run_id, data_id)
            self._admin_closure_cache[key] = closure
        return closure

    def deep(
        self, run_id: str, data_id: str, view: Optional[UserView] = None
    ) -> ProvenanceResult:
        """Deep provenance of ``data_id`` under ``view`` (UAdmin if None)."""
        if view is None:
            return self.admin_deep(run_id, data_id)
        composite = self.composite_run(run_id, view)
        return deep_provenance(composite, data_id)

    def immediate(
        self, run_id: str, data_id: str, view: Optional[UserView] = None
    ) -> ProvenanceResult:
        """Immediate provenance of ``data_id`` under ``view``."""
        if view is None:
            view = admin_view(self._materialize_run(run_id).spec)
        composite = self.composite_run(run_id, view)
        return immediate_provenance(composite, data_id)

    def reverse(
        self, run_id: str, data_id: str, view: Optional[UserView] = None
    ) -> ReverseProvenanceResult:
        """Everything derived from ``data_id`` under ``view``."""
        if view is None:
            view = admin_view(self._materialize_run(run_id).spec)
        composite = self.composite_run(run_id, view)
        return reverse_provenance(composite, data_id)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def final_output_deep(
        self, run_id: str, view: Optional[UserView] = None
    ) -> ProvenanceResult:
        """Deep provenance of the run's (first) final output.

        The paper's evaluation uses "the deep provenance of the final
        output of the run" as the most expensive query; runs in this
        reproduction may have several final outputs, in which case the
        lexicographically smallest is taken for determinism.
        """
        outputs = sorted(self.warehouse.final_outputs(run_id))
        if not outputs:
            raise QueryError("run %r has no final output" % run_id)
        return self.deep(run_id, outputs[0], view=view)
