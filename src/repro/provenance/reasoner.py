"""The provenance reasoner: warehouse-backed, view-aware, cache-friendly.

The paper's best-performing strategy computes the finest-grained (UAdmin)
provenance once per run, stores it in a temporary structure, and answers
subsequent queries — in particular *view switches* on the same run — from
that cached state, making the switch one to two orders of magnitude cheaper
than the initial query (avg 13 ms vs up to seconds).  The
:class:`ProvenanceReasoner` reproduces this design:

* the first query on a run materialises the run graph from the warehouse
  and runs the warehouse's recursive closure (the expensive part);
* per-view composite-execution structures are built lazily and memoised, so
  switching the user view re-traverses only in-memory state;
* ``strategy="uncached"`` disables all memoisation, giving the naive
  baseline the ablation benchmark compares against;
* ``strategy="indexed"`` goes one step further than the paper: the UAdmin
  closure is materialised *in the warehouse* (the lineage-closure index of
  :mod:`repro.provenance.index`), built lazily on a run's first query and
  persisted, so even a cold process answers deep provenance with an
  indexed range lookup instead of recursion — and view-level answers are
  projected from those lookups through the cached composite structure;
* ``strategy="labeled"`` keeps the indexed strategy's query shape but
  serves UAdmin closures from the compact reachability labels of
  :mod:`repro.provenance.labels` — O(V) stored rows per run instead of the
  closure's O(reachable-pairs), per Bao & Davidson's labeling schemes;
* ``strategy="auto"`` picks per run: labeled when the predicted closure
  row count (lint rule ``WH042``'s estimator) exceeds the materialisation
  budget, indexed otherwise.

All memoisation lives in bounded LRU caches
(:class:`~repro.obs.cache.BoundedCache`): a long-lived reasoner serving
many runs keeps at most ``run_cache_size`` materialised runs, and evicting
a run cascades — its composite structures and UAdmin closures are
invalidated in the same stroke, so the caches never hold derived state for
a run that is no longer resident.  :meth:`stats` exposes per-cache hit,
miss, eviction and size counters; the hot paths are timed in the default
:class:`~repro.obs.metrics.MetricsRegistry` under ``reasoner.admin_deep``
and ``reasoner.view_switch``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.composite import CompositeRun
from ..core.errors import QueryError, UnknownEntityError
from ..core.view import UserView, admin_view
from ..obs import BoundedCache, get_registry
from ..run.run import WorkflowRun
from ..warehouse.base import ProvenanceWarehouse
from .index import project_closure
from .labels import predict_closure_rows
from .queries import deep_provenance, immediate_provenance, reverse_provenance
from .result import ProvenanceResult, ReverseProvenanceResult

_STRATEGIES = ("cached", "uncached", "indexed", "labeled", "auto")

#: Default capacities: generous for one service process, but bounded.
DEFAULT_RUN_CACHE_SIZE = 256
DEFAULT_COMPOSITE_CACHE_SIZE = 1024
DEFAULT_CLOSURE_CACHE_SIZE = 4096


class ProvenanceReasoner:
    """Answers provenance queries against a warehouse, through user views.

    Parameters
    ----------
    warehouse:
        Any :class:`~repro.warehouse.base.ProvenanceWarehouse`.
    strategy:
        ``"cached"`` (default) memoises materialised runs, composite-run
        structures and UAdmin closures; ``"uncached"`` recomputes
        everything on each query; ``"indexed"`` memoises like ``cached``
        *and* serves UAdmin closures from the warehouse's materialised
        lineage index, building it (once, persistently) on a run's first
        query; ``"labeled"`` does the same from the compact reachability
        labels (``build_label_index`` / ``label_lookup``); ``"auto"``
        resolves to labeled or indexed per run, by the predicted closure
        row count against ``closure_row_threshold``.
    run_cache_size, composite_cache_size, closure_cache_size:
        LRU capacities of the three caches (runs, per-view composite
        structures, UAdmin closures).  Evicting a run invalidates its
        dependent composite and closure entries.
    closure_row_threshold:
        The ``strategy="auto"`` budget: a run whose predicted closure
        exceeds this many rows is served from labels.  ``None`` (default)
        uses lint rule ``WH042``'s
        :data:`~repro.lint.rules_warehouse.DEFAULT_CLOSURE_ROW_THRESHOLD`,
        so the reasoner switches exactly where the linter starts warning.
    """

    def __init__(
        self,
        warehouse: ProvenanceWarehouse,
        strategy: str = "cached",
        run_cache_size: int = DEFAULT_RUN_CACHE_SIZE,
        composite_cache_size: int = DEFAULT_COMPOSITE_CACHE_SIZE,
        closure_cache_size: int = DEFAULT_CLOSURE_CACHE_SIZE,
        closure_row_threshold: Optional[int] = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise QueryError(
                "unknown strategy %r (expected one of %s)" % (strategy, _STRATEGIES)
            )
        self.warehouse = warehouse
        self.strategy = strategy
        self._run_cache: BoundedCache[str, WorkflowRun] = BoundedCache(
            run_cache_size, name="runs"
        )
        # Keyed on the view's *presentation* identity, not UserView
        # equality: equal-but-relabelled views must not share an entry,
        # or one would be served answers spelled with the other's
        # composite names.
        self._composite_cache: BoundedCache[
            Tuple[str, object], CompositeRun
        ] = BoundedCache(composite_cache_size, name="composites")
        self._admin_closure_cache: BoundedCache[
            Tuple[str, str], ProvenanceResult
        ] = BoundedCache(closure_cache_size, name="closures")
        # A run leaving the run cache (eviction or explicit invalidation)
        # takes its derived state with it.
        self._run_cache.add_invalidation_hook(self._on_run_removed)
        # Runs whose warehouse lineage index this reasoner has verified,
        # so the indexed strategy checks/builds at most once per run.
        self._indexed_runs: Set[str] = set()
        # Same memo for the label index (labeled/auto strategies).
        self._labeled_runs: Set[str] = set()
        # strategy="auto": the per-run labeled/indexed decision, memoised
        # so the row-count prediction runs once per run per reasoner.
        self.closure_row_threshold = closure_row_threshold
        self._auto_choice: Dict[str, str] = {}
        # Callables fired (with the run id) by invalidate_run, so layers
        # holding caches derived from this reasoner's answers — e.g. the
        # serve layer's per-view result cache — drop theirs in the same
        # stroke.
        self._invalidation_listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _on_run_removed(
        self, run_id: str, _run: WorkflowRun, _reason: str
    ) -> None:
        self._composite_cache.invalidate_where(lambda key: key[0] == run_id)
        self._admin_closure_cache.invalidate_where(lambda key: key[0] == run_id)

    def clear_cache(self) -> None:
        """Drop all memoised state and zero the cache counters.

        The warehouse's persistent lineage index survives — only this
        reasoner's in-process memo of which runs are indexed is forgotten
        (re-verified, cheaply, on the next indexed query).
        """
        for cache in self._caches():
            cache.clear()
            cache.reset_stats()
        self._indexed_runs.clear()
        self._labeled_runs.clear()
        self._auto_choice.clear()

    def add_invalidation_listener(self, listener: Callable[[str], None]) -> None:
        """Register ``listener(run_id)`` to be fired by :meth:`invalidate_run`."""
        self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(
        self, listener: Callable[[str], None]
    ) -> None:
        """Unregister a listener (no-op when it was never registered)."""
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    def invalidate_run(self, run_id: str) -> None:
        """Drop one run's cached state (run, composites, closures).

        Call after the underlying warehouse data for ``run_id`` changes —
        e.g. new annotations or a re-execution stored under the same id —
        so no stale derived state survives.  The run's *persistent* lineage
        index is dropped too: it was derived from the rows that changed.
        The next indexed query rebuilds it from the fresh rows.

        The run's generation is bumped on every cache **first**, so a
        concurrent ``get_or_build`` whose factory read the pre-invalidation
        rows cannot publish its stale result afterwards (it is returned to
        that one caller but never cached).  Registered invalidation
        listeners fire last, giving higher layers (the serve result cache)
        the same fan-out.
        """
        for cache in self._caches():
            cache.bump_generation(run_id)
        if not self._run_cache.invalidate(run_id):
            # The run itself was not cached; derived state may still be.
            self._on_run_removed(run_id, None, "invalidated")  # type: ignore[arg-type]
        self._indexed_runs.discard(run_id)
        self._labeled_runs.discard(run_id)
        self._auto_choice.pop(run_id, None)
        try:
            self.warehouse.drop_lineage_index(run_id)
        except UnknownEntityError:
            pass  # the run itself is gone; nothing left to drop
        try:
            self.warehouse.drop_label_index(run_id)
        except UnknownEntityError:
            pass  # the run itself is gone; nothing left to drop
        for listener in list(self._invalidation_listeners):
            listener(run_id)

    def refresh_run(self, run_id: str) -> None:
        """Flip one run's cached state to the next generation, gently.

        The streaming counterpart of :meth:`invalidate_run`: a committed
        epoch *extended* the run's rows — it did not corrupt them — so
        the in-process memos (run, composites, closures) are stale and
        must go, but the warehouse's persistent lineage/label indexes
        were already advanced by the streaming ingestor's delta path and
        MUST survive.  Generations are bumped first for the same
        stale-publish race :meth:`invalidate_run` documents; the
        ``_indexed_runs`` / ``_labeled_runs`` memos are kept because the
        persistent indexes are still valid.  Registered invalidation
        listeners fire last so the serve layer drops its derived results
        for the run in the same stroke.
        """
        for cache in self._caches():
            cache.bump_generation(run_id)
        if not self._run_cache.invalidate(run_id):
            self._on_run_removed(run_id, None, "refreshed")  # type: ignore[arg-type]
        self._auto_choice.pop(run_id, None)
        get_registry().counter("reasoner.refreshes").increment()
        for listener in list(self._invalidation_listeners):
            listener(run_id)

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-cache hit/miss/eviction/size counters, by cache name."""
        return {
            cache.name: cache.stats().as_dict() for cache in self._caches()
        }

    def _caches(self) -> Tuple[BoundedCache, ...]:
        return (self._run_cache, self._composite_cache, self._admin_closure_cache)

    def _materialize_run(self, run_id: str) -> WorkflowRun:
        if self.strategy == "uncached":
            return self.warehouse.get_run(run_id)
        return self._run_cache.get_or_build(
            run_id, lambda: self.warehouse.get_run(run_id), scope=run_id
        )

    def composite_run(self, run_id: str, view: UserView) -> CompositeRun:
        """The (possibly cached) composite-execution structure of a run."""
        if self.strategy == "uncached":
            return CompositeRun(self._materialize_run(run_id), view)
        return self._composite_cache.get_or_build(
            (run_id, view.presentation_key()),
            lambda: CompositeRun(self._materialize_run(run_id), view),
            scope=run_id,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def admin_deep(self, run_id: str, data_id: str) -> ProvenanceResult:
        """Deep provenance at UAdmin granularity via the warehouse closure.

        This is the recursive-SQL (or BFS) query whose cost dominates the
        paper's response-time experiment; under the cached strategy it runs
        once per (run, data) pair.  Under the indexed strategy it is a
        range lookup in the materialised lineage index; under the labeled
        strategy an upward traversal over the compact reachability labels
        (both built on the run's first query, persisted in the warehouse).
        """
        strategy = self._resolve_strategy(run_id)
        if strategy == "indexed":
            self._ensure_index(run_id)
            return self._admin_closure_cache.get_or_build(
                (run_id, data_id),
                lambda: self._indexed_lookup(run_id, data_id),
                scope=run_id,
            )
        if strategy == "labeled":
            self._ensure_labels(run_id)
            return self._admin_closure_cache.get_or_build(
                (run_id, data_id),
                lambda: self._labeled_lookup(run_id, data_id),
                scope=run_id,
            )
        if strategy == "uncached":
            return self._timed_closure(run_id, data_id)
        return self._admin_closure_cache.get_or_build(
            (run_id, data_id),
            lambda: self._timed_closure(run_id, data_id),
            scope=run_id,
        )

    def _resolve_strategy(self, run_id: str) -> str:
        """The concrete strategy serving this run (settles ``"auto"``).

        ``auto`` decides per run, once: labeled when ``WH042``'s predicted
        closure row count exceeds the budget (materialising the closure is
        exactly what the linter warns against), indexed otherwise.  Runs
        whose rows do not topologically sort fall through to indexed — the
        build will report the corruption either way.
        """
        if self.strategy != "auto":
            return self.strategy
        choice = self._auto_choice.get(run_id)
        if choice is None:
            predicted = predict_closure_rows(
                self.warehouse.steps_of_run(run_id),
                self.warehouse.io_rows(run_id),
                sorted(self.warehouse.user_inputs(run_id)),
            )
            threshold = self._auto_threshold()
            choice = (
                "labeled"
                if predicted is not None and predicted > threshold
                else "indexed"
            )
            self._auto_choice[run_id] = choice
        return choice

    def _auto_threshold(self) -> int:
        if self.closure_row_threshold is not None:
            return self.closure_row_threshold
        # Late import: repro.lint pulls in the warehouse layer at import
        # time, so binding it eagerly here would cycle the import graph.
        from ..lint.rules_warehouse import DEFAULT_CLOSURE_ROW_THRESHOLD

        return DEFAULT_CLOSURE_ROW_THRESHOLD

    def _ensure_index(self, run_id: str) -> None:
        """Build (or verify, once per reasoner) the run's lineage index."""
        if run_id in self._indexed_runs:
            return
        self.warehouse.build_lineage_index(run_id)
        self._indexed_runs.add(run_id)

    def _ensure_labels(self, run_id: str) -> None:
        """Build (or verify, once per reasoner) the run's label index."""
        if run_id in self._labeled_runs:
            return
        self.warehouse.build_label_index(run_id)
        self._labeled_runs.add(run_id)

    def ensure_run_ready(self, run_id: str) -> None:
        """Materialise whatever persistent index the strategy serves from.

        The owner-thread prebuild hook: index and label builds are
        warehouse *writes*, so a multi-threaded caller (the serve layer's
        ``warm()``) runs this on the owning thread before fanning queries
        out to workers.  A no-op for the cached/uncached strategies.
        """
        strategy = self._resolve_strategy(run_id)
        if strategy == "indexed":
            self._ensure_index(run_id)
        elif strategy == "labeled":
            self._ensure_labels(run_id)

    def _indexed_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        with get_registry().time("index.lookup"):
            return self.warehouse.lineage_lookup(run_id, data_id)

    def _labeled_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        with get_registry().time("labels.lookup"):
            return self.warehouse.label_lookup(run_id, data_id)

    def _timed_closure(self, run_id: str, data_id: str) -> ProvenanceResult:
        with get_registry().time("reasoner.admin_deep"):
            return self.warehouse.admin_deep_provenance(run_id, data_id)

    def deep(
        self, run_id: str, data_id: str, view: Optional[UserView] = None
    ) -> ProvenanceResult:
        """Deep provenance of ``data_id`` under ``view`` (UAdmin if None)."""
        if view is None:
            return self.admin_deep(run_id, data_id)
        with get_registry().time("reasoner.view_switch"):
            composite = self.composite_run(run_id, view)
            if self._resolve_strategy(run_id) in ("indexed", "labeled"):
                return project_closure(
                    composite,
                    lambda d: self.admin_deep(run_id, d),
                    data_id,
                )
            return deep_provenance(composite, data_id)

    def deep_many(
        self,
        run_id: str,
        data_ids: Iterable[str],
        view: Optional[UserView] = None,
    ) -> Dict[str, ProvenanceResult]:
        """Deep provenance of many objects of one run, batched.

        Per-query setup is paid once for the whole batch: the lineage (or
        label) index is verified/built once and the composite structure is
        materialised once per call even under the uncached strategy — the
        batch is one query, not N.  Duplicate data ids are answered once:
        the batch is deduplicated (first-occurrence order) before fan-out,
        so a duplicate-heavy batch costs one computation — not one memo
        probe, or under the uncached strategy one recomputation, per copy.
        """
        deduped = list(dict.fromkeys(data_ids))
        results: Dict[str, ProvenanceResult] = {}
        strategy = self._resolve_strategy(run_id)
        if strategy == "indexed":
            self._ensure_index(run_id)
        elif strategy == "labeled":
            self._ensure_labels(run_id)
        if view is None:
            for data_id in deduped:
                results[data_id] = self.admin_deep(run_id, data_id)
            return results
        composite = self.composite_run(run_id, view)
        for data_id in deduped:
            with get_registry().time("reasoner.view_switch"):
                if strategy in ("indexed", "labeled"):
                    results[data_id] = project_closure(
                        composite,
                        lambda d: self.admin_deep(run_id, d),
                        data_id,
                    )
                else:
                    results[data_id] = deep_provenance(composite, data_id)
        return results

    def immediate(
        self, run_id: str, data_id: str, view: Optional[UserView] = None
    ) -> ProvenanceResult:
        """Immediate provenance of ``data_id`` under ``view``."""
        if view is None:
            view = admin_view(self._materialize_run(run_id).spec)
        composite = self.composite_run(run_id, view)
        return immediate_provenance(composite, data_id)

    def reverse(
        self, run_id: str, data_id: str, view: Optional[UserView] = None
    ) -> ReverseProvenanceResult:
        """Everything derived from ``data_id`` under ``view``."""
        if view is None:
            view = admin_view(self._materialize_run(run_id).spec)
        composite = self.composite_run(run_id, view)
        return reverse_provenance(composite, data_id)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def final_output_deep(
        self, run_id: str, view: Optional[UserView] = None
    ) -> ProvenanceResult:
        """Deep provenance of the run's (first) final output.

        The paper's evaluation uses "the deep provenance of the final
        output of the run" as the most expensive query; runs in this
        reproduction may have several final outputs, in which case the
        lexicographically smallest is taken for determinism.
        """
        outputs = self.warehouse.final_outputs(run_id)
        if not outputs:
            raise QueryError("run %r has no final output" % run_id)
        return self.deep(run_id, min(outputs), view=view)
