"""Provenance query results and their size metrics.

The paper's evaluation measures the *number of tuples returned* by a deep
provenance query (Fig. 10 and Fig. 11): one tuple per ``(step, input data
object)`` pair at the granularity of the user view, which is what the
warehouse tables materialise.  The classes here standardise that counting
so every benchmark and test measures the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass(frozen=True)
class ProvenanceRow:
    """One tuple of a provenance answer: a step consumed a data object."""

    step_id: str
    module: str
    data_in: str


@dataclass
class ProvenanceResult:
    """Answer to a provenance query at the granularity of one user view.

    Attributes
    ----------
    target:
        The data object whose provenance was asked for.
    view_name:
        Name of the user view the answer is relative to.
    rows:
        One :class:`ProvenanceRow` per (visible step, visible input) pair
        in the provenance.  ``len(rows)`` is the paper's result size.
    user_inputs:
        The subset of data objects in the answer that were supplied by the
        user (their provenance is metadata, not further steps).
    """

    target: str
    view_name: str
    rows: List[ProvenanceRow] = field(default_factory=list)
    user_inputs: Set[str] = field(default_factory=set)

    def num_tuples(self) -> int:
        """The paper's result-size metric: number of rows returned."""
        return len(self.rows)

    def steps(self) -> Set[str]:
        """Distinct (virtual) steps appearing in the answer."""
        return {row.step_id for row in self.rows}

    def modules(self) -> Set[str]:
        """Distinct (composite) modules appearing in the answer."""
        return {row.module for row in self.rows}

    def data(self) -> Set[str]:
        """All data objects in the answer, including the target."""
        out = {row.data_in for row in self.rows}
        out.add(self.target)
        return out

    def inputs_of(self, step_id: str) -> Set[str]:
        """The input set attributed to one step in this answer."""
        return {row.data_in for row in self.rows if row.step_id == step_id}

    def sorted_rows(self) -> List[ProvenanceRow]:
        """Rows in a canonical order (for comparisons and display)."""
        return sorted(self.rows, key=lambda r: (r.step_id, r.data_in))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceResult):
            return NotImplemented
        return (
            self.target == other.target
            and set(self.rows) == set(other.rows)
            and self.user_inputs == other.user_inputs
        )

    def summary(self) -> Dict[str, int]:
        """Size statistics used by the benchmark harness."""
        return {
            "tuples": self.num_tuples(),
            "steps": len(self.steps()),
            "data": len(self.data()),
            "user_inputs": len(self.user_inputs),
        }


@dataclass
class ReverseProvenanceResult:
    """Answer to a reverse query: everything derived *from* a data object.

    ``rows`` record which steps consumed which objects along the forward
    closure; ``derived`` holds the data those steps produced (the objects
    that have the source in their provenance); ``final_outputs`` flags the
    run results among them.
    """

    source: str
    view_name: str
    rows: List[ProvenanceRow] = field(default_factory=list)
    derived: Set[str] = field(default_factory=set)
    final_outputs: Set[str] = field(default_factory=set)

    def num_tuples(self) -> int:
        """Number of (step, consumed data) rows in the answer."""
        return len(self.rows)

    def steps(self) -> Set[str]:
        """Distinct steps that transitively consumed the source."""
        return {row.step_id for row in self.rows}

    def data(self) -> Set[str]:
        """All data objects derived from the source (plus the source)."""
        return self.derived | {self.source}
