"""Comparing two runs of the same workflow at a view's granularity.

Workflows are executed "several times a month" (Section I); comparing two
runs is how a scientist spots why this week's tree differs from last
week's.  The paper cites comparative visualisation as related work it does
not itself cover — this module supplies the data side of such a
comparison, *scoped by a user view*: differences internal to a composite
execution are invisible, exactly like provenance answers.

The comparison is structural: per composite module, how many virtual
executions happened in each run (loop iteration deltas show up here), how
much data crossed each induced edge, and how the runs' interfaces (user
inputs, final outputs) differ in volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.composite import CompositeRun
from ..core.errors import RunError
from ..core.view import UserView
from ..run.run import WorkflowRun


@dataclass(frozen=True)
class ModuleDelta:
    """Per-composite difference between two runs."""

    composite: str
    executions_a: int
    executions_b: int

    @property
    def changed(self) -> bool:
        return self.executions_a != self.executions_b


@dataclass(frozen=True)
class EdgeDelta:
    """Data-volume difference on one induced edge."""

    src: str
    dst: str
    volume_a: int
    volume_b: int

    @property
    def changed(self) -> bool:
        return self.volume_a != self.volume_b


@dataclass
class RunDiff:
    """The full comparison report."""

    run_a: str
    run_b: str
    view_name: str
    modules: List[ModuleDelta] = field(default_factory=list)
    edges: List[EdgeDelta] = field(default_factory=list)
    user_inputs: Tuple[int, int] = (0, 0)
    final_outputs: Tuple[int, int] = (0, 0)

    def changed_modules(self) -> List[ModuleDelta]:
        """Composites whose execution count differs."""
        return [delta for delta in self.modules if delta.changed]

    def changed_edges(self) -> List[EdgeDelta]:
        """Induced edges whose data volume differs."""
        return [delta for delta in self.edges if delta.changed]

    def identical(self) -> bool:
        """Whether the runs are indistinguishable at this granularity."""
        return (
            not self.changed_modules()
            and not self.changed_edges()
            and self.user_inputs[0] == self.user_inputs[1]
            and self.final_outputs[0] == self.final_outputs[1]
        )

    def summary(self) -> Dict[str, object]:
        """Compact description for reports."""
        return {
            "runs": (self.run_a, self.run_b),
            "view": self.view_name,
            "changed_modules": [d.composite for d in self.changed_modules()],
            "changed_edges": [
                (d.src, d.dst) for d in self.changed_edges()
            ],
            "identical": self.identical(),
        }


def _edge_volumes(composite: CompositeRun) -> Dict[Tuple[str, str], int]:
    """Data volume per induced edge, keyed by composite-module endpoints.

    Virtual-step identifiers differ between runs (different iteration
    counts shift the numbering), so edges are aggregated by the composite
    modules they connect.
    """
    volumes: Dict[Tuple[str, str], int] = {}
    for src, dst, data_ids in composite.edges():
        key = (_module_of(composite, src), _module_of(composite, dst))
        volumes[key] = volumes.get(key, 0) + len(data_ids)
    return volumes


def _module_of(composite: CompositeRun, node: str) -> str:
    if node in ("input", "output"):
        return node
    return composite.composite_step(node).composite


def diff_runs(
    run_a: WorkflowRun,
    run_b: WorkflowRun,
    view: UserView,
) -> RunDiff:
    """Compare two runs of the same specification through one view."""
    if run_a.spec != run_b.spec:
        raise RunError("runs execute different specifications")
    if view.spec != run_a.spec:
        raise RunError("view does not match the runs' specification")
    composite_a = CompositeRun(run_a, view)
    composite_b = CompositeRun(run_b, view)
    report = RunDiff(
        run_a=run_a.run_id,
        run_b=run_b.run_id,
        view_name=view.name,
        user_inputs=(len(run_a.user_inputs()), len(run_b.user_inputs())),
        final_outputs=(len(run_a.final_outputs()), len(run_b.final_outputs())),
    )
    for composite in sorted(view.composites):
        report.modules.append(ModuleDelta(
            composite=composite,
            executions_a=len(composite_a.executions_of(composite)),
            executions_b=len(composite_b.executions_of(composite)),
        ))
    volumes_a = _edge_volumes(composite_a)
    volumes_b = _edge_volumes(composite_b)
    for key in sorted(set(volumes_a) | set(volumes_b)):
        src, dst = key
        report.edges.append(EdgeDelta(
            src=src,
            dst=dst,
            volume_a=volumes_a.get(key, 0),
            volume_b=volumes_b.get(key, 0),
        ))
    return report
