"""Run layer: run graphs, event logs and the execution simulator."""

from .data import DataRegistry, UserInputMeta
from .executor import ExecutionParams, SimulationResult, simulate
from .log import (
    Event,
    EventLog,
    FinalOutputEvent,
    ReadEvent,
    StartEvent,
    UserInputEvent,
    WriteEvent,
    log_from_run,
    run_from_log,
)
from .replay import (
    canonical_signature,
    observed_iterations,
    replay,
    runs_equivalent,
)
from .run import Step, WorkflowRun
from .trace import read_trace, write_trace

__all__ = [
    "DataRegistry",
    "Event",
    "EventLog",
    "ExecutionParams",
    "FinalOutputEvent",
    "ReadEvent",
    "SimulationResult",
    "StartEvent",
    "Step",
    "UserInputEvent",
    "UserInputMeta",
    "WorkflowRun",
    "WriteEvent",
    "canonical_signature",
    "log_from_run",
    "observed_iterations",
    "read_trace",
    "replay",
    "run_from_log",
    "runs_equivalent",
    "simulate",
    "write_trace",
]
