"""Data-object identity and metadata.

Every data object in the workflow dataspace has a unique identifier and is
produced by at most one step (the paper assumes data is never overwritten or
updated in place).  Objects fed into the run by a user carry, instead of a
producing step, whatever metadata was recorded — who input them and when —
which the paper defines to *be* their provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class UserInputMeta:
    """Provenance metadata for a data object supplied by a user."""

    who: str
    time: int


class DataRegistry:
    """Allocates sequential data identifiers and tracks user-input metadata.

    Identifiers follow the paper's ``d1, d2, ...`` convention.  The registry
    does not know producers — the run graph records production — it only
    guarantees uniqueness and remembers which objects were user inputs.
    """

    def __init__(self, prefix: str = "d") -> None:
        self._prefix = prefix
        self._next = 1
        self._user_inputs: Dict[str, UserInputMeta] = {}

    def allocate(self, count: int = 1) -> List[str]:
        """Allocate ``count`` fresh data identifiers."""
        if count < 0:
            raise ValueError("count must be non-negative")
        ids = [
            "%s%d" % (self._prefix, self._next + offset) for offset in range(count)
        ]
        self._next += count
        return ids

    def allocate_user_input(
        self, count: int, who: str = "user", time: int = 0
    ) -> List[str]:
        """Allocate identifiers for user-supplied objects, with metadata."""
        ids = self.allocate(count)
        meta = UserInputMeta(who=who, time=time)
        for data_id in ids:
            self._user_inputs[data_id] = meta
        return ids

    def is_user_input(self, data_id: str) -> bool:
        """Whether ``data_id`` was supplied by a user."""
        return data_id in self._user_inputs

    def user_input_meta(self, data_id: str) -> Optional[UserInputMeta]:
        """Metadata for a user input, or ``None`` for derived data."""
        return self._user_inputs.get(data_id)

    def user_inputs(self) -> Iterator[str]:
        """Iterate over all user-input identifiers, in allocation order."""
        return iter(self._user_inputs)

    def count(self) -> int:
        """Total number of identifiers allocated so far."""
        return self._next - 1
