"""Execution simulator: from a specification to a run plus its event log.

The paper's experiments are driven by *simulated* runs of (real and
synthetic) workflow specifications, parameterised by the amount of user
input, the amount of data each step produces, and the number of loop
iterations (Table II).  This module is that simulator.

Loops are handled the way scientific workflow engines unroll them: the DFS
back edges of the specification close *loop bodies* (all modules on a
forward path from the loop header to the loop tail).  Each loop executes a
sampled number of iterations; iteration ``i+1`` of the header consumes the
data the tail produced in iteration ``i`` over the back edge, and external
inputs are consumed by the first iteration only — exactly the shape of the
paper's Fig. 2 run, where the second execution of the alignment module
reads only the rectified alignment, not the original sequences.  Data
flowing out of the loop body comes from the final iteration.

Only non-nested (disjoint-body) loops are supported; the workload generator
never produces nested loops, matching the structured workflows of the
paper's corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import ExecutionError, LoopNestingError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from .data import DataRegistry
from .log import EventLog
from .run import WorkflowRun


@dataclass(frozen=True)
class ExecutionParams:
    """Knobs of the simulator, mirroring the run-class parameters of Table II.

    Attributes
    ----------
    user_input_range:
        Inclusive range of the number of data objects the user supplies on
        each edge leaving the ``input`` node.
    data_per_edge_range:
        Inclusive range of the number of data objects a step writes on each
        outgoing edge, sampled per edge and per iteration.
    loop_iterations_range:
        Inclusive range of the number of iterations of each loop.
    max_steps:
        Hard safety cap on the number of steps; exceeded means
        :class:`ExecutionError`.
    """

    user_input_range: Tuple[int, int] = (1, 10)
    data_per_edge_range: Tuple[int, int] = (1, 5)
    loop_iterations_range: Tuple[int, int] = (1, 5)
    max_steps: int = 100_000

    def __post_init__(self) -> None:
        for label, (lo, hi) in (
            ("user_input_range", self.user_input_range),
            ("data_per_edge_range", self.data_per_edge_range),
            ("loop_iterations_range", self.loop_iterations_range),
        ):
            if lo < 1 or hi < lo:
                raise ExecutionError("invalid %s: (%d, %d)" % (label, lo, hi))


@dataclass
class SimulationResult:
    """Everything produced by one simulated execution."""

    run: WorkflowRun
    log: EventLog
    registry: DataRegistry
    iterations: Dict[Tuple[str, str], int] = field(default_factory=dict)


def simulate(
    spec: WorkflowSpec,
    params: Optional[ExecutionParams] = None,
    rng: Optional[random.Random] = None,
    run_id: str = "run1",
    iterations: Optional[Mapping[Tuple[str, str], int]] = None,
    user: str = "user",
) -> SimulationResult:
    """Execute ``spec`` once and return the run, log and data registry.

    Parameters
    ----------
    spec:
        The workflow specification to execute.
    params:
        Simulation knobs; defaults to :class:`ExecutionParams`'s defaults.
    rng:
        Source of randomness; defaults to ``random.Random(0)`` so that
        un-parameterised calls are reproducible.
    run_id:
        Identifier for the produced run.
    iterations:
        Optional explicit iteration count per back edge ``(tail, header)``,
        overriding the sampled value — used to script deterministic runs
        such as the paper's Fig. 2.
    user:
        Name recorded as the supplier of the run's user inputs (the
        metadata that *is* a user input's provenance per Section II).
    """
    engine = _Engine(spec, params or ExecutionParams(), rng or random.Random(0),
                     run_id, dict(iterations or {}), user)
    return engine.execute()


class _Engine:
    """Single-use executor for one simulation."""

    def __init__(
        self,
        spec: WorkflowSpec,
        params: ExecutionParams,
        rng: random.Random,
        run_id: str,
        forced_iterations: Dict[Tuple[str, str], int],
        user: str = "user",
    ) -> None:
        self.spec = spec
        self.params = params
        self.rng = rng
        self.user = user
        self.run = WorkflowRun(spec, run_id=run_id)
        self.log = EventLog(run_id=run_id)
        self.registry = DataRegistry()
        self.forced_iterations = forced_iterations
        self.iterations_used: Dict[Tuple[str, str], int] = {}
        self._step_counter = 0
        # latest data flowing on each specification edge:
        # (src module, dst module) -> (producing run node, data ids)
        self._latest: Dict[Tuple[str, str], Tuple[str, List[str]]] = {}

    # ------------------------------------------------------------------
    # Loop structure
    # ------------------------------------------------------------------

    def _loop_plan(self) -> List[Tuple[Tuple[str, str], Set[str]]]:
        plans: List[Tuple[Tuple[str, str], Set[str]]] = []
        seen: Set[str] = set()
        for back_edge in self.spec.back_edges():
            body = self.spec.loop_body(back_edge)
            if body & seen:
                raise LoopNestingError(
                    "loops sharing modules %s are not supported"
                    % sorted(body & seen)
                )
            seen |= body
            plans.append((back_edge, body))
        return plans

    def _schedule(
        self, loops: Sequence[Tuple[Tuple[str, str], Set[str]]]
    ) -> List[Tuple[str, object]]:
        """Topological schedule over loop-contracted super-nodes.

        Returns a list of ``("module", name)`` and ``("loop", index)``
        items in execution order.
        """
        forward = self.spec.forward_graph()
        group_of: Dict[str, object] = {}
        for idx, (_edge, body) in enumerate(loops):
            for node in body:
                group_of[node] = ("loop", idx)
        contracted = nx.DiGraph()
        for node in forward.nodes:
            contracted.add_node(group_of.get(node, ("module", node)))
        for src, dst in forward.edges:
            gsrc = group_of.get(src, ("module", src))
            gdst = group_of.get(dst, ("module", dst))
            if gsrc != gdst:
                contracted.add_edge(gsrc, gdst)
        if not nx.is_directed_acyclic_graph(contracted):  # pragma: no cover
            raise ExecutionError("loop contraction produced a cycle")
        order = list(nx.lexicographical_topological_sort(contracted, key=str))
        return [
            item
            for item in order
            if item not in (("module", INPUT), ("module", OUTPUT))
        ]

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------

    def _new_step(self, module: str) -> str:
        self._step_counter += 1
        if self._step_counter > self.params.max_steps:
            raise ExecutionError(
                "run exceeded max_steps=%d (runaway loop?)" % self.params.max_steps
            )
        step_id = "S%d" % self._step_counter
        self.run.add_step(step_id, module)
        self.log.start(step_id, module)
        return step_id

    def _sample(self, bounds: Tuple[int, int]) -> int:
        return self.rng.randint(bounds[0], bounds[1])

    def _provide_user_inputs(self) -> None:
        for target in sorted(self.spec.successors(INPUT)):
            count = self._sample(self.params.user_input_range)
            ids = self.registry.allocate_user_input(count, who=self.user)
            for data_id in ids:
                self.log.user_input(data_id, who=self.user)
            self._latest[(INPUT, target)] = (INPUT, ids)

    def _execute_module(
        self,
        module: str,
        body: Optional[Set[str]] = None,
        first_iteration: bool = True,
        final_iteration: bool = True,
        back_edge: Optional[Tuple[str, str]] = None,
    ) -> str:
        """Execute one step of ``module`` and wire its data.

        ``body`` is the loop body when executing inside a loop; on
        iterations after the first, only intra-body inputs (including the
        back edge) are consumed; data for edges leaving the body is
        produced only on the final iteration, and the back edge itself is
        fed only on non-final iterations (the loop is about to exit).
        """
        step_id = self._new_step(module)
        for pred in sorted(self.spec.predecessors(module)):
            if body is not None and not first_iteration and pred not in body:
                continue
            available = self._latest.get((pred, module))
            if available is None:
                continue  # back edge before its first data, etc.
            producer, data_ids = available
            self.run.add_edge(producer, step_id, data_ids)
            for data_id in sorted(data_ids):
                self.log.read(step_id, data_id)
        for succ in sorted(self.spec.successors(module)):
            external = body is not None and succ not in body
            if external and not final_iteration:
                continue
            if final_iteration and back_edge is not None \
                    and (module, succ) == back_edge:
                continue  # the loop exits; nobody will read this
            count = self._sample(self.params.data_per_edge_range)
            ids = self.registry.allocate(count)
            for data_id in ids:
                self.log.write(step_id, data_id)
            self._latest[(module, succ)] = (step_id, ids)
        return step_id

    def _execute_loop(self, back_edge: Tuple[str, str], body: Set[str]) -> None:
        iterations = self.forced_iterations.get(
            back_edge, self._sample(self.params.loop_iterations_range)
        )
        if iterations < 1:
            raise ExecutionError(
                "loop %r must run at least one iteration" % (back_edge,)
            )
        self.iterations_used[back_edge] = iterations
        forward = self.spec.forward_graph()
        body_graph = forward.subgraph(body)
        body_order = list(nx.lexicographical_topological_sort(body_graph))
        # Modules executed on the final iteration: those from which data can
        # still flow out of the loop.  A module that only feeds the back
        # edge (e.g. the rectification step of the paper's Fig. 2) is not
        # re-run once the scientist is satisfied — the loop exits before it.
        exiting = {
            module
            for module in body
            if any(succ not in body for succ in self.spec.successors(module))
        }
        useful_final: Set[str] = set(exiting)
        for module in exiting:
            useful_final |= nx.ancestors(body_graph, module)
        for iteration in range(1, iterations + 1):
            final = iteration == iterations
            for module in body_order:
                if final and module not in useful_final:
                    continue
                self._execute_module(
                    module,
                    body=body,
                    first_iteration=iteration == 1,
                    final_iteration=final,
                    back_edge=back_edge,
                )

    def _deliver_final_outputs(self) -> None:
        for pred in sorted(self.spec.predecessors(OUTPUT)):
            available = self._latest.get((pred, OUTPUT))
            if available is None:  # pragma: no cover - spec validity forbids
                raise ExecutionError("module %r produced no final output" % pred)
            producer, data_ids = available
            self.run.add_edge(producer, OUTPUT, data_ids)
            for data_id in sorted(data_ids):
                self.log.final_output(data_id)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def execute(self) -> SimulationResult:
        loops = self._loop_plan()
        schedule = self._schedule(loops)
        self._provide_user_inputs()
        for kind, payload in schedule:
            if kind == "module":
                self._execute_module(str(payload))
            else:
                back_edge, body = loops[int(payload)]  # type: ignore[arg-type]
                self._execute_loop(back_edge, body)
        self._deliver_final_outputs()
        self.run.validate()
        return SimulationResult(
            run=self.run,
            log=self.log,
            registry=self.registry,
            iterations=self.iterations_used,
        )
