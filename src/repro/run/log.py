"""Event logs — the raw material of provenance reasoning (Section II).

The paper assumes each workflow run generates a log of events recording,
for every step, the module it instantiates, the data objects it read and
the data objects it wrote.  Provenance is *derived* from this log, so the
reproduction models the log explicitly: the simulator emits one, and
:func:`run_from_log` rebuilds the run graph from log events alone — which
is exactly the reconstruction a provenance warehouse performs when loading
a third-party workflow system's trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Union

from ..core.errors import RunError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from .run import WorkflowRun


@dataclass(frozen=True)
class StartEvent:
    """A step began executing ``module`` at logical ``time``."""

    time: int
    step_id: str
    module: str

    kind = "start"


@dataclass(frozen=True)
class ReadEvent:
    """A step read one data object."""

    time: int
    step_id: str
    data_id: str

    kind = "read"


@dataclass(frozen=True)
class WriteEvent:
    """A step wrote one data object."""

    time: int
    step_id: str
    data_id: str

    kind = "write"


@dataclass(frozen=True)
class UserInputEvent:
    """A user supplied one data object to the run."""

    time: int
    data_id: str
    who: str = "user"

    kind = "user_input"


@dataclass(frozen=True)
class FinalOutputEvent:
    """A data object was designated a final result of the run."""

    time: int
    data_id: str

    kind = "final_output"


Event = Union[StartEvent, ReadEvent, WriteEvent, UserInputEvent, FinalOutputEvent]


class EventLog:
    """An append-only, time-ordered sequence of run events."""

    def __init__(self, run_id: str = "run") -> None:
        self.run_id = run_id
        self._events: List[Event] = []
        self._clock = 0

    def tick(self) -> int:
        """Advance and return the logical clock."""
        self._clock += 1
        return self._clock

    def append(self, event: Event) -> None:
        """Append an event; events must be appended in time order."""
        if self._events and event.time < self._events[-1].time:
            raise RunError(
                "event at time %d appended after time %d"
                % (event.time, self._events[-1].time)
            )
        self._events.append(event)

    def start(self, step_id: str, module: str) -> StartEvent:
        """Record and return a start event at the next clock tick."""
        event = StartEvent(self.tick(), step_id, module)
        self.append(event)
        return event

    def read(self, step_id: str, data_id: str) -> ReadEvent:
        """Record and return a read event."""
        event = ReadEvent(self.tick(), step_id, data_id)
        self.append(event)
        return event

    def write(self, step_id: str, data_id: str) -> WriteEvent:
        """Record and return a write event."""
        event = WriteEvent(self.tick(), step_id, data_id)
        self.append(event)
        return event

    def user_input(self, data_id: str, who: str = "user") -> UserInputEvent:
        """Record and return a user-input event."""
        event = UserInputEvent(self.tick(), data_id, who)
        self.append(event)
        return event

    def final_output(self, data_id: str) -> FinalOutputEvent:
        """Record and return a final-output designation."""
        event = FinalOutputEvent(self.tick(), data_id)
        self.append(event)
        return event

    def events(self) -> Iterator[Event]:
        """Iterate events in time order."""
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All events of one kind, in time order."""
        return [e for e in self._events if e.kind == kind]


def log_from_run(run: WorkflowRun) -> EventLog:
    """Produce a canonical event log replaying a finished run graph.

    Steps are replayed in a topological order of the run; each step logs
    its start, then reads of all its inputs, then writes of all its
    outputs.  ``log_from_run`` and :func:`run_from_log` are inverses up to
    event timestamps.
    """
    import networkx as nx

    log = EventLog(run_id=run.run_id)
    for data_id in sorted(run.user_inputs()):
        log.user_input(data_id)
    order = [
        node
        for node in nx.lexicographical_topological_sort(run.graph)
        if node not in (INPUT, OUTPUT)
    ]
    for step_id in order:
        step = run.step(step_id)
        log.start(step_id, step.module)
        for data_id in sorted(run.inputs_of(step_id)):
            log.read(step_id, data_id)
        for data_id in sorted(run.outputs_of(step_id)):
            log.write(step_id, data_id)
    for data_id in sorted(run.final_outputs()):
        log.final_output(data_id)
    return log


def run_from_log(log: EventLog, spec: WorkflowSpec) -> WorkflowRun:
    """Reconstruct the run graph a log describes.

    The reconstruction follows the paper's recipe: the step that wrote a
    data object is its producer; an edge ``s -> t`` labelled ``d`` exists
    whenever ``t`` read an object ``d`` written by ``s`` (or supplied by
    the user, in which case the edge leaves the ``input`` node).

    Reconstruction is fail-fast: the first offending event raises
    :class:`RunError`, and the message names that event's position in the
    log and its kind, so a bad trace can be located without replaying it
    by hand.  (To collect *every* defect of a log instead, use
    :func:`repro.lint.lint_log`.)
    """
    run = WorkflowRun(spec, run_id=log.run_id)
    writer: Dict[str, str] = {}
    for index, event in enumerate(log):
        if event.kind == "user_input":
            writer[event.data_id] = INPUT
        elif event.kind == "start":
            _positioned(run.add_step, index, event, event.step_id, event.module)
        elif event.kind == "write":
            if event.data_id in writer:
                raise RunError(
                    "event %d (%s): data %r written twice (by %r and %r)"
                    % (index, event.kind, event.data_id,
                       writer[event.data_id], event.step_id)
                )
            writer[event.data_id] = event.step_id
    for index, event in enumerate(log):
        if event.kind == "read":
            source = writer.get(event.data_id)
            if source is None:
                raise RunError(
                    "event %d (%s): step %r read %r which nothing produced"
                    % (index, event.kind, event.step_id, event.data_id)
                )
            _positioned(
                run.add_edge, index, event, source, event.step_id, [event.data_id]
            )
        elif event.kind == "final_output":
            source = writer.get(event.data_id)
            if source is None:
                raise RunError(
                    "event %d (%s): final output %r was never produced"
                    % (index, event.kind, event.data_id)
                )
            _positioned(
                run.add_edge, index, event, source, OUTPUT, [event.data_id]
            )
    return run


def _positioned(action, index, event, *args):
    """Run one reconstruction action, prefixing any RunError with the
    offending event's log position and kind."""
    try:
        return action(*args)
    except RunError as exc:
        raise RunError("event %d (%s): %s" % (index, event.kind, exc)) from None
