"""Run canonicalisation and replay — the reproducibility utilities.

The paper's opening motivation is reproducibility: provenance exists so an
experiment can be understood *and re-run*.  Two ingredients make that
checkable:

* :func:`canonical_signature` — a representation of a run that is
  invariant under renaming of step and data identifiers, so two runs can
  be compared structurally (``runs_equivalent``).  Step ids depend on the
  order the simulator happened to schedule independent branches, and data
  ids on allocation order; neither is meaningful.
* :func:`replay` — re-execute a specification forcing the loop iteration
  counts observed in a reference run.  The replay reproduces the
  reference's *step structure* exactly (same modules executed the same
  number of times, wired the same way); per-edge data volumes are
  resampled unless the caller pins the parameter ranges.

Both are used by tests and available to users validating that a published
run can be regenerated.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

import networkx as nx

from ..core.errors import RunError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from .executor import ExecutionParams, SimulationResult, simulate
from .run import WorkflowRun

#: A canonical edge: (source canon id, target canon id, data count).
_CanonEdge = Tuple[str, str, int]


def canonical_signature(
    run: WorkflowRun, include_data_counts: bool = True
) -> Tuple[Tuple[str, ...], Tuple[_CanonEdge, ...]]:
    """An id-renaming-invariant signature of a run graph.

    Steps are renamed generation by generation (topological layers); inside
    a layer, steps sort by their module and by the canonical names and
    volumes of their incoming edges — so interchangeable twins receive
    interchangeable names and the signature is stable.  Edges carry their
    data *count* (identifiers are allocation artefacts); pass
    ``include_data_counts=False`` to compare pure wiring.

    Returns a pair ``(step labels, edges)`` suitable for equality checks
    and hashing.
    """
    graph = run.graph
    canon: Dict[str, str] = {INPUT: INPUT, OUTPUT: OUTPUT}
    counter = 0
    for layer in nx.topological_generations(graph):
        def key(step_id: str) -> Tuple:
            incoming = sorted(
                (
                    canon.get(src, "?"),
                    len(payload) if include_data_counts else 0,
                )
                for src, _dst, payload in graph.in_edges(step_id, data="data")
            )
            return (run.module_of(step_id), tuple(incoming))

        for step_id in sorted(
            (s for s in layer if s not in (INPUT, OUTPUT)), key=key
        ):
            counter += 1
            canon[step_id] = "c%d:%s" % (counter, run.module_of(step_id))
    labels = tuple(sorted(canon[s.step_id] for s in run.steps()))
    edges = tuple(sorted(
        (
            canon[src],
            canon[dst],
            len(payload) if include_data_counts else 0,
        )
        for src, dst, payload in graph.edges(data="data")
    ))
    return labels, edges


def runs_equivalent(
    first: WorkflowRun,
    second: WorkflowRun,
    include_data_counts: bool = True,
) -> bool:
    """Whether two runs are identical up to step/data renaming."""
    if first.spec != second.spec:
        return False
    return canonical_signature(first, include_data_counts) == \
        canonical_signature(second, include_data_counts)


def observed_iterations(
    run: WorkflowRun, spec: Optional[WorkflowSpec] = None
) -> Dict[Tuple[str, str], int]:
    """Loop iteration counts realised in a run.

    For each back edge of the specification, the iteration count is the
    number of executions of the loop header module.
    """
    spec = spec or run.spec
    iterations: Dict[Tuple[str, str], int] = {}
    for back_edge in spec.back_edges():
        _tail, header = back_edge
        executions = len(run.steps_of_module(header))
        if executions == 0:
            raise RunError(
                "run has no execution of loop header %r" % header
            )
        iterations[back_edge] = executions
    return iterations


def replay(
    reference: WorkflowRun,
    rng: Optional[random.Random] = None,
    params: Optional[ExecutionParams] = None,
    run_id: Optional[str] = None,
) -> SimulationResult:
    """Re-execute the reference run's specification with its loop counts.

    The result has the same step structure as the reference (verified by
    ``runs_equivalent(..., include_data_counts=False)`` in tests); data
    volumes follow ``params`` (default: the simulator defaults), so pin
    them to reproduce volumes too.
    """
    iterations = observed_iterations(reference)
    return simulate(
        reference.spec,
        params=params,
        rng=rng or random.Random(0),
        run_id=run_id or "%s-replay" % reference.run_id,
        iterations=iterations,
    )
