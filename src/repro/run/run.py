"""Workflow runs (Section II): DAGs of steps with data-labelled edges.

A run is a directed acyclic graph whose nodes are *steps* — each carrying a
unique step id and the module of which it is an execution (module labels
repeat when loops were unrolled) — plus the ``input``/``output`` endpoint
nodes.  Edges are labelled with the set of data identifiers passed from the
source step to the target step.  Every data object is produced by at most
one node (a step, or ``input`` for user-supplied objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

import networkx as nx

from ..core.errors import RunError
from ..core.spec import ENDPOINTS, INPUT, OUTPUT, WorkflowSpec


@dataclass(frozen=True)
class Step:
    """One execution of a module within a run."""

    step_id: str
    module: str

    def __str__(self) -> str:
        return "%s:%s" % (self.step_id, self.module)


class WorkflowRun:
    """A mutable run graph, validated on demand with :meth:`validate`.

    Parameters
    ----------
    spec:
        The specification this run executes (used for consistency checks
        and kept for provenance reasoning).
    run_id:
        Unique identifier of the run.
    """

    def __init__(self, spec: WorkflowSpec, run_id: str = "run") -> None:
        self.spec = spec
        self.run_id = run_id
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from([INPUT, OUTPUT])
        self._steps: Dict[str, Step] = {}
        self._producer: Dict[str, str] = {}  # data id -> producing node

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_step(self, step_id: str, module: str) -> Step:
        """Register a step executing ``module``."""
        if step_id in self._steps or step_id in ENDPOINTS:
            raise RunError("duplicate or reserved step id %r" % step_id)
        if module not in self.spec.modules:
            raise RunError(
                "step %r executes unknown module %r" % (step_id, module)
            )
        step = Step(step_id=step_id, module=module)
        self._steps[step_id] = step
        self._graph.add_node(step_id)
        return step

    def add_edge(self, src: str, dst: str, data_ids: Iterable[str]) -> None:
        """Record that ``src`` passed ``data_ids`` to ``dst``.

        ``src`` may be ``input`` (user-supplied data); ``dst`` may be
        ``output`` (final results).  Adding to an existing edge unions the
        data sets.  Each data object must keep a single producer.
        """
        if src != INPUT and src not in self._steps:
            raise RunError("unknown source step %r" % src)
        if dst != OUTPUT and dst not in self._steps:
            raise RunError("unknown target step %r" % dst)
        if src == dst:
            raise RunError("run edges cannot be self-loops (%r)" % src)
        ids = frozenset(data_ids)
        if not ids:
            raise RunError("edge (%r, %r) must carry at least one data id" % (src, dst))
        for data_id in ids:
            previous = self._producer.get(data_id)
            if previous is None:
                self._producer[data_id] = src
            elif previous != src:
                raise RunError(
                    "data %r produced by both %r and %r" % (data_id, previous, src)
                )
        if self._graph.has_edge(src, dst):
            existing: Set[str] = self._graph.edges[src, dst]["data"]
            existing.update(ids)
        else:
            self._graph.add_edge(src, dst, data=set(ids))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    def steps(self) -> List[Step]:
        """All steps, ordered by step id."""
        return [self._steps[s] for s in sorted(self._steps)]

    def step(self, step_id: str) -> Step:
        """Look up one step."""
        try:
            return self._steps[step_id]
        except KeyError:
            raise RunError("unknown step %r" % step_id) from None

    def module_of(self, step_id: str) -> str:
        """The module a step executes (``input``/``output`` map to themselves)."""
        if step_id in ENDPOINTS:
            return step_id
        return self.step(step_id).module

    def steps_of_module(self, module: str) -> List[str]:
        """Step ids that execute ``module`` (several when loops unrolled)."""
        return sorted(s.step_id for s in self._steps.values() if s.module == module)

    def num_steps(self) -> int:
        """Number of steps (excluding input/output nodes)."""
        return len(self._steps)

    def num_edges(self) -> int:
        """Number of edges in the run graph."""
        return self._graph.number_of_edges()

    def edges(self) -> Iterator[Tuple[str, str, FrozenSet[str]]]:
        """Iterate ``(src, dst, data_ids)`` triples."""
        for src, dst, payload in self._graph.edges(data="data"):
            yield src, dst, frozenset(payload)

    def edge_data(self, src: str, dst: str) -> FrozenSet[str]:
        """Data ids carried by one edge."""
        try:
            return frozenset(self._graph.edges[src, dst]["data"])
        except KeyError:
            raise RunError("no edge (%r, %r) in run" % (src, dst)) from None

    def data_ids(self) -> Set[str]:
        """All data identifiers appearing in the run."""
        return set(self._producer)

    def producer(self, data_id: str) -> str:
        """The node (step id or ``input``) that produced ``data_id``."""
        try:
            return self._producer[data_id]
        except KeyError:
            raise RunError("unknown data id %r" % data_id) from None

    def consumers(self, data_id: str) -> List[str]:
        """Nodes that received ``data_id`` over some edge."""
        src = self.producer(data_id)
        return sorted(
            dst
            for _s, dst, payload in self._graph.out_edges(src, data="data")
            if data_id in payload
        )

    def inputs_of(self, step_id: str) -> Set[str]:
        """Union of data ids on incoming edges of a node."""
        self._require_node(step_id)
        inputs: Set[str] = set()
        for _src, _dst, payload in self._graph.in_edges(step_id, data="data"):
            inputs |= payload
        return inputs

    def outputs_of(self, step_id: str) -> Set[str]:
        """Union of data ids on outgoing edges of a node."""
        self._require_node(step_id)
        outputs: Set[str] = set()
        for _src, _dst, payload in self._graph.out_edges(step_id, data="data"):
            outputs |= payload
        return outputs

    def user_inputs(self) -> Set[str]:
        """Data supplied through the ``input`` node."""
        return self.outputs_of(INPUT)

    def final_outputs(self) -> Set[str]:
        """Data flowing into the ``output`` node — the run's results."""
        return self.inputs_of(OUTPUT)

    def _require_node(self, node: str) -> None:
        if node not in self._graph:
            raise RunError("unknown run node %r" % node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "WorkflowRun(run_id=%r, steps=%d, edges=%d, data=%d)" % (
            self.run_id,
            self.num_steps(),
            self.num_edges(),
            len(self._producer),
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants of a run graph.

        Raises :class:`RunError` if the graph is cyclic, a node is not on an
        ``input``-to-``output`` path, or an edge's modules are not connected
        in the specification.
        """
        # Hand-rolled Kahn/BFS over the adjacency mappings: validate() runs
        # once per ingested run, and the generic graph-algorithm machinery
        # dominated ingestion profiles at these graph sizes.
        succ = self._graph.succ
        pred = self._graph.pred
        indegree = {node: len(pred[node]) for node in self._graph}
        ready = [node for node, degree in indegree.items() if degree == 0]
        visited = 0
        while ready:
            node = ready.pop()
            visited += 1
            for nxt in succ[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if visited != len(indegree):
            raise RunError("run graph must be acyclic (loops are unrolled)")
        reach = {INPUT}
        frontier = [INPUT]
        while frontier:
            for nxt in succ[frontier.pop()]:
                if nxt not in reach:
                    reach.add(nxt)
                    frontier.append(nxt)
        coreach = {OUTPUT}
        frontier = [OUTPUT]
        while frontier:
            for prv in pred[frontier.pop()]:
                if prv not in coreach:
                    coreach.add(prv)
                    frontier.append(prv)
        for node in self._graph.nodes:
            if node not in reach:
                raise RunError("run node %r unreachable from input" % node)
            if node not in coreach:
                raise RunError("run node %r cannot reach output" % node)
        for src, dst in self._graph.edges:
            src_mod = self.module_of(src)
            dst_mod = self.module_of(dst)
            if not self.spec.has_edge(src_mod, dst_mod):
                raise RunError(
                    "run edge (%r, %r) has no specification edge (%r, %r)"
                    % (src, dst, src_mod, dst_mod)
                )

    # ------------------------------------------------------------------
    # Statistics (used by the Table II workload report)
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Size statistics of the run."""
        return {
            "steps": self.num_steps(),
            "edges": self.num_edges(),
            "data": len(self._producer),
            "user_inputs": len(self.user_inputs()),
            "final_outputs": len(self.final_outputs()),
        }
