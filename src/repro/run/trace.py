"""Portable event-log files: the system-agnostic ingestion format.

The paper stresses that its approach "can be used in any workflow system
that provides basic log-like information, whether ... provided as a file
or stored in a DBMS".  This module defines that file format for the
reproduction: JSON Lines, one event per line, with a header record
identifying the run.  Any workflow engine that can emit these five event
kinds — ``user_input``, ``start``, ``read``, ``write``, ``final_output``
— can feed the provenance warehouse.

Example file::

    {"kind": "header", "run_id": "r1", "format": 1}
    {"kind": "user_input", "time": 1, "data_id": "d1", "who": "alice"}
    {"kind": "start", "time": 2, "step_id": "S1", "module": "align"}
    {"kind": "read", "time": 3, "step_id": "S1", "data_id": "d1"}
    {"kind": "write", "time": 4, "step_id": "S1", "data_id": "d2"}
    {"kind": "final_output", "time": 5, "data_id": "d2"}
"""

from __future__ import annotations

import json
from typing import Dict, TextIO, Union

from ..core.errors import RunError
from .log import (
    Event,
    EventLog,
    FinalOutputEvent,
    ReadEvent,
    StartEvent,
    UserInputEvent,
    WriteEvent,
)

#: Version stamp written into the header record.
TRACE_FORMAT = 1


def _event_to_record(event: Event) -> Dict[str, object]:
    record: Dict[str, object] = {"kind": event.kind, "time": event.time}
    if isinstance(event, StartEvent):
        record.update(step_id=event.step_id, module=event.module)
    elif isinstance(event, (ReadEvent, WriteEvent)):
        record.update(step_id=event.step_id, data_id=event.data_id)
    elif isinstance(event, UserInputEvent):
        record.update(data_id=event.data_id, who=event.who)
    elif isinstance(event, FinalOutputEvent):
        record.update(data_id=event.data_id)
    else:  # pragma: no cover - exhaustive over the Event union
        raise RunError("unknown event kind %r" % event.kind)
    return record


def _record_to_event(record: Dict[str, object]) -> Event:
    kind = record.get("kind")
    time = int(record["time"])  # type: ignore[arg-type]
    try:
        if kind == "start":
            return StartEvent(time, str(record["step_id"]),
                              str(record["module"]))
        if kind == "read":
            return ReadEvent(time, str(record["step_id"]),
                             str(record["data_id"]))
        if kind == "write":
            return WriteEvent(time, str(record["step_id"]),
                              str(record["data_id"]))
        if kind == "user_input":
            return UserInputEvent(time, str(record["data_id"]),
                                  str(record.get("who", "user")))
        if kind == "final_output":
            return FinalOutputEvent(time, str(record["data_id"]))
    except KeyError as missing:
        raise RunError(
            "trace record %r lacks field %s" % (record, missing)
        ) from None
    raise RunError("unknown trace event kind %r" % kind)


def write_trace(log: EventLog, sink: Union[str, TextIO]) -> None:
    """Write a log as JSON Lines (to a path or an open text file)."""
    if isinstance(sink, str):
        with open(sink, "w") as handle:
            write_trace(log, handle)
        return
    header = {"kind": "header", "run_id": log.run_id, "format": TRACE_FORMAT}
    sink.write(json.dumps(header) + "\n")
    for event in log:
        sink.write(json.dumps(_event_to_record(event)) + "\n")


def read_trace(source: Union[str, TextIO]) -> EventLog:
    """Parse a JSON Lines trace back into an :class:`EventLog`.

    Events must be in non-decreasing time order (the :class:`EventLog`
    invariant); the header record is required and must carry a supported
    format version.
    """
    if isinstance(source, str):
        with open(source) as handle:
            return read_trace(handle)
    lines = [line.strip() for line in source if line.strip()]
    if not lines:
        raise RunError("empty trace")
    header = json.loads(lines[0])
    if header.get("kind") != "header":
        raise RunError("trace must start with a header record")
    if header.get("format") != TRACE_FORMAT:
        raise RunError(
            "unsupported trace format %r (expected %d)"
            % (header.get("format"), TRACE_FORMAT)
        )
    log = EventLog(run_id=str(header.get("run_id", "run")))
    for line in lines[1:]:
        log.append(_record_to_event(json.loads(line)))
    return log


def trace_round_trip_equal(first: EventLog, second: EventLog) -> bool:
    """Whether two logs describe the same event sequence."""
    return first.run_id == second.run_id and \
        list(first.events()) == list(second.events())
