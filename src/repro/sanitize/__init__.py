"""Opt-in concurrency sanitizer for the serving stack (``REPRO_SANITIZE=1``).

PR 6 made the warehouse and reasoner genuinely concurrent, and every one of
its headline bugfixes — SQLite thread affinity, the bulk-pragma leak, the
invalidate-vs-in-flight-build cache race — was a concurrency hazard found
by hand.  This package turns that auditing into *tooling* with two sides:

**Dynamic (this package).**  When the sanitizer is enabled (environment
variable ``REPRO_SANITIZE=1``, or :func:`enable` from tests), every lock
created through :func:`make_lock` becomes an :class:`InstrumentedLock`
that records the global lock-acquisition-order graph
(:class:`LockOrderGraph`) with cycle detection — a potential deadlock is
reported as a :class:`SanitizerFinding` carrying *both* acquisition
stacks.  Shared structures declared through :func:`guard` are wrapped in
:class:`GuardedState` proxies that verify every access happens while the
declared guard is held.  Violations accumulate in the process-wide
:class:`SanitizerReport` (:func:`report`) and tick ``san.*`` counters in
the metrics registry, so CI can assert "zero findings" after a stress run.

**Schedule fuzzing.**  Instrumented yield points (:data:`YIELD_SITES`,
fired through :func:`yield_point`) let a
:class:`~repro.sanitize.fuzzer.ScheduleFuzzer` deterministically explore
thread interleavings by injecting seeded pauses via
:meth:`repro.faults.FaultPlan.yield_at` — the harness that re-derives
PR 6's invalidate-vs-build race when its generation-token fix is removed.

**Static.**  The companion lint layer (``repro.lint.rules_source``, rules
``SRC050``–``SRC057``, ``zoom lint --source``) flags the same hazard
classes at the source level, without running anything.

This package is import-time stdlib-only (the metrics registry is reached
lazily), so :mod:`repro.obs`, :mod:`repro.faults` and every warehouse
backend can depend on it without cycles.

When the sanitizer is *disabled* (the default), :func:`make_lock` returns
plain :class:`threading.Lock`/:class:`threading.RLock` objects and
:func:`guard` returns its argument unchanged — production pays nothing.
"""

from .fuzzer import FuzzOutcome, FuzzResult, ScheduleFuzzer
from .guards import GuardedState, guard
from .locks import InstrumentedLock, make_lock
from .order import LockOrderGraph
from .report import SanitizerFinding, SanitizerReport
from .state import (
    YIELD_SITES,
    Sanitizer,
    assert_unlocked,
    clear_schedule,
    enable,
    enabled,
    get_sanitizer,
    held_locks,
    install_schedule,
    report,
    reset,
    yield_point,
)

__all__ = [
    "FuzzOutcome",
    "FuzzResult",
    "GuardedState",
    "InstrumentedLock",
    "LockOrderGraph",
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "ScheduleFuzzer",
    "YIELD_SITES",
    "assert_unlocked",
    "clear_schedule",
    "enable",
    "enabled",
    "get_sanitizer",
    "guard",
    "held_locks",
    "install_schedule",
    "make_lock",
    "report",
    "reset",
    "yield_point",
]
