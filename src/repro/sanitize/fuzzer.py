"""Deterministic schedule fuzzing over the instrumented yield sites.

Races hide in *interleavings*, and interleavings under a free-running
scheduler are unrepeatable.  The :class:`ScheduleFuzzer` makes them a
seeded search space instead: each candidate schedule is a
:class:`repro.faults.FaultPlan` carrying ``yield_at`` entries — "on the
N-th pass of yield site S, pause for D seconds" — installed process-wide
(:func:`~repro.sanitize.state.install_schedule`) while a caller-supplied
scenario runs.  Pausing one thread inside a race window (for example
between :meth:`BoundedCache.get_or_build`'s factory call and its publish)
stretches the window from microseconds to milliseconds, so the other
side of the race lands inside it reliably.

Everything derives from one integer seed: the same seed explores the same
schedules in the same order, so a failure is re-runnable by seed and
schedule index alone — the property the acceptance test uses to re-derive
PR 6's invalidate-vs-build race once the generation-token fix is removed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .state import YIELD_SITES, clear_schedule, install_schedule

#: Pause lengths (seconds) a schedule may assign to a yield point.  Zero
#: is a bare GIL yield; the longer pauses hold a thread inside a race
#: window long enough for the other side to land deterministically.
DEFAULT_DURATIONS: Tuple[float, ...] = (0.0, 0.002, 0.01, 0.04)

#: A scenario runs once under one installed schedule and returns a failure
#: description (e.g. "stale value served") or ``None`` when it held.
Scenario = Callable[["object"], Optional[str]]


@dataclass(frozen=True)
class FuzzOutcome:
    """What one schedule did: its index, the injected yields, the verdict."""

    schedule: int
    yields: Tuple[Tuple[str, int, float], ...]
    fired: Tuple[str, ...]
    failure: Optional[str]


@dataclass
class FuzzResult:
    """All outcomes of one :meth:`ScheduleFuzzer.run` sweep."""

    seed: int
    outcomes: List[FuzzOutcome] = field(default_factory=list)

    def failures(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def found(self) -> bool:
        return bool(self.failures())

    def first_failure(self) -> Optional[FuzzOutcome]:
        failures = self.failures()
        return failures[0] if failures else None

    def summary(self) -> str:
        failures = self.failures()
        lines = [
            "schedule %d (%s): %s"
            % (o.schedule,
               ", ".join("%s@%d+%.3fs" % y for y in o.yields),
               o.failure)
            for o in failures
        ]
        lines.append(
            "%d/%d schedule(s) failed (seed %d)"
            % (len(failures), len(self.outcomes), self.seed)
        )
        return "\n".join(lines)


class ScheduleFuzzer:
    """Seeded exploration of yield-point interleavings.

    Parameters
    ----------
    seed:
        Everything — which sites pause, on which hit, for how long — is a
        pure function of this seed.
    schedules:
        How many candidate schedules one :meth:`run` sweep tries (the
        "seed budget" of the acceptance criterion).
    sites:
        Yield sites eligible for pauses (default: all instrumented sites).
    max_yields / max_hit:
        At most this many pauses per schedule, each on a hit number in
        ``[1, max_hit]`` of its site.
    durations:
        Pause lengths to draw from.
    """

    def __init__(
        self,
        seed: int = 0,
        schedules: int = 24,
        sites: Sequence[str] = YIELD_SITES,
        max_yields: int = 3,
        max_hit: int = 4,
        durations: Sequence[float] = DEFAULT_DURATIONS,
    ) -> None:
        if schedules < 1:
            raise ValueError("schedules must be >= 1, got %d" % schedules)
        if not sites:
            raise ValueError("at least one yield site is required")
        self.seed = seed
        self.schedules = schedules
        self.sites = tuple(sites)
        self.max_yields = max(1, max_yields)
        self.max_hit = max(1, max_hit)
        self.durations = tuple(durations)

    def plan_for(self, index: int) -> "object":
        """The ``index``-th schedule as a ready-to-install ``FaultPlan``."""
        from ..faults import FaultPlan  # lazy: keeps this package leaf-free

        rng = random.Random("%d/%d" % (self.seed, index))
        plan = FaultPlan()
        for _ in range(rng.randint(1, self.max_yields)):
            plan.yield_at(
                rng.choice(self.sites),
                hit=rng.randint(1, self.max_hit),
                duration=rng.choice(self.durations),
            )
        return plan

    def run(
        self,
        scenario: Scenario,
        stop_on_failure: bool = False,
    ) -> FuzzResult:
        """Run ``scenario`` under every schedule; collect the verdicts.

        The schedule is installed process-wide for the duration of each
        scenario call (and always cleared afterwards), so the scenario's
        worker threads hit the pauses without any plumbing.
        """
        result = FuzzResult(seed=self.seed)
        for index in range(self.schedules):
            plan = self.plan_for(index)
            # Snapshot before running: fired pauses are consumed from the
            # plan, and the outcome must record what was *injected*.
            yields = tuple(sorted(plan.scheduled_yields()))  # type: ignore[attr-defined]
            install_schedule(plan)
            try:
                failure = scenario(plan)
            finally:
                clear_schedule()
            result.outcomes.append(FuzzOutcome(
                schedule=index,
                yields=yields,
                fired=tuple(plan.fired),  # type: ignore[attr-defined]
                failure=failure,
            ))
            if failure is not None and stop_on_failure:
                break
        return result
