"""Guarded-state proxies: verify that accesses hold the declared lock.

A ``# guarded-by: <lock>`` comment (checked statically by lint rule
``SRC052``) documents which lock protects a field; :class:`GuardedState`
*enforces* the same contract at runtime.  Wrap the shared structure and
its guard — every proxied operation first checks that the calling thread
holds the guard, filing a ``guarded-state`` finding (with stack) when it
does not.  The underlying operation still runs, so a violating program
behaves exactly as before; the sanitizer observes, it does not mask.

``mode`` selects the contract:

``"rw"``
    every access needs the guard (default — e.g. ``BoundedCache._data``,
    ``SqliteWarehouse._all_readers``);
``"w"``
    only mutations need it — the contract of copy-on-write/lock-free-read
    structures such as the metric maps of
    :class:`~repro.obs.metrics.MetricsRegistry`, whose reads are
    deliberately lock-free (CPython dict reads are atomic) while every
    write happens under the registry lock.

Use :func:`guard` rather than the class: it returns the object unchanged
when the lock is not instrumented (sanitize mode off), so production
call sites carry zero overhead.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, TypeVar, cast

from .locks import InstrumentedLock
from .report import KIND_GUARDED_STATE, SanitizerFinding
from .state import _capture_stack, get_sanitizer

T = TypeVar("T")

#: Method names that mutate the wrapped container.
_MUTATORS = frozenset({
    "append", "add", "insert", "extend", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
})


class GuardedState:
    """Attribute/item proxy that checks the guard before delegating."""

    __slots__ = ("_gs_obj", "_gs_lock", "_gs_name", "_gs_mode")

    def __init__(
        self,
        obj: object,
        lock: InstrumentedLock,
        name: str,
        mode: str = "rw",
    ) -> None:
        if mode not in ("rw", "w"):
            raise ValueError("GuardedState mode must be 'rw' or 'w', got %r" % mode)
        object.__setattr__(self, "_gs_obj", obj)
        object.__setattr__(self, "_gs_lock", lock)
        object.__setattr__(self, "_gs_name", name)
        object.__setattr__(self, "_gs_mode", mode)

    # -- verification --------------------------------------------------

    def _gs_verify(self, operation: str, mutating: bool) -> None:
        if self._gs_mode == "w" and not mutating:
            return
        lock: InstrumentedLock = self._gs_lock
        if lock.held_by_current_thread():
            return
        sanitizer = get_sanitizer()
        if sanitizer is None:
            return
        sanitizer.report.add(SanitizerFinding(
            kind=KIND_GUARDED_STATE,
            subject=self._gs_name,
            message=(
                "%s of %r without holding its guard %r"
                % ("mutation (%s)" % operation if mutating
                   else "read (%s)" % operation,
                   self._gs_name, lock.name)
            ),
            stack=_capture_stack(),
            thread=threading.current_thread().name,
        ))

    # -- delegation ----------------------------------------------------

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._gs_obj, attr)
        if callable(value):
            mutating = attr in _MUTATORS

            def checked(*args: Any, **kwargs: Any) -> Any:
                self._gs_verify(attr, mutating)
                return value(*args, **kwargs)

            return checked
        self._gs_verify(attr, False)
        return value

    def __getitem__(self, key: Any) -> Any:
        self._gs_verify("__getitem__", False)
        return self._gs_obj[key]  # type: ignore[index]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._gs_verify("__setitem__", True)
        self._gs_obj[key] = value  # type: ignore[index]

    def __delitem__(self, key: Any) -> None:
        self._gs_verify("__delitem__", True)
        del self._gs_obj[key]  # type: ignore[attr-defined]

    def __contains__(self, key: Any) -> bool:
        self._gs_verify("__contains__", False)
        return key in self._gs_obj  # type: ignore[operator]

    def __len__(self) -> int:
        self._gs_verify("__len__", False)
        return len(self._gs_obj)  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[Any]:
        self._gs_verify("__iter__", False)
        return iter(self._gs_obj)  # type: ignore[call-overload]

    def __bool__(self) -> bool:
        self._gs_verify("__bool__", False)
        return bool(self._gs_obj)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return "<GuardedState %s guard=%s %r>" % (
            self._gs_name, self._gs_lock.name, self._gs_obj,
        )


def guard(obj: T, lock: object, name: str, mode: str = "rw") -> T:
    """Wrap ``obj`` in a :class:`GuardedState` when ``lock`` is instrumented.

    With a plain lock (sanitize mode off) the object is returned as-is.
    The cast keeps call sites typed as the underlying container.
    """
    if isinstance(lock, InstrumentedLock):
        return cast(T, GuardedState(obj, lock, name, mode=mode))
    return obj
