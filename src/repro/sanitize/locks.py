"""Instrumented drop-in lock wrappers and the :func:`make_lock` factory.

Every lock in the serving stack is created through :func:`make_lock`
(``repro.obs``, ``repro.serve``, the warehouse backends, ``repro.faults``).
Outside sanitize mode the factory returns the plain
:class:`threading.Lock`/:class:`threading.RLock` it always did; under
``REPRO_SANITIZE=1`` it returns an :class:`InstrumentedLock` that

* feeds every acquisition into the global lock-order graph (potential
  deadlocks are reported with both acquisition stacks),
* tracks per-thread ownership so :class:`~repro.sanitize.guards.GuardedState`
  can verify guarded accesses, and
* turns a guaranteed self-deadlock (re-acquiring a non-recursive lock the
  thread already holds) into a finding plus ``RuntimeError`` instead of a
  silent hang.
"""

from __future__ import annotations

import threading
from typing import Any

from .state import get_sanitizer


class InstrumentedLock:
    """A :class:`threading.Lock`/`RLock` stand-in that reports to the
    sanitizer.  API-compatible with the subset the codebase uses:
    ``acquire``/``release``, the context-manager protocol and ``locked``.
    """

    __slots__ = ("name", "recursive", "_inner", "_depth")

    def __init__(self, name: str, recursive: bool = False) -> None:
        self.name = name
        self.recursive = recursive
        # The real lock under the instrumentation; acquired bare (never
        # via `with`) because this class IS the context manager.
        # provlint: ignore=SRC054,SRC057
        self._inner = threading.RLock() if recursive else threading.Lock()
        self._depth = threading.local()

    def _held_depth(self) -> int:
        return getattr(self._depth, "count", 0)

    def held_by_current_thread(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return self._held_depth() > 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sanitizer = get_sanitizer()
        first = self._held_depth() == 0
        if sanitizer is not None and first:
            sanitizer.before_acquire(self)
        if not first and not self.recursive:
            # Blocking here would hang forever; report and fail fast so
            # the offending test finishes with a diagnosable error.
            if sanitizer is not None:
                sanitizer.self_deadlock(self)
            raise RuntimeError(
                "self-deadlock: lock %r re-acquired by its holder" % self.name
            )
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._depth.count = self._held_depth() + 1
            if sanitizer is not None and first:
                sanitizer.pushed(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        depth = self._held_depth() - 1
        self._depth.count = depth
        if depth == 0:
            sanitizer = get_sanitizer()
            if sanitizer is not None:
                sanitizer.popped(self)

    def locked(self) -> bool:
        """Best effort: held by *someone* (exact for non-recursive locks)."""
        if not self.recursive:
            return self._inner.locked()  # type: ignore[union-attr]
        return self._held_depth() > 0

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return "<InstrumentedLock %s recursive=%s depth=%d>" % (
            self.name, self.recursive, self._held_depth(),
        )


def make_lock(name: str, recursive: bool = False) -> Any:
    """A named lock: instrumented under sanitize mode, plain otherwise.

    The decision is taken at *creation* time, so long-lived objects built
    before :func:`~repro.sanitize.state.enable` stay uninstrumented —
    enable the sanitizer first, then construct the objects under test.
    Returns ``Any`` because the two shapes share only the lock protocol.
    """
    if get_sanitizer() is not None:
        return InstrumentedLock(name, recursive=recursive)
    # provlint: ignore=SRC057
    return threading.RLock() if recursive else threading.Lock()
