"""The global lock-acquisition-order graph with cycle detection.

Every time an :class:`~repro.sanitize.locks.InstrumentedLock` is acquired
while the acquiring thread already holds another instrumented lock, the
ordered pair ``(held, acquired)`` becomes an edge in this graph, stamped
with the acquisition stack that first observed it.  A new edge that closes
a cycle — some other thread (or code path) acquires the same locks in the
opposite order — is a *potential deadlock*: neither execution has to hang
for the hazard to be real, which is exactly why a sanitizer beats testing.

The finding carries both stacks: the one that recorded the conflicting
(reverse-path) edge and the one closing the cycle now.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .report import KIND_LOCK_ORDER, SanitizerFinding


class LockOrderGraph:
    """Directed graph over lock names; an edge ``a -> b`` means "``b`` was
    acquired while ``a`` was held"."""

    def __init__(self) -> None:
        # Internal bookkeeping lock; deliberately a raw lock so observing
        # the graph can never feed back into the graph itself.
        self._lock = threading.Lock()  # provlint: ignore=SRC057
        #: edge -> example acquisition stack (first observation wins).
        self._edges: Dict[Tuple[str, str], str] = {}

    def edges(self) -> List[Tuple[str, str]]:
        """Every observed ordered pair, sorted for stable assertions."""
        with self._lock:
            return sorted(self._edges)

    def edge_stack(self, held: str, acquired: str) -> Optional[str]:
        """The stack that first recorded ``(held, acquired)``, if any."""
        with self._lock:
            return self._edges.get((held, acquired))

    def observe(
        self, held: str, acquired: str, stack: str, thread: str
    ) -> Optional[SanitizerFinding]:
        """Record ``acquired``-while-holding-``held``; report new cycles.

        Returns a lock-order finding when this edge closes a cycle that no
        earlier observation already reported, ``None`` otherwise.
        """
        if held == acquired:
            return None
        with self._lock:
            known = (held, acquired) in self._edges
            if not known:
                self._edges[(held, acquired)] = stack
                path = self._path(acquired, held)
            else:
                path = None
        if known or path is None:
            return None
        # ``path`` runs acquired -> ... -> held; together with the new
        # edge held -> acquired it forms the cycle.  Show the stack of the
        # first reverse edge as the conflicting acquisition.
        reverse_edge = (path[0], path[1])
        other = self.edge_stack(*reverse_edge) or ""
        chain = " -> ".join([held, acquired] + path[1:])
        return SanitizerFinding(
            kind=KIND_LOCK_ORDER,
            subject="%s <-> %s" % (held, acquired),
            message=(
                "potential deadlock: %r acquired while holding %r, but the"
                " opposite order %s was also observed" % (acquired, held, chain)
            ),
            stack=stack,
            other_stack=other,
            thread=thread,
        )

    # -- internals (call with self._lock held) -------------------------

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """A directed path ``start -> ... -> goal`` over recorded edges,
        excluding the just-added edge's reverse; ``None`` when absent."""
        adjacency: Dict[str, List[str]] = {}
        for a, b in self._edges:
            adjacency.setdefault(a, []).append(b)
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for succ in adjacency.get(node, ()):
                if succ == goal:
                    return path + [succ]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None
