"""Sanitizer findings and the thread-safe report they accumulate in.

A :class:`SanitizerFinding` is the dynamic analogue of a lint
:class:`~repro.lint.findings.Finding`: a stable ``kind`` (what hazard
class fired), the subject (a lock or guarded-state name), a message, and
the captured stack(s) proving the claim.  Findings are collected in a
:class:`SanitizerReport`; each addition ticks a ``san.<kind>`` counter in
the default metrics registry (reached lazily to keep this module
import-time stdlib-only).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The hazard classes the sanitizer reports.
KIND_LOCK_ORDER = "lock-order"
KIND_SELF_DEADLOCK = "self-deadlock"
KIND_GUARDED_STATE = "guarded-state"
KIND_LOCK_HELD = "lock-held"

KINDS = (KIND_LOCK_ORDER, KIND_SELF_DEADLOCK, KIND_GUARDED_STATE, KIND_LOCK_HELD)


@dataclass(frozen=True)
class SanitizerFinding:
    """One dynamic concurrency-hazard observation."""

    kind: str
    subject: str
    message: str
    #: Stack of the thread that triggered the finding.
    stack: str = ""
    #: For lock-order findings: the earlier, conflicting acquisition stack.
    other_stack: str = ""
    thread: str = ""

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "subject": self.subject,
            "message": self.message,
            "thread": self.thread,
        }
        if self.stack:
            payload["stack"] = self.stack
        if self.other_stack:
            payload["other_stack"] = self.other_stack
        return payload

    def __str__(self) -> str:
        return "san.%s [%s] %s" % (self.kind, self.subject, self.message)


@dataclass
class SanitizerReport:
    """Thread-safe accumulator of sanitizer findings.

    ``dedupe`` keeps the report readable under stress loads: the same
    (kind, subject, message) triple is recorded once, with a repeat count.
    """

    dedupe: bool = True
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _findings: List[SanitizerFinding] = field(default_factory=list, repr=False)
    _counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict, repr=False)

    def add(self, finding: SanitizerFinding) -> None:
        key = (finding.kind, finding.subject, finding.message)
        with self._lock:
            seen = self._counts.get(key, 0)
            self._counts[key] = seen + 1
            if seen and self.dedupe:
                fresh = False
            else:
                self._findings.append(finding)
                fresh = True
        if fresh:
            _count(finding.kind)

    def findings(self, kind: Optional[str] = None) -> List[SanitizerFinding]:
        with self._lock:
            found = list(self._findings)
        if kind is not None:
            found = [f for f in found if f.kind == kind]
        return found

    def __len__(self) -> int:
        with self._lock:
            return len(self._findings)

    def __bool__(self) -> bool:
        return len(self) > 0

    def counts(self) -> Dict[str, int]:
        """Total observations (including deduplicated repeats) per kind."""
        tally: Dict[str, int] = {}
        with self._lock:
            for (kind, _subject, _message), count in self._counts.items():
                tally[kind] = tally.get(kind, 0) + count
        return tally

    def clear(self) -> None:
        with self._lock:
            self._findings.clear()
            self._counts.clear()

    def summary(self) -> str:
        """One line per finding plus a per-kind tally."""
        found = self.findings()
        tally = self.counts()
        suffix = (
            " (%s)" % ", ".join("%s=%d" % (k, tally[k]) for k in sorted(tally))
            if tally
            else ""
        )
        lines = [str(f) for f in found]
        lines.append("%d sanitizer finding(s)%s" % (len(found), suffix))
        return "\n".join(lines)


def _count(kind: str) -> None:
    """Tick ``san.<kind>`` in the default registry (lazy import, no cycle)."""
    try:
        from ..obs import get_registry
    except ImportError:  # pragma: no cover — only during interpreter teardown
        return
    get_registry().counter("san.%s" % kind).increment()
