"""Process-wide sanitizer state: enablement, held-lock stacks, yield points.

The sanitizer is a singleton (:func:`get_sanitizer`) gated on the
``REPRO_SANITIZE`` environment variable; tests flip it programmatically
with :func:`enable` and wipe accumulated state with :func:`reset`.  The
:class:`Sanitizer` owns the per-thread held-lock stack, the global
:class:`~repro.sanitize.order.LockOrderGraph` and the
:class:`~repro.sanitize.report.SanitizerReport`.

Yield points (:func:`yield_point`) are the schedule fuzzer's hooks: cheap
no-ops until a schedule — typically a :class:`repro.faults.FaultPlan`
carrying ``yield_at`` entries — is installed with
:func:`install_schedule`.  They are independent of the sanitizer proper,
so interleavings can be fuzzed with or without guard verification.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import TYPE_CHECKING, List, Optional

from .order import LockOrderGraph
from .report import (
    KIND_LOCK_HELD,
    KIND_SELF_DEADLOCK,
    SanitizerFinding,
    SanitizerReport,
)

if TYPE_CHECKING:  # pragma: no cover — annotation-only
    from .locks import InstrumentedLock

#: Environment variable that opts the process into sanitize mode.
ENV_FLAG = "REPRO_SANITIZE"

#: Instrumented schedule-fuzzer yield sites.  ``cache.*`` bracket the
#: invalidate/repopulate race window inside
#: :meth:`repro.obs.BoundedCache.get_or_build`; ``serve.answer`` fires at
#: the top of the query service's per-request answer path.
YIELD_SITES = (
    "cache.get_or_build.factory",
    "cache.get_or_build.publish",
    "cache.invalidate",
    "serve.answer",
)

#: How many stack frames a captured acquisition stack retains.
_STACK_LIMIT = 16


def _capture_stack() -> str:
    """The current stack, trimmed of the sanitizer's own frames."""
    frames = traceback.format_stack(limit=_STACK_LIMIT)
    kept = [
        frame
        for frame in frames
        if ("repro/sanitize/" not in frame and "repro\\sanitize\\" not in frame)
    ]
    return "".join(kept)


class _HeldStack(threading.local):
    """Per-thread stack of currently-held instrumented locks."""

    def __init__(self) -> None:
        self.stack: List["InstrumentedLock"] = []


class Sanitizer:
    """Aggregates everything the dynamic side records for one process."""

    def __init__(self) -> None:
        self.graph = LockOrderGraph()
        self.report = SanitizerReport()
        self._held = _HeldStack()

    # -- held-lock bookkeeping (driven by InstrumentedLock) ------------

    def held(self) -> List["InstrumentedLock"]:
        """Locks the calling thread holds, outermost first."""
        return list(self._held.stack)

    def held_names(self) -> List[str]:
        return [lock.name for lock in self._held.stack]

    def before_acquire(self, lock: "InstrumentedLock") -> None:
        """Record the order edge (and hazards) before blocking on ``lock``."""
        stack = self._held.stack
        if not stack:
            return
        finding = self.graph.observe(
            stack[-1].name,
            lock.name,
            _capture_stack(),
            threading.current_thread().name,
        )
        if finding is not None:
            self.report.add(finding)

    def self_deadlock(self, lock: "InstrumentedLock") -> None:
        """A non-recursive lock re-acquired by its holder: certain deadlock."""
        self.report.add(SanitizerFinding(
            kind=KIND_SELF_DEADLOCK,
            subject=lock.name,
            message=(
                "non-recursive lock %r re-acquired by the thread already"
                " holding it" % lock.name
            ),
            stack=_capture_stack(),
            thread=threading.current_thread().name,
        ))

    def pushed(self, lock: "InstrumentedLock") -> None:
        self._held.stack.append(lock)

    def popped(self, lock: "InstrumentedLock") -> None:
        stack = self._held.stack
        # Out-of-order releases are legal (if unusual); remove wherever.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # -- assertions ----------------------------------------------------

    def assert_unlocked(self, site: str) -> bool:
        """File a finding when the calling thread holds any lock.

        Used by hot paths (e.g. metric recording in the serve workers)
        that must never run inside a critical section.  Returns whether
        the assertion held.
        """
        names = self.held_names()
        if not names:
            return True
        self.report.add(SanitizerFinding(
            kind=KIND_LOCK_HELD,
            subject=site,
            message="%s reached while holding lock(s): %s"
                    % (site, ", ".join(names)),
            stack=_capture_stack(),
            thread=threading.current_thread().name,
        ))
        return False


# ----------------------------------------------------------------------
# Module-level singleton and enablement
# ----------------------------------------------------------------------

_forced: Optional[bool] = None
_instance: Optional[Sanitizer] = None
_instance_lock = threading.Lock()  # provlint: ignore=SRC057


def enabled() -> bool:
    """Whether sanitize mode is on (forced flag beats the environment)."""
    if _forced is not None:
        return _forced
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def enable(flag: Optional[bool] = True) -> Optional[bool]:
    """Force sanitize mode on/off (``None`` restores the env default).

    Returns the previous forced value so tests can restore it.  Locks
    created while the sanitizer was off stay uninstrumented — enable
    first, then build the objects under test.
    """
    global _forced
    previous = _forced
    _forced = flag
    return previous


def get_sanitizer() -> Optional[Sanitizer]:
    """The process sanitizer, or ``None`` when sanitize mode is off."""
    if not enabled():
        return None
    global _instance
    if _instance is None:
        with _instance_lock:
            if _instance is None:
                _instance = Sanitizer()
    return _instance


def reset() -> None:
    """Drop all accumulated sanitizer state (graph, report, held stacks).

    Call between tests; locks created earlier keep reporting into the
    fresh instance because they resolve the singleton at acquire time.
    """
    global _instance
    with _instance_lock:
        _instance = None


def report() -> SanitizerReport:
    """The live report (an empty one when the sanitizer is off)."""
    sanitizer = get_sanitizer()
    if sanitizer is None:
        return SanitizerReport()
    return sanitizer.report


def held_locks() -> List[str]:
    """Names of instrumented locks the calling thread currently holds."""
    sanitizer = get_sanitizer()
    return [] if sanitizer is None else sanitizer.held_names()


def assert_unlocked(site: str) -> bool:
    """No-op when disabled; otherwise :meth:`Sanitizer.assert_unlocked`."""
    sanitizer = get_sanitizer()
    if sanitizer is None:
        return True
    return sanitizer.assert_unlocked(site)


# ----------------------------------------------------------------------
# Schedule-fuzzer yield points
# ----------------------------------------------------------------------

#: The installed schedule: any object with a ``hit(site)`` method —
#: in practice a :class:`repro.faults.FaultPlan` with ``yield_at`` entries.
_schedule: Optional[object] = None


def install_schedule(plan: object) -> None:
    """Route subsequent :func:`yield_point` calls through ``plan.hit``."""
    global _schedule
    _schedule = plan


def clear_schedule() -> None:
    global _schedule
    _schedule = None


def yield_point(site: str) -> None:
    """Fire an instrumented interleaving point (no-op without a schedule)."""
    plan = _schedule
    if plan is not None:
        plan.hit(site)  # type: ignore[attr-defined]
