"""Concurrent query serving over a provenance warehouse.

The paper's prototype answers one biologist at a time; this package turns
the reasoner into a small shared service: a pool of worker threads drains
a bounded request queue, each worker reads through the warehouse's
per-thread read-only connections (:class:`~repro.warehouse.sqlite.SqliteWarehouse`
hands every non-owner thread its own WAL-mode ``query_only`` connection),
and answers are memoised in a per-view result cache keyed on
``(run_id, view.presentation_key(), query kind, data_id)``.

* :class:`QueryService` — the service: ``start()``/``stop()`` (or use as a
  context manager), ``submit()`` for a :class:`~concurrent.futures.Future`,
  ``query()`` to block, ``warm()`` to pre-materialise runs and indexes on
  the owner thread, ``stats()`` for latency percentiles and QPS.
* :class:`ServiceError` / :class:`AdmissionError` — lifecycle and
  admission-control failures (``AdmissionError`` means the bounded queue
  was full; back off and retry).
* :data:`QUERY_KINDS` — the request vocabulary (``"deep"``, ``"reverse"``,
  ``"zoom"``).
"""

from .service import (
    QUERY_KINDS,
    AdmissionError,
    QueryService,
    ServiceError,
)

__all__ = [
    "QUERY_KINDS",
    "AdmissionError",
    "QueryService",
    "ServiceError",
]
