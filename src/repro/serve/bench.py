"""Shared serving-benchmark harness for the CLI and ``benchmarks/bench_serve.py``.

The workload models a lab of biologists hammering one warehouse: a mix of
deep provenance of each run's final output (UAdmin and UBio — the paper's
most expensive query, with a view switch), reverse provenance, and zoom
queries alternating between views.  Two phases run the *same* request
sequence through a :class:`~repro.serve.QueryService`:

``cold``
    fresh service, empty result cache — every answer is computed;
``hot``
    same service, same requests — every answer comes from the per-view
    result cache, which is the tentpole's headline claim (>= 5x).

Client threads pull requests off a shared work list and block on
:meth:`QueryService.query`, retrying briefly when admission control
rejects; per-request wall-clock latencies feed nearest-rank percentiles.
Any cross-thread :class:`sqlite3.ProgrammingError` is counted separately
and fails the run — that is exactly the bug the connection pool fixes.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.builder import build_user_view
from ..core.view import UserView, blackbox_view
from ..sanitize import make_lock
from ..warehouse.base import ProvenanceWarehouse
from ..warehouse.memory import InMemoryWarehouse
from ..warehouse.sqlite import SqliteWarehouse
from ..workloads.classes import RUN_CLASSES, WORKFLOW_CLASSES
from ..workloads.generator import generate_workflows
from ..workloads.runs import generate_run
from .service import AdmissionError, QueryService

#: Seed matching the benchmark conftest (ICDE 2008).
DEFAULT_SEED = 20080407

#: How long a client retries after an admission rejection before giving up.
_RETRY_SECONDS = 5.0


class RunHandle:
    """One stored run with everything a request generator needs."""

    __slots__ = ("run_id", "kind", "final_output", "some_input", "views")

    def __init__(
        self,
        run_id: str,
        kind: str,
        final_output: str,
        some_input: str,
        views: Dict[str, Optional[UserView]],
    ) -> None:
        self.run_id = run_id
        self.kind = kind
        self.final_output = final_output
        self.some_input = some_input
        self.views = views


def build_workload(
    backend: str = "sqlite",
    path: Optional[str] = None,
    kinds: Tuple[str, ...] = ("small", "medium", "large"),
    workflows_per_class: int = 1,
    seed: int = DEFAULT_SEED,
) -> Tuple[ProvenanceWarehouse, List[RunHandle]]:
    """Generate and store a serving workload; returns (warehouse, handles).

    One run per workflow class and run kind, each with UAdmin (``None``),
    UBio and UBlackbox views, so requests exercise genuine view switches.
    """
    rng = random.Random(seed)
    if backend == "sqlite":
        warehouse: ProvenanceWarehouse = SqliteWarehouse(path or ":memory:")
    elif backend == "memory":
        warehouse = InMemoryWarehouse()
    else:
        raise ValueError("unknown backend %r" % backend)
    handles: List[RunHandle] = []
    for _class_name, workflow_class in sorted(WORKFLOW_CLASSES.items()):
        for generated in generate_workflows(
            workflow_class, workflows_per_class, rng, target_size=20
        ):
            spec_id = warehouse.store_spec(generated.spec)
            views: Dict[str, Optional[UserView]] = {
                "uadmin": None,
                "ubio": build_user_view(
                    generated.spec, generated.suggested_relevant, name="UBio"
                ),
                "ublackbox": blackbox_view(generated.spec),
            }
            for kind in kinds:
                result = generate_run(
                    generated.spec,
                    RUN_CLASSES[kind],
                    rng,
                    run_id="%s-%s" % (generated.spec.name, kind),
                )
                run_id = warehouse.store_run(
                    result.run, spec_id, run_id=result.run.run_id
                )
                outputs = sorted(warehouse.final_outputs(run_id))
                inputs = sorted(result.run.user_inputs())
                handles.append(
                    RunHandle(
                        run_id=run_id,
                        kind=kind,
                        final_output=outputs[0],
                        some_input=inputs[0] if inputs else outputs[0],
                        views=views,
                    )
                )
    return warehouse, handles


def build_requests(
    handles: List[RunHandle],
    count: int,
    seed: int = DEFAULT_SEED,
    kinds: Tuple[str, ...] = ("small", "medium", "large"),
) -> List[Tuple[str, str, Optional[str], Optional[UserView]]]:
    """A deterministic mixed request sequence over the stored runs.

    Per draw: 40% deep provenance of the final output (half UAdmin, half
    UBio), 20% reverse provenance of an input, 40% zoom across the three
    views — roughly the interactive session of Section IV under load.
    """
    rng = random.Random(seed * 31 + count)
    pool = [h for h in handles if h.kind in kinds]
    if not pool:
        raise ValueError("no runs of kinds %s in the workload" % (kinds,))
    requests: List[Tuple[str, str, Optional[str], Optional[UserView]]] = []
    for _ in range(count):
        handle = rng.choice(pool)
        roll = rng.random()
        if roll < 0.2:
            requests.append(("deep", handle.run_id, handle.final_output, None))
        elif roll < 0.4:
            requests.append(
                ("deep", handle.run_id, handle.final_output, handle.views["ubio"])
            )
        elif roll < 0.6:
            requests.append(
                ("reverse", handle.run_id, handle.some_input, handle.views["ubio"])
            )
        else:
            view_name = rng.choice(["uadmin", "ubio", "ublackbox"])
            requests.append(("zoom", handle.run_id, None, handle.views[view_name]))
    return requests


def _drive(
    service: QueryService,
    requests: List[Tuple[str, str, Optional[str], Optional[UserView]]],
    client_threads: int,
) -> Dict[str, Any]:
    """Push every request through the service from ``client_threads`` clients."""
    cursor_lock = make_lock("bench.cursor")
    collect = make_lock("bench.collect")
    cursor = {"next": 0}             # guarded-by: cursor_lock
    latencies: List[float] = []      # guarded-by: collect
    errors: List[str] = []           # guarded-by: collect
    programming_errors = [0]         # guarded-by: collect
    retried = [0]                    # guarded-by: collect

    def client() -> None:
        local: List[float] = []
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(requests):
                    break
                cursor["next"] = index + 1
            kind, run_id, data_id, view = requests[index]
            started = time.perf_counter()
            deadline = started + _RETRY_SECONDS
            while True:
                try:
                    service.query(kind, run_id, data_id=data_id, view=view)
                except AdmissionError:
                    with collect:
                        retried[0] += 1
                    if time.perf_counter() > deadline:
                        with collect:
                            errors.append("admission retry budget exhausted")
                        break
                    time.sleep(0.001)
                    continue
                except sqlite3.ProgrammingError as exc:
                    with collect:
                        programming_errors[0] += 1
                        errors.append("ProgrammingError: %s" % exc)
                    break
                except Exception as exc:  # noqa: BLE001 - report, don't hang
                    with collect:
                        errors.append("%s: %s" % (type(exc).__name__, exc))
                    break
                else:
                    local.append(time.perf_counter() - started)
                    break
        with collect:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client, name="bench-client-%d" % i)
        for i in range(client_threads)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return {
        "latencies": latencies,
        "errors": errors,
        "programming_errors": programming_errors[0],
        "admission_retries": retried[0],
        "wall_seconds": wall,
    }


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _phase_summary(raw: Dict[str, Any], requests: int) -> Dict[str, Any]:
    ordered = sorted(raw["latencies"])
    wall = raw["wall_seconds"]
    return {
        "requests": requests,
        "completed": len(ordered),
        "errors": len(raw["errors"]),
        "programming_errors": raw["programming_errors"],
        "admission_retries": raw["admission_retries"],
        "wall_seconds": round(wall, 4),
        "qps": round(len(ordered) / wall, 2) if wall > 0 else 0.0,
        "mean_ms": round(sum(ordered) / len(ordered) * 1000.0, 3) if ordered else 0.0,
        "p50_ms": round(_percentile(ordered, 50) * 1000.0, 3),
        "p95_ms": round(_percentile(ordered, 95) * 1000.0, 3),
        "p99_ms": round(_percentile(ordered, 99) * 1000.0, 3),
    }


def run_serving_benchmark(
    backend: str = "sqlite",
    path: Optional[str] = None,
    kinds: Tuple[str, ...] = ("small", "medium", "large"),
    workflows_per_class: int = 1,
    requests: int = 200,
    workers: int = 4,
    client_threads: int = 8,
    queue_size: int = 64,
    strategy: str = "cached",
    seed: int = DEFAULT_SEED,
    warehouse: Optional[ProvenanceWarehouse] = None,
    handles: Optional[List[RunHandle]] = None,
) -> Dict[str, Any]:
    """Run the cold/hot two-phase benchmark; returns the JSON payload.

    Pass ``warehouse``/``handles`` to reuse a prebuilt workload (the CLI
    does, to serve an existing database); otherwise one is generated.
    """
    own_warehouse = warehouse is None
    if warehouse is None or handles is None:
        warehouse, handles = build_workload(
            backend=backend,
            path=path,
            kinds=kinds,
            workflows_per_class=workflows_per_class,
            seed=seed,
        )
    sequence = build_requests(handles, requests, seed=seed, kinds=kinds)
    service = QueryService(
        warehouse,
        strategy=strategy,
        workers=workers,
        queue_size=queue_size,
    )
    try:
        for handle in handles:
            service.warm(
                [handle.run_id],
                views=[v for v in handle.views.values() if v is not None],
            )
        with service:
            cold_raw = _drive(service, sequence, client_threads)
            hot_raw = _drive(service, sequence, client_threads)
        stats = service.stats()
    finally:
        service.close()
        if own_warehouse:
            close = getattr(warehouse, "close", None)
            if close is not None:
                close()
    cold = _phase_summary(cold_raw, len(sequence))
    hot = _phase_summary(hot_raw, len(sequence))
    speedup = (
        round(cold["mean_ms"] / hot["mean_ms"], 2) if hot["mean_ms"] > 0 else 0.0
    )
    return {
        "benchmark": "serve",
        "backend": backend,
        "strategy": strategy,
        "workers": workers,
        "client_threads": client_threads,
        "queue_size": queue_size,
        "requests_per_phase": len(sequence),
        "run_kinds": list(kinds),
        "workflows_per_class": workflows_per_class,
        "phases": {"cold": cold, "hot": hot},
        "hot_speedup": speedup,
        "sustained_qps": hot["qps"],
        "errors": cold["errors"] + hot["errors"],
        "error_samples": (cold_raw["errors"] + hot_raw["errors"])[:5],
        "programming_errors": cold["programming_errors"] + hot["programming_errors"],
        "service": {
            "latency_ms": stats["latency_ms"],
            "cache": stats["cache"],
            "rejected": stats["rejected"],
        },
    }


def smoke_params() -> Dict[str, Any]:
    """Reduced parameters for CI: small runs only, fewer requests."""
    return {
        "kinds": ("small",),
        "requests": 60,
        "workers": 4,
        "client_threads": 6,
        "workflows_per_class": 1,
    }
