"""The :class:`QueryService`: worker threads, admission control, result cache.

Design
------
One service owns:

* a bounded :class:`queue.Queue` of pending requests (admission control —
  a full queue rejects immediately instead of building unbounded backlog);
* ``workers`` daemon threads draining that queue.  Each worker calls the
  shared :class:`~repro.provenance.reasoner.ProvenanceReasoner`; reads on
  a :class:`~repro.warehouse.sqlite.SqliteWarehouse` go through the
  warehouse's per-thread read-only connections, so workers never touch
  the single write connection;
* a shared :class:`~repro.obs.BoundedCache` of finished answers keyed on
  ``(run_id, presentation_key, kind, data_id)`` where ``presentation_key``
  is :meth:`UserView.presentation_key` (``None`` for UAdmin).  The cache
  uses run-scoped generation tokens, so :meth:`invalidate_run` racing a
  slow in-flight build can never resurrect a stale answer.

Thread-affinity contract: workers only *read*.  Anything that writes —
building a lineage or label index, dropping one during invalidation — must
happen on the thread that created the warehouse.  :meth:`warm` exists
precisely for that: call it from the owner thread before :meth:`start`
when using the ``indexed``, ``labeled`` or ``auto`` strategies, so workers
find the index already built.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, Iterable, Optional, Tuple

from ..core.errors import ZoomError
from ..core.view import UserView
from ..obs import BoundedCache, get_registry
from ..obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from ..provenance.reasoner import ProvenanceReasoner
from ..sanitize import assert_unlocked, make_lock, yield_point
from ..warehouse.base import ProvenanceWarehouse

#: The request vocabulary.  ``deep`` and ``reverse`` are the paper's
#: provenance queries; ``zoom`` is the view-switch query (the visible data
#: of a run at a view's granularity — what the GUI redraws on every zoom).
QUERY_KINDS = ("deep", "reverse", "zoom")

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_SIZE = 128
DEFAULT_CACHE_SIZE = 4096

#: Queue handoff poll interval — lets workers notice shutdown promptly.
_POLL_SECONDS = 0.1


class ServiceError(ZoomError):
    """The service is in the wrong lifecycle state for the operation."""


class AdmissionError(ServiceError):
    """The request queue is full; the request was rejected, not queued."""


class _Request:
    """One queued query plus the future its answer resolves."""

    __slots__ = ("kind", "run_id", "data_id", "view", "future")

    def __init__(
        self,
        kind: str,
        run_id: str,
        data_id: Optional[str],
        view: Optional[UserView],
        future: "Future[Any]",
    ) -> None:
        self.kind = kind
        self.run_id = run_id
        self.data_id = data_id
        self.view = view
        self.future = future


class _ServeMetrics:
    """Cached handles to the service's hot-path metrics.

    Resolving a metric through the registry costs a lookup per call, and
    the worker loop records several metrics per request — so the service
    binds each handle once and reuses it.  A cheap identity check against
    the process-wide default registry keeps the handles honest when tests
    swap it with :func:`~repro.obs.set_registry`.
    """

    __slots__ = (
        "registry", "accepted", "rejected", "errors",
        "invalidations", "latency", "qps",
    )

    def __init__(self) -> None:
        self._bind(get_registry())

    def _bind(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.accepted: Counter = registry.counter("serve.accepted")
        self.rejected: Counter = registry.counter("serve.rejected")
        self.errors: Counter = registry.counter("serve.errors")
        self.invalidations: Counter = registry.counter("serve.invalidations")
        self.latency: Timer = registry.timer("serve.latency")
        self.qps: Gauge = registry.gauge("serve.qps")

    def current(self) -> "_ServeMetrics":
        registry = get_registry()
        if registry is not self.registry:
            self._bind(registry)
        return self


class QueryService:
    """A thread pool serving provenance queries with a shared result cache.

    Parameters
    ----------
    warehouse:
        The warehouse to read from.  Its write connection stays with the
        thread that created it; workers read through per-thread read-only
        connections (SQLite) or under the mutation lock (memory).
    reasoner:
        Share an existing reasoner (e.g. a session's) so both sides hit
        the same run/composite/closure caches; a fresh one is built from
        ``strategy`` when omitted.
    workers / queue_size / cache_size:
        Pool width, admission-control bound and result-cache capacity.
    """

    def __init__(
        self,
        warehouse: ProvenanceWarehouse,
        reasoner: Optional[ProvenanceReasoner] = None,
        strategy: str = "cached",
        workers: int = DEFAULT_WORKERS,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1, got %d" % queue_size)
        self.warehouse = warehouse
        self.reasoner = reasoner or ProvenanceReasoner(warehouse, strategy=strategy)
        self.workers = workers
        self._results: BoundedCache[Tuple, Any] = BoundedCache(
            cache_size, name="serve.results"
        )
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue(maxsize=queue_size)
        # Lock order (enforced by the sanitizer's lock-order graph, see
        # docs/sanitizer.md): ``_lifecycle`` strictly before ``_counts``.
        # No code path may acquire ``_lifecycle`` while holding
        # ``_counts`` — today neither is held while taking the other, and
        # the regression test pins the documented direction.
        self._lifecycle = make_lock("serve.lifecycle")
        self._counts = make_lock("serve.counts")
        self._threads: list = []             # guarded-by: _lifecycle
        self._running = False                # guarded-by: _lifecycle
        self._accepted = 0                   # guarded-by: _counts
        self._rejected = 0                   # guarded-by: _counts
        self._completed = 0                  # guarded-by: _counts
        self._started_at: Optional[float] = None  # guarded-by: _lifecycle
        self._elapsed = 0.0                  # guarded-by: _lifecycle
        self._metrics = _ServeMetrics()
        self.reasoner.add_invalidation_listener(self._on_run_invalidated)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "QueryService":
        """Spawn the worker threads; idempotent while running."""
        with self._lifecycle:
            if self._running:
                return self
            self._running = True
            self._started_at = time.perf_counter()
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name="zoom-serve-%d" % index,
                    daemon=True,
                )
                for index in range(self.workers)
            ]
            for thread in self._threads:
                thread.start()
        return self

    def stop(self) -> None:
        """Drain queued requests, then join the workers; idempotent."""
        with self._lifecycle:
            if not self._running:
                return
            self._running = False
            if self._started_at is not None:
                self._elapsed += time.perf_counter() - self._started_at
                self._started_at = None
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join()
        self._metrics.current().qps.set(self.qps())

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def close(self) -> None:
        """Stop and detach from the shared reasoner's invalidation fan-out."""
        self.stop()
        self.reasoner.remove_invalidation_listener(self._on_run_invalidated)

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: str,
        run_id: str,
        data_id: Optional[str] = None,
        view: Optional[UserView] = None,
    ) -> "Future[Any]":
        """Enqueue one query; returns a future resolving to its answer.

        Raises :class:`AdmissionError` without blocking when the bounded
        queue is full (the ``serve.rejected`` counter ticks), and
        :class:`ServiceError` when the service is not running.
        """
        if kind not in QUERY_KINDS:
            raise ServiceError(
                "unknown query kind %r (expected one of %s)" % (kind, list(QUERY_KINDS))
            )
        if kind in ("deep", "reverse") and data_id is None:
            raise ServiceError("%r queries need a data_id" % kind)
        if not self._running:
            raise ServiceError("service is not running; call start() first")
        future: "Future[Any]" = Future()
        request = _Request(kind, run_id, data_id, view, future)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._counts:
                self._rejected += 1
            self._metrics.current().rejected.increment()
            raise AdmissionError(
                "request queue full (%d pending); retry later" % self._queue.maxsize
            ) from None
        with self._counts:
            self._accepted += 1
        self._metrics.current().accepted.increment()
        return future

    def query(
        self,
        kind: str,
        run_id: str,
        data_id: Optional[str] = None,
        view: Optional[UserView] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(kind, run_id, data_id=data_id, view=view).result(
            timeout=timeout
        )

    # ------------------------------------------------------------------
    # Owner-thread preparation
    # ------------------------------------------------------------------

    def warm(
        self,
        run_ids: Iterable[str],
        views: Iterable[Optional[UserView]] = (),
    ) -> None:
        """Pre-materialise runs (and optionally composites) for serving.

        Must run on the warehouse's owner thread: under the ``indexed``,
        ``labeled`` and ``auto`` strategies this *builds* each run's
        persistent index (lineage closure or reachability labels), a
        write that workers' read-only connections would refuse.  Passing
        views additionally pre-builds each ``(run, view)`` composite so
        the first concurrent burst starts hot.
        """
        views = list(views)
        for run_id in run_ids:
            self.reasoner.ensure_run_ready(run_id)
            self.reasoner._materialize_run(run_id)
            for view in views:
                if view is not None:
                    self.reasoner.composite_run(run_id, view)

    def invalidate_run(self, run_id: str) -> None:
        """Drop everything cached about one run, serve cache included.

        Delegates to the reasoner, whose listener fan-out reaches this
        service's result cache (and any other service sharing the
        reasoner).  Call from the warehouse owner thread — dropping a
        persistent lineage or label index is a write.
        """
        self.reasoner.invalidate_run(run_id)

    def refresh_run(self, run_id: str) -> None:
        """Flip one run's cached answers to its next generation.

        The streaming counterpart of :meth:`invalidate_run`: a committed
        epoch grew the run, so cached answers are stale but the
        persistent lineage/label indexes — which the streaming ingestor
        already advanced — survive.  Safe from any thread: nothing here
        writes to the warehouse.  Readers racing the refresh get either
        the previous epoch's answer or the new one, never a torn mix —
        the generation bump stops a slow in-flight build from publishing
        a stale result after the refresh.
        """
        self.reasoner.refresh_run(run_id)
        self._metrics.current().registry.counter(
            "serve.refreshes"
        ).increment()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                request = self._queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue
            if request is None:
                return
            if not request.future.set_running_or_notify_cancel():
                continue
            started = time.perf_counter()
            metrics = self._metrics.current()
            try:
                value = self._answer(request)
            except BaseException as exc:  # noqa: BLE001 - future carries it
                metrics.errors.increment()
                request.future.set_exception(exc)
            else:
                request.future.set_result(value)
            finally:
                # Metric recording must never happen inside a critical
                # section — the sanitizer files a finding if it does.
                assert_unlocked("serve.record-metrics")
                metrics.latency.observe(time.perf_counter() - started)
                with self._counts:
                    self._completed += 1

    def _answer(self, request: _Request) -> Any:
        yield_point("serve.answer")
        key = (
            request.run_id,
            request.view.presentation_key() if request.view is not None else None,
            request.kind,
            request.data_id,
        )
        return self._results.get_or_build(
            key,
            lambda: self._compute(request),
            scope=request.run_id,
        )

    def _compute(self, request: _Request) -> Any:
        if request.kind == "deep":
            return self.reasoner.deep(
                request.run_id, request.data_id, view=request.view
            )
        if request.kind == "reverse":
            return self.reasoner.reverse(
                request.run_id, request.data_id, view=request.view
            )
        # "zoom": the view-switch query — the data visible at this
        # granularity, in deterministic order so answers compare bytewise.
        composite = self.reasoner.composite_run(
            request.run_id, self._zoom_view(request)
        )
        return tuple(sorted(composite.visible_data()))

    def _zoom_view(self, request: _Request) -> UserView:
        if request.view is not None:
            return request.view
        from ..core.view import admin_view

        return admin_view(self.reasoner._materialize_run(request.run_id).spec)

    def _on_run_invalidated(self, run_id: str) -> None:
        self._results.bump_generation(run_id)
        self._results.invalidate_where(lambda key: key[0] == run_id)
        self._metrics.current().invalidations.increment()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def qps(self) -> float:
        """Completed requests per second of service uptime."""
        elapsed = self._elapsed
        if self._started_at is not None:
            elapsed += time.perf_counter() - self._started_at
        with self._counts:
            completed = self._completed
        if elapsed <= 0:
            return 0.0
        return completed / elapsed

    def stats(self) -> Dict[str, Any]:
        """Queue/throughput/latency/cache snapshot for dashboards and tests.

        When the warehouse is a sharded federation its merged per-shard
        metrics are included under ``"shards"``, so one call reports the
        whole stack: queue, caches, reasoner, and storage fan-out.
        """
        metrics = self._metrics.current()
        timer = metrics.latency
        qps = self.qps()
        metrics.qps.set(qps)
        with self._counts:
            accepted, rejected, completed = (
                self._accepted,
                self._rejected,
                self._completed,
            )
        out: Dict[str, Any] = {
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "queue_size": self._queue.maxsize,
            "accepted": accepted,
            "rejected": rejected,
            "completed": completed,
            "qps": round(qps, 2),
            "latency_ms": {
                "p50": round(timer.percentile(50) * 1000.0, 3),
                "p95": round(timer.percentile(95) * 1000.0, 3),
                "p99": round(timer.percentile(99) * 1000.0, 3),
            },
            "cache": self._results.stats().as_dict(),
            "reasoner": self.reasoner.stats(),
        }
        shard_stats = getattr(self.warehouse, "shard_stats", None)
        if callable(shard_stats):
            out["shards"] = shard_stats()
        return out
