"""Public hypothesis strategies and random builders for downstream tests.

Users extending this library (new view-construction algorithms, new
warehouse backends, new provenance semantics) need the same ingredients
our own property-based tests use: random valid workflow specifications,
random relevant sets, and simulated runs.  This module exports them as a
supported API; the in-repo test suite consumes the same functions.

Requires ``hypothesis`` (an optional, dev-time dependency).
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from .core.spec import INPUT, OUTPUT, WorkflowSpec
from .run.executor import ExecutionParams, SimulationResult, simulate

try:  # pragma: no cover - exercised implicitly by imports
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover
    st = None  # type: ignore[assignment]


def build_random_spec(
    n_modules: int,
    extra_edges: List[Tuple[int, int]],
    loop_at: int,
    name: str = "random",
) -> WorkflowSpec:
    """Deterministically assemble a valid specification from draw data.

    Modules are ordered; each module receives an edge from its predecessor
    (or ``input`` for the first), guaranteeing reachability; the last
    module feeds ``output``.  ``extra_edges`` add forward shortcuts (pairs
    are normalised into index order, self-pairs ignored); ``loop_at >= 0``
    closes a two-module back edge at that position.

    This is the builder behind :func:`small_specs`; it is exposed so that
    failing hypothesis examples can be reconstructed verbatim in a
    regression test.
    """
    modules = ["M%d" % index for index in range(1, n_modules + 1)]
    edges: Set[Tuple[str, str]] = {(INPUT, modules[0]), (modules[-1], OUTPUT)}
    for prev, nxt in zip(modules, modules[1:]):
        edges.add((prev, nxt))
    for src_idx, dst_idx in extra_edges:
        src = src_idx % n_modules
        dst = dst_idx % n_modules
        if src < dst:
            edges.add((modules[src], modules[dst]))
        elif dst < src:
            edges.add((modules[dst], modules[src]))
    if 0 <= loop_at < n_modules - 1:
        edges.add((modules[loop_at + 1], modules[loop_at]))
    return WorkflowSpec(modules, sorted(edges), name=name)


def random_spec(
    rng: random.Random, max_modules: int = 8, allow_loops: bool = True
) -> WorkflowSpec:
    """A random valid specification from a plain :class:`random.Random`."""
    n_modules = rng.randint(1, max_modules)
    n_extra = rng.randint(0, 2 * n_modules)
    extra_edges = [
        (rng.randint(0, 31), rng.randint(0, 31)) for _ in range(n_extra)
    ]
    loop_at = rng.randint(-1, n_modules - 2) if allow_loops and n_modules >= 2 \
        else -1
    return build_random_spec(n_modules, extra_edges, loop_at)


def simulate_small(spec: WorkflowSpec, seed: int = 0) -> SimulationResult:
    """Simulate a spec with small, test-friendly parameters."""
    params = ExecutionParams(
        user_input_range=(1, 3),
        data_per_edge_range=(1, 3),
        loop_iterations_range=(1, 3),
    )
    return simulate(spec, params=params, rng=random.Random(seed))


if st is not None:

    @st.composite
    def small_specs(draw, max_modules: int = 8, allow_loops: bool = True):
        """Hypothesis strategy: random small specifications."""
        n_modules = draw(st.integers(min_value=1, max_value=max_modules))
        n_extra = draw(st.integers(min_value=0, max_value=2 * n_modules))
        extra_edges = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=31),
                    st.integers(min_value=0, max_value=31),
                ),
                min_size=n_extra,
                max_size=n_extra,
            )
        )
        loop_at = draw(st.integers(min_value=-1, max_value=n_modules - 2)) \
            if allow_loops and n_modules >= 2 else -1
        return build_random_spec(n_modules, extra_edges, loop_at)

    @st.composite
    def specs_with_relevant(draw, max_modules: int = 8, allow_loops: bool = True):
        """Hypothesis strategy: a spec plus a random relevant subset."""
        spec = draw(small_specs(max_modules=max_modules,
                                allow_loops=allow_loops))
        modules = sorted(spec.modules)
        relevant = draw(
            st.sets(st.sampled_from(modules), min_size=0,
                    max_size=len(modules))
        )
        return spec, frozenset(relevant)

else:  # pragma: no cover - hypothesis not installed

    def small_specs(*_args, **_kwargs):
        raise ImportError("hypothesis is required for the spec strategies")

    def specs_with_relevant(*_args, **_kwargs):
        raise ImportError("hypothesis is required for the spec strategies")
