"""Provenance warehouse: relational storage with a recursive closure.

Two interchangeable backends implement the same interface: a pure-Python
in-memory store and a SQLite store whose deep-provenance query uses a
recursive common table expression (the stdlib analogue of the Oracle
``CONNECT BY`` queries in the paper's prototype).
"""

from .base import ProvenanceWarehouse, StreamState
from .jsonfile import (
    dump_warehouse,
    load_warehouse,
    restore_warehouse,
    save_warehouse,
)
from .loader import LoadedSpec, load_dataset, load_simulation, load_spec
from .memory import InMemoryWarehouse
from .pipeline import (
    PreparedRun,
    build_lineage_indexes,
    ingest_dataset,
    prepare_run,
)
from .recovery import (
    JOURNAL_COMMITTED,
    JOURNAL_PENDING,
    JournalEntry,
    QuarantineRecord,
    RecoveryReport,
    checksum_stored_run,
    recover,
    retry_quarantined,
    run_checksum,
)
from .schema import DIR_IN, DIR_OUT, SQLITE_DDL, SQLITE_DEEP_PROVENANCE
from .sharded import (
    DEFAULT_SHARD_COUNT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    ROUTERS,
    ShardedWarehouse,
    hash_router,
    spec_router,
)
from .sqlite import SqliteWarehouse
from .streaming import StreamingIngestor, chunk_log, stream_log
from .stats import (
    RunStats,
    WarehouseReport,
    hottest_modules,
    module_execution_counts,
    run_stats,
    runs_executing_module,
    warehouse_report,
)

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "DIR_IN",
    "DIR_OUT",
    "InMemoryWarehouse",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ROUTERS",
    "JOURNAL_COMMITTED",
    "JOURNAL_PENDING",
    "JournalEntry",
    "LoadedSpec",
    "PreparedRun",
    "ProvenanceWarehouse",
    "QuarantineRecord",
    "RecoveryReport",
    "RunStats",
    "SQLITE_DDL",
    "SQLITE_DEEP_PROVENANCE",
    "ShardedWarehouse",
    "SqliteWarehouse",
    "StreamState",
    "StreamingIngestor",
    "WarehouseReport",
    "build_lineage_indexes",
    "checksum_stored_run",
    "chunk_log",
    "dump_warehouse",
    "hash_router",
    "hottest_modules",
    "ingest_dataset",
    "load_dataset",
    "load_simulation",
    "load_spec",
    "load_warehouse",
    "module_execution_counts",
    "prepare_run",
    "recover",
    "restore_warehouse",
    "retry_quarantined",
    "run_checksum",
    "run_stats",
    "runs_executing_module",
    "save_warehouse",
    "spec_router",
    "stream_log",
    "warehouse_report",
]
