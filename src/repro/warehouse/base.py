"""Abstract provenance warehouse.

Both backends (in-memory and SQLite) implement this interface; everything
above the warehouse — the reasoner, the ZOOM session, the benchmarks — is
backend-agnostic.  The interface has three layers:

* **storage**: specifications, user views and runs go in and come back out
  as model objects;
* **row-level primitives**: the relations the paper's warehouse holds
  (steps, the ``io`` read/write relation, user inputs, final outputs);
* **recursive closure**: :meth:`admin_deep_provenance` — deep provenance
  at the finest (UAdmin) granularity, each backend using its natural
  recursion mechanism.

Run reconstruction (:meth:`get_run`) is implemented here once, from the
row-level primitives, mirroring how a run graph is rebuilt from a workflow
log: the writer of a data object is its producer; a read of that object
creates a dataflow edge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Container,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import UnknownEntityError, WarehouseError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..core.view import UserView
from ..provenance.result import ProvenanceResult
from ..run.log import EventLog, run_from_log
from ..run.run import WorkflowRun
from .schema import DIR_OUT

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids an import cycle
    from ..provenance.index import LineageClosure
    from ..provenance.labels import LineageLabels
    from .pipeline import PreparedRun
    from .recovery import JournalEntry, QuarantineRecord


@dataclass(frozen=True)
class StreamState:
    """The durable open-run marker of a streaming ingestion.

    One record per run currently being appended to
    (:mod:`repro.warehouse.streaming`).  ``epoch`` counts committed
    appends; ``checksum`` is the cumulative
    :func:`~repro.warehouse.recovery.run_checksum` as of that epoch — the
    consistent prefix a torn append is truncated back to.  ``delta_epoch``
    is the epoch through which the lineage/label indexes were maintained;
    it trailing ``epoch`` means the indexes are stale (lint rule
    ``WH047``).  The record's *presence* is the open marker: finalize
    deletes it.
    """

    run_id: str
    spec_id: str
    epoch: int
    delta_epoch: int
    checksum: str
    opened_at: Optional[float] = None


class ProvenanceWarehouse(ABC):
    """Store for specifications, views and run provenance."""

    # ------------------------------------------------------------------
    # Specifications
    # ------------------------------------------------------------------

    @abstractmethod
    def store_spec(self, spec: WorkflowSpec, spec_id: Optional[str] = None) -> str:
        """Store a specification; returns its id (default: the spec name)."""

    @abstractmethod
    def get_spec(self, spec_id: str) -> WorkflowSpec:
        """Rebuild a stored specification."""

    @abstractmethod
    def list_specs(self) -> List[str]:
        """Ids of all stored specifications."""

    # ------------------------------------------------------------------
    # User views
    # ------------------------------------------------------------------

    @abstractmethod
    def store_view(
        self, view: UserView, spec_id: str, view_id: Optional[str] = None
    ) -> str:
        """Store a user-view definition against a stored specification."""

    @abstractmethod
    def get_view(self, view_id: str) -> UserView:
        """Rebuild a stored user view (including its specification)."""

    @abstractmethod
    def list_views(self, spec_id: Optional[str] = None) -> List[str]:
        """Ids of stored views, optionally restricted to one specification."""

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    @abstractmethod
    def store_run(
        self, run: WorkflowRun, spec_id: str, run_id: Optional[str] = None
    ) -> str:
        """Store a run's provenance rows; returns the run id."""

    def store_log(
        self, log: EventLog, spec_id: str, run_id: Optional[str] = None
    ) -> str:
        """Store a run directly from its event log.

        This is the ingestion path the paper describes: the warehouse is
        fed log files produced by a workflow system, from which the run
        graph is reconstructed.  Per Section II, a user input's provenance
        *is* its recorded metadata, so the ``who`` attribute of the log's
        user-input events is persisted alongside the relational rows.
        """
        spec = self.get_spec(spec_id)
        run = run_from_log(log, spec)
        stored = self.store_run(run, spec_id, run_id=run_id or log.run_id)
        who = {
            event.data_id: event.who
            for event in log.of_kind("user_input")
            if event.who != "user"
        }
        if who:
            self._set_user_input_who(stored, who)
        return stored

    def store_many(self, prepared: Sequence["PreparedRun"]) -> List[str]:
        """Bulk-store pre-shaped runs in one transaction (batch ingestion).

        ``prepared`` rows come from the batch pipeline
        (:mod:`repro.warehouse.pipeline`), which has already validated the
        run graphs and matched them against their specs; backends only
        enforce id freshness and spec existence, then commit every run of
        the batch atomically — on any error nothing of the batch is
        stored.  A prepared run carrying a ``closure`` gets its lineage
        index persisted in the same transaction.  Unlike :meth:`store_run`
        this primitive never consults ``auto_index`` — the pipeline
        decides whether closures are computed (provlint's ``WH039`` flags
        ingestion paths that skip them on an ``auto_index=True``
        warehouse).

        Both shipped backends implement it; third-party backends inherit
        this default, which refuses rather than silently degrading.
        """
        raise NotImplementedError(
            "%s does not implement bulk ingestion; use store_run"
            % type(self).__name__
        )

    @contextmanager
    def bulk_load(self) -> Iterator[None]:
        """Bracket a large ingestion; backends may defer index maintenance.

        The batch pipeline wraps its whole run over a dataset in this
        context.  The default is a no-op; a backend opened in a bulk-load
        profile may drop derived structures (secondary indexes) on entry
        and rebuild them on exit, turning per-row index maintenance into
        one sorted build.  Implementations must restore every structure on
        exit even when the ingestion raised, so a failed load never leaves
        the warehouse unindexed.
        """
        yield

    # ------------------------------------------------------------------
    # Ingest journal, quarantine and integrity (crash-safe ingestion)
    # ------------------------------------------------------------------

    def journal_begin(self, entries: Sequence["JournalEntry"]) -> None:
        """Durably record runs about to be stored, in state ``pending``.

        Written *before* the batch transaction commits, so a crash leaves
        a pending row for every run whose fate is unknown —
        :func:`~repro.warehouse.recovery.recover` settles them by
        checksum.  Re-journalling an id overwrites its row.  The default
        is a no-op: a backend without a journal still ingests, it just
        cannot resume.
        """

    def journal_commit(self, run_ids: Sequence[str]) -> None:
        """Flip journal rows to ``committed`` after their batch landed."""

    def journal_discard(self, run_ids: Sequence[str]) -> None:
        """Drop journal rows (a gated-out or quarantined run)."""

    def journal_entries(
        self, state: Optional[str] = None
    ) -> List["JournalEntry"]:
        """Journal rows, optionally filtered by state (default: empty)."""
        return []

    def quarantine_add(self, record: "QuarantineRecord") -> None:
        """Persist a failed run's rows and reason for later inspection.

        Backends without quarantine storage refuse, so
        ``on_error="quarantine"`` never silently drops runs.
        """
        raise NotImplementedError(
            "%s does not implement quarantine storage" % type(self).__name__
        )

    def quarantine_list(self) -> List[str]:
        """Run ids currently quarantined (default: none)."""
        return []

    def quarantine_get(self, run_id: str) -> "QuarantineRecord":
        """The quarantine record of one run."""
        raise self._missing("quarantined run", run_id)

    def quarantine_delete(self, run_id: str) -> None:
        """Drop a quarantine record (after a successful retry)."""
        raise self._missing("quarantined run", run_id)

    def integrity_report(self, repair: bool = False) -> Dict[str, object]:
        """Probe the warehouse's physical health.

        Returns ``{"ok": bool, "missing_indexes": [...], "repaired":
        [...]}``.  Backends with on-disk structures override this with a
        real probe (``PRAGMA quick_check`` + expected-index check on
        SQLite); the default reports healthy — an in-memory dict cannot
        lose an index.
        """
        return {"ok": True, "missing_indexes": [], "repaired": []}

    # ------------------------------------------------------------------
    # Streaming appends (open runs; repro.warehouse.streaming)
    # ------------------------------------------------------------------

    def stream_begin(
        self,
        run_id: str,
        spec_id: str,
        *,
        checksum: str,
        opened_at: Optional[float] = None,
    ) -> None:
        """Open a run for streaming appends.

        Atomically creates the (empty) run and its open-run state record
        (epoch 0, ``checksum`` of the empty prefix).  Backends without
        streaming support refuse, so ``open_run`` never silently degrades
        to a non-resumable append.
        """
        raise NotImplementedError(
            "%s does not implement streaming ingestion" % type(self).__name__
        )

    def stream_state(self, run_id: str) -> Optional["StreamState"]:
        """The open-run record of ``run_id``, or ``None`` when the run is
        not currently open for streaming (default: never open)."""
        return None

    def stream_states(self) -> Dict[str, "StreamState"]:
        """Every open-run record, keyed by run id (default: none)."""
        return {}

    def stream_apply(
        self,
        run_id: str,
        *,
        epoch: int,
        checksum: str,
        step_rows: Sequence[Tuple[str, str]],
        io_rows: Sequence[Tuple[str, str, str]],
        user_inputs: Sequence[Tuple[str, str]],
        final_outputs: Sequence[str],
    ) -> None:
        """Apply one epoch's delta rows **atomically**.

        The delta rows *and* the state advance (``epoch``/``checksum``)
        must land in one transaction — a crash anywhere inside leaves the
        previous epoch intact, never a half-applied one.  Instrumented
        with the ``stream.append`` fault site inside the transaction;
        implementations wrap themselves in
        :func:`~repro.obs.retry.with_retries` so injected lock errors on
        the open-run row are absorbed.  ``user_inputs`` rows carry their
        ``who`` attribution.
        """
        raise NotImplementedError(
            "%s does not implement streaming ingestion" % type(self).__name__
        )

    def stream_mark_delta(self, run_id: str, epoch: int) -> None:
        """Record that the lineage/label indexes were maintained through
        ``epoch`` (the ``delta_epoch`` advance, after the epoch committed)."""
        raise NotImplementedError(
            "%s does not implement streaming ingestion" % type(self).__name__
        )

    def stream_close(self, run_id: str) -> None:
        """Delete the open-run record: the run is finalized.

        The stored rows and journal entry are left exactly as a cold
        batch load of the same events would leave them, so the warehouse
        fingerprint converges byte-identically.
        """
        raise NotImplementedError(
            "%s does not implement streaming ingestion" % type(self).__name__
        )

    @abstractmethod
    def list_runs(self, spec_id: Optional[str] = None) -> List[str]:
        """Ids of stored runs, optionally restricted to one specification."""

    @abstractmethod
    def run_spec_id(self, run_id: str) -> str:
        """The specification id a run executes."""

    # ------------------------------------------------------------------
    # Row-level primitives
    # ------------------------------------------------------------------

    @abstractmethod
    def steps_of_run(self, run_id: str) -> List[Tuple[str, str]]:
        """``(step_id, module)`` rows of a run, ordered by step id."""

    @abstractmethod
    def io_rows(self, run_id: str) -> List[Tuple[str, str, str]]:
        """``(step_id, data_id, direction)`` rows of a run."""

    @abstractmethod
    def user_inputs(self, run_id: str) -> FrozenSet[str]:
        """Data objects fed into the run by users."""

    @abstractmethod
    def final_outputs(self, run_id: str) -> FrozenSet[str]:
        """Data objects designated as the run's final results."""

    @abstractmethod
    def producer_of(self, run_id: str, data_id: str) -> str:
        """The step that wrote ``data_id``, or ``input`` for user inputs."""

    @abstractmethod
    def step_inputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        """Data objects a step read."""

    @abstractmethod
    def step_outputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        """Data objects a step wrote."""

    @abstractmethod
    def module_of_step(self, run_id: str, step_id: str) -> str:
        """The module a step is an execution of."""

    # ------------------------------------------------------------------
    # User-input metadata and annotations
    # ------------------------------------------------------------------

    @abstractmethod
    def user_input_who(self, run_id: str, data_id: str) -> str:
        """Who supplied a user input (``"user"`` when unrecorded).

        Raises :class:`UnknownEntityError` for data that is not a user
        input of the run.
        """

    @abstractmethod
    def _set_user_input_who(self, run_id: str, who: Dict[str, str]) -> None:
        """Record the supplier of user inputs (internal, used by
        :meth:`store_log`)."""

    @abstractmethod
    def annotate(self, run_id: str, subject: str, key: str, value: str) -> None:
        """Attach (or overwrite) a free-form annotation.

        ``subject`` is a step id or a data id of the run; annotations are
        plain key/value strings.
        """

    @abstractmethod
    def annotations_of(self, run_id: str, subject: str) -> Dict[str, str]:
        """All annotations on one step or data object."""

    @abstractmethod
    def find_annotated(
        self, run_id: str, key: str, value: Optional[str] = None
    ) -> List[str]:
        """Subjects carrying an annotation key (optionally a value too)."""

    # ------------------------------------------------------------------
    # Recursive closure
    # ------------------------------------------------------------------

    @abstractmethod
    def admin_deep_provenance(self, run_id: str, data_id: str) -> ProvenanceResult:
        """Deep provenance of ``data_id`` at step (UAdmin) granularity.

        One row per (step, input data object) pair in the transitive
        lineage; user inputs encountered along the way are reported in the
        result's ``user_inputs``.
        """

    # ------------------------------------------------------------------
    # Materialized lineage-closure index
    # ------------------------------------------------------------------

    def build_lineage_index(self, run_id: str, rebuild: bool = False) -> int:
        """Materialise (and persist) the run's lineage closure.

        One topological pass over the run's rows
        (:func:`~repro.provenance.index.compute_lineage_closure`), then one
        bulk store; afterwards :meth:`admin_deep_provenance` answers from
        the index with no recursion.  Idempotent: an already-indexed run is
        left untouched unless ``rebuild`` is true.  Returns the number of
        closure rows the index holds.  Build time accumulates under the
        ``index.build`` timer.
        """
        from ..obs.metrics import get_registry  # late: keep import graph acyclic
        from ..provenance.index import compute_lineage_closure

        existing = self.lineage_row_count(run_id)
        if existing is not None and not rebuild:
            return existing
        with get_registry().time("index.build"):
            closure = compute_lineage_closure(self, run_id)
            if existing is not None:
                self.drop_lineage_index(run_id)
            self._store_lineage_closure(closure)
        return closure.num_rows()

    @abstractmethod
    def _store_lineage_closure(self, closure: "LineageClosure") -> None:
        """Persist a freshly computed closure (internal; bulk, transactional)."""

    def extend_lineage_index(
        self, run_id: str, rows: Sequence[Tuple[str, str, str]]
    ) -> int:
        """Append freshly derived closure rows to an existing index.

        The streaming delta path: an append-only DAG never changes an
        existing data object's ancestor set, so a committed epoch only
        *adds* ``(data_id, step_id, data_in)`` rows for the new frontier
        (:func:`~repro.provenance.index.closure_delta_rows`).  Returns the
        new total row count.  Raises :class:`WarehouseError` when the run
        is not indexed — the caller falls back to a full build.
        """
        raise NotImplementedError(
            "%s does not implement incremental lineage maintenance"
            % type(self).__name__
        )

    @abstractmethod
    def has_lineage_index(self, run_id: str) -> bool:
        """Whether the run's lineage closure is materialised."""

    @abstractmethod
    def lineage_row_count(self, run_id: str) -> Optional[int]:
        """Closure rows stored for a run, or ``None`` when not indexed."""

    @abstractmethod
    def drop_lineage_index(self, run_id: Optional[str] = None) -> List[str]:
        """Discard the closure of one run (or of every run); returns the
        run ids whose index was dropped."""

    @abstractmethod
    def lineage_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        """Deep provenance straight from the materialised closure.

        Raises :class:`WarehouseError` when the run is not indexed — the
        caller (reasoner or :meth:`admin_deep_provenance`) decides whether
        to build or to fall back to recursion.
        """

    @abstractmethod
    def lineage_rows_raw(self, run_id: str) -> Set[Tuple[str, str, str]]:
        """The stored ``(data_id, step_id, data_in)`` closure rows, as-is.

        No validation — :mod:`repro.lint` compares these against a fresh
        recomputation to detect a stale index (rule ``WH038``).
        """

    def lineage_index_status(self) -> Dict[str, Optional[int]]:
        """Per-run index state: closure row count, or ``None`` if unbuilt."""
        return {
            run_id: self.lineage_row_count(run_id)
            for run_id in self.list_runs()
        }

    # ------------------------------------------------------------------
    # Compact reachability labels (the closure's O(V) twin)
    # ------------------------------------------------------------------

    def build_label_index(self, run_id: str, rebuild: bool = False) -> int:
        """Materialise (and persist) the run's reachability labels.

        One topological pass
        (:func:`~repro.provenance.labels.compute_lineage_labels`), then one
        bulk store; afterwards :meth:`label_lookup` answers deep provenance
        from O(V) stored rows instead of the closure's O(reachable-pairs).
        Idempotent: an already-labelled run is left untouched unless
        ``rebuild`` is true.  Returns the number of label rows (one per
        step).  Build time accumulates under the ``labels.build`` timer.
        """
        from ..obs.metrics import get_registry  # late: keep import graph acyclic
        from ..provenance.labels import compute_lineage_labels

        existing = self.label_row_count(run_id)
        if existing is not None and not rebuild:
            return existing
        with get_registry().time("labels.build"):
            labels = compute_lineage_labels(self, run_id)
            if existing is not None:
                self.drop_label_index(run_id)
            self._store_lineage_labels(labels)
        return labels.num_rows()

    @abstractmethod
    def _store_lineage_labels(self, labels: "LineageLabels") -> None:
        """Persist freshly computed labels (internal; bulk, transactional)."""

    @abstractmethod
    def has_label_index(self, run_id: str) -> bool:
        """Whether the run's reachability labels are materialised."""

    @abstractmethod
    def label_row_count(self, run_id: str) -> Optional[int]:
        """Label rows stored for a run, or ``None`` when not labelled."""

    @abstractmethod
    def label_index_version(self, run_id: str) -> Optional[int]:
        """The :data:`~repro.provenance.labels.LABELS_VERSION` the stored
        labels were computed under, or ``None`` when not labelled (lint
        rule ``WH043`` compares it with the code's)."""

    @abstractmethod
    def drop_label_index(self, run_id: Optional[str] = None) -> List[str]:
        """Discard the labels of one run (or of every run); returns the
        run ids whose labels were dropped."""

    @abstractmethod
    def label_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        """Deep provenance from the stored labels: an upward traversal
        over tree-parent + remainder edges, touching only the ancestors.

        Row-identical to :meth:`lineage_lookup`.  Raises
        :class:`WarehouseError` when the run carries no label index.
        """

    @abstractmethod
    def label_rows_raw(self, run_id: str) -> Set[Tuple[str, int, int, str, str]]:
        """The stored ``(step_id, pre, post, parent, remainder)`` label
        rows, as-is.

        No validation — :mod:`repro.lint` compares these against a fresh
        labelling to detect a stale label index (rule ``WH043``).
        """

    def label_index_status(self) -> Dict[str, Optional[int]]:
        """Per-run label state: label row count, or ``None`` if unbuilt."""
        return {
            run_id: self.label_row_count(run_id)
            for run_id in self.list_runs()
        }

    @abstractmethod
    def delete_run(self, run_id: str) -> None:
        """Remove a run and every dependent row (io, annotations, lineage).

        Re-ingestion after a delete gets a clean slate; the lineage index
        of the deleted run is dropped with it.
        """

    # ------------------------------------------------------------------
    # Raw-row access (auditing)
    # ------------------------------------------------------------------

    def spec_rows(self, spec_id: str) -> Dict[str, object]:
        """The raw ``{"name", "modules", "edges"}`` payload of a spec.

        Unlike :meth:`get_spec` this must not validate: it exposes the
        stored rows as-is so :mod:`repro.lint` can audit a corrupted
        warehouse instead of crashing into it.  The default implementation
        round-trips through :meth:`get_spec` (backends holding model
        objects cannot be corrupt); row stores override it with direct
        table reads.
        """
        return self.get_spec(spec_id).to_dict()

    def view_rows(self, view_id: str) -> Tuple[str, str, Dict[str, List[str]]]:
        """Raw ``(spec_id, name, composite -> members)`` rows of a view.

        Same contract as :meth:`spec_rows`: no validation, for auditing.
        """
        view = self.get_view(view_id)
        for spec_id in self.list_specs():
            if view_id in self.list_views(spec_id):
                return (
                    spec_id,
                    view.name,
                    {c: sorted(view.members(c)) for c in sorted(view.composites)},
                )
        raise self._missing("view", view_id)

    # ------------------------------------------------------------------
    # Run reconstruction (shared implementation)
    # ------------------------------------------------------------------

    def get_run(self, run_id: str) -> WorkflowRun:
        """Rebuild the run graph from the warehouse's relational rows."""
        spec = self.get_spec(self.run_spec_id(run_id))
        run = WorkflowRun(spec, run_id=run_id)
        for step_id, module in self.steps_of_run(run_id):
            run.add_step(step_id, module)
        writer: Dict[str, str] = {d: INPUT for d in self.user_inputs(run_id)}
        reads: List[Tuple[str, str]] = []
        for step_id, data_id, direction in self.io_rows(run_id):
            if direction == DIR_OUT:
                if data_id in writer and writer[data_id] != step_id:
                    raise WarehouseError(
                        "data %r written by both %r and %r"
                        % (data_id, writer[data_id], step_id)
                    )
                writer[data_id] = step_id
            else:
                reads.append((step_id, data_id))
        for step_id, data_id in reads:
            source = writer.get(data_id)
            if source is None:
                raise WarehouseError(
                    "step %r read %r which nothing produced" % (step_id, data_id)
                )
            run.add_edge(source, step_id, [data_id])
        for data_id in sorted(self.final_outputs(run_id)):
            source = writer.get(data_id)
            if source is None:
                raise WarehouseError("final output %r never produced" % data_id)
            run.add_edge(source, OUTPUT, [data_id])
        return run

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------

    @staticmethod
    def _fresh_id(
        candidate: Optional[str], default: str, existing: Container[str]
    ) -> str:
        """Resolve and uniqueness-check an identifier.

        ``existing`` is probed with ``in`` directly — pass the live id
        container (dict/set), or a precomputed set during batch loads.
        Copying it into a fresh set per insert made every store O(n) and
        large ``load_dataset`` calls quadratic.
        """
        identifier = candidate or default
        if identifier in existing:
            raise WarehouseError("identifier %r already stored" % identifier)
        return identifier

    @staticmethod
    def _missing(kind: str, identifier: str) -> UnknownEntityError:
        return UnknownEntityError("unknown %s %r" % (kind, identifier))
