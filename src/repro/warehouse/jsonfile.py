"""JSON-file persistence for warehouses: export, import, archive.

The paper observes that workflow systems expose provenance as files (XML /
RDF dumps) as often as through a DBMS.  This module provides that
interchange path: any warehouse's contents can be dumped to a single JSON
document and re-imported into any backend — useful for archiving a lab's
provenance, shipping a reproducibility bundle alongside a publication, or
moving between the in-memory and SQLite backends.

The document format is versioned and self-contained: specifications,
view definitions, and per-run relational rows (steps, io, user inputs,
final outputs).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.errors import WarehouseError
from ..core.spec import WorkflowSpec
from ..core.view import UserView
from .base import ProvenanceWarehouse
from .memory import InMemoryWarehouse

#: Format version written into every dump.
FORMAT_VERSION = 1


def dump_warehouse(warehouse: ProvenanceWarehouse) -> Dict[str, object]:
    """Serialise a warehouse's full contents to a JSON-safe dict."""
    specs = []
    for spec_id in warehouse.list_specs():
        spec = warehouse.get_spec(spec_id)
        specs.append({"spec_id": spec_id, "spec": spec.to_dict()})
    views = []
    for spec_id in warehouse.list_specs():
        for view_id in warehouse.list_views(spec_id):
            view = warehouse.get_view(view_id)
            views.append({
                "view_id": view_id,
                "spec_id": spec_id,
                "view": view.to_dict(),
            })
    runs = []
    for run_id in warehouse.list_runs():
        user_inputs = sorted(warehouse.user_inputs(run_id))
        who = {
            data_id: supplier
            for data_id in user_inputs
            for supplier in [warehouse.user_input_who(run_id, data_id)]
            if supplier != "user"
        }
        subjects = set(user_inputs)
        subjects.update(step_id for step_id, _m in warehouse.steps_of_run(run_id))
        subjects.update(d for _s, d, _dir in warehouse.io_rows(run_id))
        annotations = {
            subject: pairs
            for subject in sorted(subjects)
            for pairs in [warehouse.annotations_of(run_id, subject)]
            if pairs
        }
        runs.append({
            "run_id": run_id,
            "spec_id": warehouse.run_spec_id(run_id),
            "steps": [list(row) for row in warehouse.steps_of_run(run_id)],
            "io": [list(row) for row in warehouse.io_rows(run_id)],
            "user_inputs": user_inputs,
            "final_outputs": sorted(warehouse.final_outputs(run_id)),
            "input_who": who,
            "annotations": annotations,
        })
    return {
        "format_version": FORMAT_VERSION,
        "specs": specs,
        "views": views,
        "runs": runs,
    }


def save_warehouse(warehouse: ProvenanceWarehouse, path: str) -> None:
    """Write a warehouse dump to a JSON file."""
    with open(path, "w") as handle:
        json.dump(dump_warehouse(warehouse), handle, indent=2, sort_keys=True)


def restore_warehouse(
    document: Dict[str, object],
    into: Optional[ProvenanceWarehouse] = None,
) -> ProvenanceWarehouse:
    """Rebuild a warehouse from a dump (into any backend).

    Run rows are replayed through the run-graph reconstruction used for
    event logs, so the result is validated on the way in.
    """
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise WarehouseError(
            "unsupported dump format version %r (expected %d)"
            % (version, FORMAT_VERSION)
        )
    warehouse = into if into is not None else InMemoryWarehouse()
    for entry in document["specs"]:  # type: ignore[union-attr]
        spec = WorkflowSpec.from_dict(entry["spec"])
        warehouse.store_spec(spec, spec_id=entry["spec_id"])
    for entry in document["views"]:  # type: ignore[union-attr]
        spec = warehouse.get_spec(entry["spec_id"])
        view = UserView.from_dict(spec, entry["view"])
        warehouse.store_view(view, entry["spec_id"], view_id=entry["view_id"])
    for entry in document["runs"]:  # type: ignore[union-attr]
        run = _run_from_rows(warehouse.get_spec(entry["spec_id"]), entry)
        run_id = entry["run_id"]
        warehouse.store_run(run, entry["spec_id"], run_id=run_id)
        who = entry.get("input_who") or {}
        if who:
            warehouse._set_user_input_who(run_id, dict(who))
        for subject, pairs in (entry.get("annotations") or {}).items():
            for key, value in pairs.items():
                warehouse.annotate(run_id, subject, key, value)
    return warehouse


def load_warehouse(
    path: str, into: Optional[ProvenanceWarehouse] = None
) -> ProvenanceWarehouse:
    """Read a dump file and rebuild the warehouse."""
    with open(path) as handle:
        return restore_warehouse(json.load(handle), into=into)


def _run_from_rows(spec: WorkflowSpec, entry: Dict[str, object]):
    """Rebuild one run graph from dumped relational rows."""
    from ..core.spec import INPUT, OUTPUT
    from ..run.run import WorkflowRun
    from .schema import DIR_OUT

    run = WorkflowRun(spec, run_id=str(entry["run_id"]))
    for step_id, module in entry["steps"]:  # type: ignore[union-attr]
        run.add_step(step_id, module)
    writer: Dict[str, str] = {d: INPUT for d in entry["user_inputs"]}  # type: ignore[union-attr]
    reads: List[List[str]] = []
    for step_id, data_id, direction in entry["io"]:  # type: ignore[union-attr]
        if direction == DIR_OUT:
            writer[data_id] = step_id
        else:
            reads.append([step_id, data_id])
    for step_id, data_id in reads:
        source = writer.get(data_id)
        if source is None:
            raise WarehouseError(
                "dump inconsistency: %r read unproduced %r" % (step_id, data_id)
            )
        run.add_edge(source, step_id, [data_id])
    for data_id in entry["final_outputs"]:  # type: ignore[union-attr]
        source = writer.get(data_id)
        if source is None:
            raise WarehouseError(
                "dump inconsistency: final output %r unproduced" % data_id
            )
        run.add_edge(source, OUTPUT, [data_id])
    return run
