"""Bulk loading of specifications, views and runs into a warehouse.

The ZOOM architecture (paper Fig. 8) has the system designer load workflow
specifications and view definitions, while run information arrives from
workflow logs.  This module packages those ingestion paths: one call loads
a specification together with its standard views, another loads a finished
simulation (run + log), and :func:`load_dataset` ingests a whole workload.

Every ingestion path runs the artifacts through :mod:`repro.lint` first.
By default findings only *warn*: they are counted per rule id in the
default metrics registry (``lint.<RULE_ID>`` counters) and ingestion
proceeds — the behaviour a high-volume service wants.  Passing
``strict=True`` turns the lint pass into a gate: error-severity findings
reject the artifact with :class:`~repro.lint.findings.LintGateError`
*before* anything touches the warehouse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.spec import WorkflowSpec
from ..core.view import UserView, admin_view, blackbox_view
from ..run.executor import SimulationResult
from .base import ProvenanceWarehouse


@dataclass
class LoadedSpec:
    """Identifiers returned by :func:`load_spec`."""

    spec_id: str
    view_ids: Dict[str, str] = field(default_factory=dict)
    run_ids: List[str] = field(default_factory=list)


def _linter():
    """The ingestion-gate linter (lazy import to avoid a package cycle)."""
    from ..lint import Linter

    return Linter()


def load_spec(
    warehouse: ProvenanceWarehouse,
    spec: WorkflowSpec,
    views: Optional[Mapping[str, UserView]] = None,
    spec_id: Optional[str] = None,
    with_standard_views: bool = False,
    strict: bool = False,
) -> LoadedSpec:
    """Store a specification and (optionally) a set of views.

    Parameters
    ----------
    warehouse:
        The target warehouse.
    spec:
        The specification to store.
    views:
        Mapping of view id to view; each must view ``spec``.
    spec_id:
        Explicit spec identifier (defaults to the spec name).
    with_standard_views:
        Also store the UAdmin and UBlackBox views under ids
        ``"<spec_id>/UAdmin"`` and ``"<spec_id>/UBlackBox"``.
    strict:
        Gate ingestion on the lint pass: reject the spec (or any supplied
        view) carrying error-severity findings.  The default lints but
        only counts findings in metrics.
    """
    linter = _linter()
    linter.gate(linter.lint_spec(spec), "spec %r" % spec.name, strict)
    for view_id, view in (views or {}).items():
        linter.gate(
            linter.lint_view(view), "view %r (%s)" % (view.name, view_id), strict
        )
    stored = LoadedSpec(spec_id=warehouse.store_spec(spec, spec_id=spec_id))
    if with_standard_views:
        admin = admin_view(spec)
        blackbox = blackbox_view(spec)
        for view in (admin, blackbox):
            view_id = "%s/%s" % (stored.spec_id, view.name)
            warehouse.store_view(view, stored.spec_id, view_id=view_id)
            stored.view_ids[view.name] = view_id
    for view_id, view in (views or {}).items():
        warehouse.store_view(view, stored.spec_id, view_id=view_id)
        stored.view_ids[view.name] = view_id
    return stored


def load_simulation(
    warehouse: ProvenanceWarehouse,
    result: SimulationResult,
    spec_id: str,
    run_id: Optional[str] = None,
    from_log: bool = False,
    strict: bool = False,
    index: bool = False,
) -> str:
    """Store one simulated execution against an already-stored spec.

    ``from_log=True`` ingests through the event log (exercising the
    reconstruction path a real deployment would use); the default stores
    the run graph directly — both produce identical warehouse contents.
    ``strict=True`` rejects the artifact when the lint pass finds errors.
    ``index=True`` materialises the run's lineage-closure index right after
    the store (ingestion-time indexing; see :mod:`repro.provenance.index`).
    """
    linter = _linter()
    if from_log:
        linter.gate(
            linter.lint_log(result.log, result.run.spec),
            "log %r" % result.log.run_id,
            strict,
        )
        stored = warehouse.store_log(result.log, spec_id, run_id=run_id)
    else:
        linter.gate(
            linter.lint_run(result.run), "run %r" % result.run.run_id, strict
        )
        stored = warehouse.store_run(result.run, spec_id, run_id=run_id)
    if index:
        warehouse.build_lineage_index(stored)
    return stored


def load_dataset(
    warehouse: ProvenanceWarehouse,
    items: Iterable[Tuple[WorkflowSpec, Sequence[SimulationResult]]],
    with_standard_views: bool = True,
    strict: bool = False,
    index: bool = False,
    parallel: Optional[int] = None,
    batch_size: Optional[int] = None,
    resume: bool = False,
    on_error: str = "abort",
) -> List[LoadedSpec]:
    """Ingest a collection of specifications, each with its runs.

    Run ids are qualified as ``"<spec_id>/run<N>"`` so that several
    specifications can reuse the simulator's default run naming.
    ``strict`` and ``index`` are forwarded to every :func:`load_spec` /
    :func:`load_simulation` call.

    Passing ``parallel`` (prepare-stage worker count; ``0`` = inline) or
    ``batch_size`` (runs per bulk transaction) routes the workload through
    the batched pipeline of :func:`repro.warehouse.pipeline.ingest_dataset`,
    which produces identical warehouse contents and lint findings several
    times faster on large workloads.  ``resume=True`` (continue a crashed
    load: recover the journal, skip already-committed runs) and
    ``on_error="quarantine"`` (divert failing runs instead of aborting)
    also route through the pipeline — the crash-safety machinery lives
    there.  With everything left at the defaults the run-at-a-time loop
    below remains the reference semantics.
    """
    if (
        parallel is not None
        or batch_size is not None
        or resume
        or on_error != "abort"
    ):
        from .pipeline import DEFAULT_BATCH_SIZE, ingest_dataset

        return ingest_dataset(
            warehouse, items,
            jobs=parallel or 0,
            batch_size=batch_size or DEFAULT_BATCH_SIZE,
            with_standard_views=with_standard_views,
            strict=strict, index=index,
            resume=resume, on_error=on_error,
        )
    loaded: List[LoadedSpec] = []
    for spec, simulations in items:
        record = load_spec(
            warehouse, spec, with_standard_views=with_standard_views,
            strict=strict,
        )
        for number, simulation in enumerate(simulations, start=1):
            run_id = "%s/run%d" % (record.spec_id, number)
            record.run_ids.append(
                load_simulation(
                    warehouse, simulation, record.spec_id, run_id=run_id,
                    strict=strict, index=index,
                )
            )
        loaded.append(record)
    return loaded
