"""Pure-Python in-memory warehouse backend.

Stores the same relations as the SQLite backend in plain dictionaries with
secondary indexes (producer-by-data, inputs/outputs-by-step) and computes
the deep-provenance closure by breadth-first search.  This is the fastest
backend for the interactive path and the reference for conformance tests.

**Thread-affinity contract.**  Read methods are safe from any thread —
records are fully built before they are published into the run table, so a
concurrent reader sees either the whole run or no run.  Mutating methods
serialize on an internal lock (the id-freshness check and the publish are
one atomic step), mirroring the SQLite backend's single-writer discipline
without its connection affinity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import WarehouseError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..core.view import UserView
from ..faults import FaultPlan
from ..obs.metrics import get_registry
from ..obs.retry import with_retries
from ..provenance.result import ProvenanceResult, ProvenanceRow
from ..run.run import WorkflowRun
from ..sanitize import guard, make_lock
from .base import ProvenanceWarehouse, StreamState
from .recovery import JOURNAL_COMMITTED, JournalEntry, QuarantineRecord
from .schema import DIR_IN, DIR_OUT

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids an import cycle
    from ..provenance.index import LineageClosure
    from ..provenance.labels import LineageLabels
    from .pipeline import PreparedRun


@dataclass
class _RunRecord:
    """All rows of one run, with the secondary indexes queries need."""

    spec_id: str
    steps: Dict[str, str] = field(default_factory=dict)  # step -> module
    io: List[Tuple[str, str, str]] = field(default_factory=list)
    producer: Dict[str, str] = field(default_factory=dict)  # data -> node
    inputs: Dict[str, Set[str]] = field(default_factory=dict)  # step -> data
    outputs: Dict[str, Set[str]] = field(default_factory=dict)
    user_inputs: Set[str] = field(default_factory=set)
    final_outputs: Set[str] = field(default_factory=set)
    input_who: Dict[str, str] = field(default_factory=dict)
    annotations: Dict[str, Dict[str, str]] = field(default_factory=dict)
    # Materialized lineage closure (None until built): data -> ancestor
    # steps / lineage user inputs, plus the expanded row count for status.
    lineage_steps: Optional[Dict[str, FrozenSet[str]]] = None
    lineage_inputs: Optional[Dict[str, FrozenSet[str]]] = None
    lineage_row_count: int = 0
    # Compact reachability labels (None until built): the frozen
    # LineageLabels structure, served as-is by label_lookup.
    labels: Optional["LineageLabels"] = None


class InMemoryWarehouse(ProvenanceWarehouse):
    """Dictionary-backed implementation of :class:`ProvenanceWarehouse`."""

    def __init__(
        self, auto_index: bool = False, faults: Optional[FaultPlan] = None
    ) -> None:
        #: Serializes mutations so the freshness check and the publish are
        #: atomic under concurrent writers (see module docstring).  Reads
        #: stay lock-free — CPython dict loads are atomic — so the tables
        #: follow the write-locked / read-free contract (sanitizer mode
        #: ``"w"``).
        self._mutate = make_lock("warehouse.mutate", recursive=True)
        self._specs: Dict[str, WorkflowSpec] = guard(
            {}, self._mutate, "memory._specs", mode="w"
        )  # guarded-by: _mutate
        self._views: Dict[str, Tuple[str, UserView]] = guard(
            {}, self._mutate, "memory._views", mode="w"
        )  # guarded-by: _mutate
        self._runs: Dict[str, _RunRecord] = guard(
            {}, self._mutate, "memory._runs", mode="w"
        )  # guarded-by: _mutate
        #: Ingest journal (run id -> entry), the in-memory analogue of the
        #: SQLite ``_ingest_journal`` table.  It lives and dies with the
        #: process, so "crash recovery" here means recovering from an
        #: aborted `ingest_dataset` call within the same process.
        self._journal: Dict[str, JournalEntry] = guard(
            {}, self._mutate, "memory._journal", mode="w"
        )  # guarded-by: _mutate
        #: Quarantined runs (run id -> record).
        self._quarantine: Dict[str, QuarantineRecord] = guard(
            {}, self._mutate, "memory._quarantine", mode="w"
        )  # guarded-by: _mutate
        #: Open streaming runs (run id -> StreamState), the in-memory
        #: analogue of the SQLite ``_stream_state`` table.
        self._streams: Dict[str, StreamState] = guard(
            {}, self._mutate, "memory._streams", mode="w"
        )  # guarded-by: _mutate
        #: Build the lineage-closure index of every run at ingestion time.
        self.auto_index = auto_index
        #: Fault-injection schedule (tests only; ``None`` in production).
        self.faults = faults

    def _hit(self, site: str) -> None:
        """Fire the fault plan at an instrumented site (no-op without one)."""
        if self.faults is not None:
            self.faults.hit(site)

    # ------------------------------------------------------------------
    # Specifications
    # ------------------------------------------------------------------

    def store_spec(self, spec: WorkflowSpec, spec_id: Optional[str] = None) -> str:
        with self._mutate:
            identifier = self._fresh_id(spec_id, spec.name, self._specs)
            self._specs[identifier] = spec
        return identifier

    def get_spec(self, spec_id: str) -> WorkflowSpec:
        try:
            return self._specs[spec_id]
        except KeyError:
            raise self._missing("spec", spec_id) from None

    def list_specs(self) -> List[str]:
        return sorted(self._specs)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def store_view(
        self, view: UserView, spec_id: str, view_id: Optional[str] = None
    ) -> str:
        stored_spec = self.get_spec(spec_id)
        if view.spec != stored_spec:
            raise WarehouseError(
                "view %r does not match stored spec %r" % (view.name, spec_id)
            )
        with self._mutate:
            identifier = self._fresh_id(view_id, view.name, self._views)
            self._views[identifier] = (spec_id, view)
        return identifier

    def get_view(self, view_id: str) -> UserView:
        try:
            return self._views[view_id][1]
        except KeyError:
            raise self._missing("view", view_id) from None

    def list_views(self, spec_id: Optional[str] = None) -> List[str]:
        return sorted(
            vid
            for vid, (sid, _view) in self._views.items()
            if spec_id is None or sid == spec_id
        )

    def view_rows(self, view_id: str) -> Tuple[str, str, Dict[str, List[str]]]:
        try:
            spec_id, view = self._views[view_id]
        except KeyError:
            raise self._missing("view", view_id) from None
        return (
            spec_id,
            view.name,
            {c: sorted(view.members(c)) for c in sorted(view.composites)},
        )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def store_run(
        self, run: WorkflowRun, spec_id: str, run_id: Optional[str] = None
    ) -> str:
        stored_spec = self.get_spec(spec_id)
        if run.spec != stored_spec:
            raise WarehouseError(
                "run %r does not match stored spec %r" % (run.run_id, spec_id)
            )
        run.validate()  # the warehouse only ever holds valid runs
        record = _RunRecord(spec_id=spec_id)
        for step in run.steps():
            record.steps[step.step_id] = step.module
            record.inputs[step.step_id] = run.inputs_of(step.step_id)
            record.outputs[step.step_id] = run.outputs_of(step.step_id)
            for data_id in sorted(record.inputs[step.step_id]):
                record.io.append((step.step_id, data_id, DIR_IN))
            for data_id in sorted(record.outputs[step.step_id]):
                record.io.append((step.step_id, data_id, DIR_OUT))
                record.producer[data_id] = step.step_id
        record.user_inputs = set(run.user_inputs())
        for data_id in record.user_inputs:
            record.producer[data_id] = INPUT
        record.final_outputs = set(run.final_outputs())
        with self._mutate:
            identifier = self._fresh_id(run_id, run.run_id, self._runs)
            self._runs[identifier] = record
        if self.auto_index:
            self.build_lineage_index(identifier)
        return identifier

    @with_retries()
    def store_many(self, prepared: Sequence["PreparedRun"]) -> List[str]:
        """Bulk-store prepared runs; all-or-nothing, like one transaction.

        Builds every :class:`_RunRecord` from the pre-shaped rows first
        (checking id freshness against one precomputed set) and only then
        publishes them into the run table, so a failing batch leaves the
        warehouse untouched.  A prepared closure is installed directly —
        its frozensets are shared, exactly as :meth:`_store_lineage_closure`
        stores them.
        """
        self._hit("store_many.begin")
        batch = list(prepared)
        self._mutate.acquire()
        try:
            return self._store_many_locked(batch)
        finally:
            self._mutate.release()

    def _store_many_locked(self, batch: List["PreparedRun"]) -> List[str]:
        existing = set(self._runs)
        records: List[Tuple[str, _RunRecord]] = []
        for p in batch:
            if p.spec_id not in self._specs:
                raise self._missing("spec", p.spec_id)
            self._fresh_id(p.run_id, p.run_id, existing)
            existing.add(p.run_id)
            record = _RunRecord(spec_id=p.spec_id)
            for step_id, module in p.step_rows:
                record.steps[step_id] = module
                record.inputs[step_id] = set()
                record.outputs[step_id] = set()
            for step_id, data_id, direction in p.io_rows:
                record.io.append((step_id, data_id, direction))
                if direction == DIR_OUT:
                    record.outputs[step_id].add(data_id)
                    record.producer[data_id] = step_id
                else:
                    record.inputs[step_id].add(data_id)
            record.user_inputs = set(p.user_inputs)
            for data_id in record.user_inputs:
                record.producer[data_id] = INPUT
            record.final_outputs = set(p.final_outputs)
            if p.closure is not None:
                record.lineage_steps = dict(p.closure.lineage_steps)
                record.lineage_inputs = dict(p.closure.lineage_inputs)
                record.lineage_row_count = p.closure.num_rows()
            if p.labels is not None:
                record.labels = p.labels
            records.append((p.run_id, record))
        published = 0
        for run_id, record in records:
            self._runs[run_id] = record
            published += 1
            if published == 1:
                # Unlike SQLite there is no transaction to roll a crash
                # back: a kill here leaves the batch genuinely
                # half-published, the state `recover()` settles by
                # checksum (complete runs roll forward, the rest stay
                # torn in the journal for a resumed load).
                self._hit("store_many.mid")
        return [run_id for run_id, _record in records]

    # ------------------------------------------------------------------
    # Ingest journal and quarantine (crash-safe ingestion)
    # ------------------------------------------------------------------

    def journal_begin(self, entries: Sequence["JournalEntry"]) -> None:
        with self._mutate:
            for entry in entries:
                self._journal[entry.run_id] = entry

    def journal_commit(self, run_ids: Sequence[str]) -> None:
        with self._mutate:
            for run_id in run_ids:
                entry = self._journal.get(run_id)
                if entry is not None:
                    self._journal[run_id] = JournalEntry(
                        run_id=entry.run_id, spec_id=entry.spec_id,
                        checksum=entry.checksum, batch=entry.batch,
                        state=JOURNAL_COMMITTED,
                    )

    def journal_discard(self, run_ids: Sequence[str]) -> None:
        with self._mutate:
            for run_id in run_ids:
                self._journal.pop(run_id, None)

    def journal_entries(
        self, state: Optional[str] = None
    ) -> List["JournalEntry"]:
        return [
            entry
            for run_id, entry in sorted(self._journal.items())
            if state is None or entry.state == state
        ]

    def quarantine_add(self, record: "QuarantineRecord") -> None:
        with self._mutate:
            self._quarantine[record.run_id] = record

    def quarantine_list(self) -> List[str]:
        return sorted(self._quarantine)

    def quarantine_get(self, run_id: str) -> "QuarantineRecord":
        try:
            return self._quarantine[run_id]
        except KeyError:
            raise self._missing("quarantined run", run_id) from None

    def quarantine_delete(self, run_id: str) -> None:
        with self._mutate:
            if run_id not in self._quarantine:
                raise self._missing("quarantined run", run_id)
            del self._quarantine[run_id]

    # ------------------------------------------------------------------
    # Streaming appends (open runs)
    # ------------------------------------------------------------------

    def stream_begin(
        self,
        run_id: str,
        spec_id: str,
        *,
        checksum: str,
        opened_at: Optional[float] = None,
    ) -> None:
        self.get_spec(spec_id)  # raise for unknown specs
        with self._mutate:
            identifier = self._fresh_id(run_id, run_id, self._runs)
            self._runs[identifier] = _RunRecord(spec_id=spec_id)
            self._streams[identifier] = StreamState(
                run_id=identifier, spec_id=spec_id, epoch=0, delta_epoch=0,
                checksum=checksum, opened_at=opened_at,
            )

    def stream_state(self, run_id: str) -> Optional[StreamState]:
        return self._streams.get(run_id)

    def stream_states(self) -> Dict[str, StreamState]:
        return dict(self._streams)

    @with_retries()
    def stream_apply(
        self,
        run_id: str,
        *,
        epoch: int,
        checksum: str,
        step_rows: Sequence[Tuple[str, str]],
        io_rows: Sequence[Tuple[str, str, str]],
        user_inputs: Sequence[Tuple[str, str]],
        final_outputs: Sequence[str],
    ) -> None:
        """Copy-on-write epoch application.

        A *new* record is built from the published one, the delta is
        applied to the copy, and only then is the run table reference
        swapped — concurrent readers holding the old record see the
        previous epoch in full; readers arriving after the swap see the
        new one in full.  A crash or injected lock error at
        ``stream.append`` fires before the swap, so nothing is ever
        half-applied.
        """
        state = self._streams.get(run_id)
        if state is None:
            raise WarehouseError("run %r is not open for streaming" % run_id)
        old = self._record(run_id)
        record = _RunRecord(
            spec_id=old.spec_id,
            steps=dict(old.steps),
            io=list(old.io),
            producer=dict(old.producer),
            inputs={step: set(data) for step, data in old.inputs.items()},
            outputs={step: set(data) for step, data in old.outputs.items()},
            user_inputs=set(old.user_inputs),
            final_outputs=set(old.final_outputs),
            input_who=dict(old.input_who),
            annotations=old.annotations,
            lineage_steps=old.lineage_steps,
            lineage_inputs=old.lineage_inputs,
            lineage_row_count=old.lineage_row_count,
            labels=old.labels,
        )
        for step_id, module in step_rows:
            record.steps[step_id] = module
            record.inputs.setdefault(step_id, set())
            record.outputs.setdefault(step_id, set())
        present = set(record.io)
        for row in io_rows:
            if row in present:
                continue
            present.add(row)
            step_id, data_id, direction = row
            record.io.append(row)
            if direction == DIR_OUT:
                owner = record.producer.get(data_id)
                if owner is not None and owner != step_id:
                    raise WarehouseError(
                        "data %r written by both %r and %r"
                        % (data_id, owner, step_id)
                    )
                record.outputs[step_id].add(data_id)
                record.producer[data_id] = step_id
            else:
                record.inputs[step_id].add(data_id)
        for data_id, who in user_inputs:
            record.user_inputs.add(data_id)
            record.producer[data_id] = INPUT
            if who != "user":
                record.input_who[data_id] = who
        record.final_outputs.update(final_outputs)
        self._hit("stream.append")
        with self._mutate:
            self._runs[run_id] = record
            self._streams[run_id] = replace(
                state, epoch=epoch, checksum=checksum
            )

    def stream_mark_delta(self, run_id: str, epoch: int) -> None:
        with self._mutate:
            state = self._streams.get(run_id)
            if state is None:
                raise WarehouseError(
                    "run %r is not open for streaming" % run_id
                )
            self._streams[run_id] = replace(state, delta_epoch=epoch)

    def stream_close(self, run_id: str) -> None:
        with self._mutate:
            if run_id not in self._streams:
                raise self._missing("open streaming run", run_id)
            del self._streams[run_id]

    def list_runs(self, spec_id: Optional[str] = None) -> List[str]:
        return sorted(
            rid
            for rid, record in self._runs.items()
            if spec_id is None or record.spec_id == spec_id
        )

    def run_spec_id(self, run_id: str) -> str:
        return self._record(run_id).spec_id

    def _record(self, run_id: str) -> _RunRecord:
        try:
            return self._runs[run_id]
        except KeyError:
            raise self._missing("run", run_id) from None

    # ------------------------------------------------------------------
    # Row-level primitives
    # ------------------------------------------------------------------

    def steps_of_run(self, run_id: str) -> List[Tuple[str, str]]:
        record = self._record(run_id)
        return sorted(record.steps.items())

    def io_rows(self, run_id: str) -> List[Tuple[str, str, str]]:
        return list(self._record(run_id).io)

    def user_inputs(self, run_id: str) -> FrozenSet[str]:
        return frozenset(self._record(run_id).user_inputs)

    def final_outputs(self, run_id: str) -> FrozenSet[str]:
        return frozenset(self._record(run_id).final_outputs)

    def producer_of(self, run_id: str, data_id: str) -> str:
        record = self._record(run_id)
        try:
            return record.producer[data_id]
        except KeyError:
            raise self._missing("data", data_id) from None

    def step_inputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        record = self._record(run_id)
        try:
            return frozenset(record.inputs[step_id])
        except KeyError:
            raise self._missing("step", step_id) from None

    def step_outputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        record = self._record(run_id)
        try:
            return frozenset(record.outputs[step_id])
        except KeyError:
            raise self._missing("step", step_id) from None

    def module_of_step(self, run_id: str, step_id: str) -> str:
        record = self._record(run_id)
        try:
            return record.steps[step_id]
        except KeyError:
            raise self._missing("step", step_id) from None

    # ------------------------------------------------------------------
    # User-input metadata and annotations
    # ------------------------------------------------------------------

    def user_input_who(self, run_id: str, data_id: str) -> str:
        record = self._record(run_id)
        if data_id not in record.user_inputs:
            raise self._missing("user input", data_id)
        return record.input_who.get(data_id, "user")

    def _set_user_input_who(self, run_id: str, who: Dict[str, str]) -> None:
        record = self._record(run_id)
        unknown = set(who) - record.user_inputs
        if unknown:
            raise WarehouseError(
                "not user inputs of %r: %s" % (run_id, sorted(unknown))
            )
        record.input_who.update(who)

    def annotate(self, run_id: str, subject: str, key: str, value: str) -> None:
        record = self._record(run_id)
        if subject not in record.steps and subject not in record.producer:
            raise self._missing("step or data", subject)
        record.annotations.setdefault(subject, {})[key] = value

    def annotations_of(self, run_id: str, subject: str) -> Dict[str, str]:
        return dict(self._record(run_id).annotations.get(subject, {}))

    def find_annotated(
        self, run_id: str, key: str, value: Optional[str] = None
    ) -> List[str]:
        record = self._record(run_id)
        return sorted(
            subject
            for subject, pairs in record.annotations.items()
            if key in pairs and (value is None or pairs[key] == value)
        )

    # ------------------------------------------------------------------
    # Materialized lineage-closure index
    # ------------------------------------------------------------------

    def _store_lineage_closure(self, closure: "LineageClosure") -> None:
        record = self._record(closure.run_id)
        record.lineage_steps = dict(closure.lineage_steps)
        record.lineage_inputs = dict(closure.lineage_inputs)
        record.lineage_row_count = closure.num_rows()

    def has_lineage_index(self, run_id: str) -> bool:
        return self._record(run_id).lineage_steps is not None

    def lineage_row_count(self, run_id: str) -> Optional[int]:
        record = self._record(run_id)
        if record.lineage_steps is None:
            return None
        return record.lineage_row_count

    def drop_lineage_index(self, run_id: Optional[str] = None) -> List[str]:
        targets = [run_id] if run_id is not None else self.list_runs()
        dropped: List[str] = []
        for target in targets:
            record = self._record(target)
            if record.lineage_steps is None:
                continue
            record.lineage_steps = None
            record.lineage_inputs = None
            record.lineage_row_count = 0
            dropped.append(target)
        return dropped

    def lineage_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        record = self._record(run_id)
        if record.lineage_steps is None or record.lineage_inputs is None:
            raise WarehouseError("run %r has no lineage index" % run_id)
        if data_id not in record.producer:
            raise self._missing("data", data_id)
        result = ProvenanceResult(target=data_id, view_name="UAdmin")
        for step_id in sorted(record.lineage_steps[data_id]):
            module = record.steps[step_id]
            for data_in in sorted(record.inputs[step_id]):
                result.rows.append(
                    ProvenanceRow(step_id=step_id, module=module, data_in=data_in)
                )
        result.user_inputs = set(record.lineage_inputs[data_id])
        return result

    def lineage_rows_raw(self, run_id: str) -> Set[Tuple[str, str, str]]:
        record = self._record(run_id)
        rows: Set[Tuple[str, str, str]] = set()
        if record.lineage_steps is None or record.lineage_inputs is None:
            return rows
        for data_id, steps in record.lineage_steps.items():
            for step_id in steps:
                for data_in in record.inputs[step_id]:
                    rows.add((data_id, step_id, data_in))
            for user_input in record.lineage_inputs[data_id]:
                rows.add((data_id, INPUT, user_input))
        return rows

    def extend_lineage_index(
        self, run_id: str, rows: Sequence[Tuple[str, str, str]]
    ) -> int:
        record = self._record(run_id)
        if record.lineage_steps is None or record.lineage_inputs is None:
            raise WarehouseError("run %r has no lineage index" % run_id)
        new_steps: Dict[str, Set[str]] = {}
        new_inputs: Dict[str, Set[str]] = {}
        for data_id, step_id, data_in in rows:
            if step_id == INPUT:
                new_inputs.setdefault(data_id, set()).add(data_in)
            else:
                new_steps.setdefault(data_id, set()).add(step_id)
                new_inputs.setdefault(data_id, set())
        with self._mutate:
            for data_id in sorted(set(new_steps) | set(new_inputs)):
                record.lineage_steps[data_id] = frozenset(
                    record.lineage_steps.get(data_id, frozenset())
                    | new_steps.get(data_id, set())
                )
                record.lineage_inputs[data_id] = frozenset(
                    record.lineage_inputs.get(data_id, frozenset())
                    | new_inputs.get(data_id, set())
                )
            record.lineage_row_count += len(set(rows))
        return record.lineage_row_count

    # ------------------------------------------------------------------
    # Compact reachability labels
    # ------------------------------------------------------------------

    def _store_lineage_labels(self, labels: "LineageLabels") -> None:
        self._record(labels.run_id).labels = labels

    def has_label_index(self, run_id: str) -> bool:
        return self._record(run_id).labels is not None

    def label_row_count(self, run_id: str) -> Optional[int]:
        labels = self._record(run_id).labels
        return None if labels is None else labels.num_rows()

    def label_index_version(self, run_id: str) -> Optional[int]:
        labels = self._record(run_id).labels
        return None if labels is None else labels.version

    def drop_label_index(self, run_id: Optional[str] = None) -> List[str]:
        targets = [run_id] if run_id is not None else self.list_runs()
        dropped: List[str] = []
        for target in targets:
            record = self._record(target)
            if record.labels is None:
                continue
            record.labels = None
            dropped.append(target)
        return dropped

    def label_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        record = self._record(run_id)
        if record.labels is None:
            raise WarehouseError("run %r has no label index" % run_id)
        if data_id not in record.producer:
            raise self._missing("data", data_id)
        return record.labels.result_for(data_id)

    def label_rows_raw(self, run_id: str) -> Set[Tuple[str, int, int, str, str]]:
        labels = self._record(run_id).labels
        if labels is None:
            return set()
        return set(labels.iter_table_rows())

    def delete_run(self, run_id: str) -> None:
        with self._mutate:
            self._record(run_id)  # raise for unknown ids
            del self._runs[run_id]
            self._journal.pop(run_id, None)
            self._quarantine.pop(run_id, None)
            self._streams.pop(run_id, None)

    def get_run(self, run_id: str) -> WorkflowRun:
        """Snapshot-consistent run reconstruction.

        The base implementation re-fetches the run's relations through
        four separate accessor calls; under a concurrent streaming append
        the record reference could change between them, tearing the
        reconstruction across two epochs.  Records are immutable once
        published (appends swap in a fresh copy), so reading everything
        from ONE reference pins the snapshot.
        """
        record = self._record(run_id)
        spec = self.get_spec(record.spec_id)
        run = WorkflowRun(spec, run_id=run_id)
        for step_id, module in sorted(record.steps.items()):
            run.add_step(step_id, module)
        writer: Dict[str, str] = {d: INPUT for d in record.user_inputs}
        reads: List[Tuple[str, str]] = []
        for step_id, data_id, direction in record.io:
            if direction == DIR_OUT:
                if data_id in writer and writer[data_id] != step_id:
                    raise WarehouseError(
                        "data %r written by both %r and %r"
                        % (data_id, writer[data_id], step_id)
                    )
                writer[data_id] = step_id
            else:
                reads.append((step_id, data_id))
        for step_id, data_id in reads:
            source = writer.get(data_id)
            if source is None:
                raise WarehouseError(
                    "step %r read %r which nothing produced"
                    % (step_id, data_id)
                )
            run.add_edge(source, step_id, [data_id])
        for data_id in sorted(record.final_outputs):
            source = writer.get(data_id)
            if source is None:
                raise WarehouseError(
                    "final output %r never produced" % data_id
                )
            run.add_edge(source, OUTPUT, [data_id])
        return run

    # ------------------------------------------------------------------
    # Recursive closure (BFS; served from the index when built)
    # ------------------------------------------------------------------

    def admin_deep_provenance(self, run_id: str, data_id: str) -> ProvenanceResult:
        record = self._record(run_id)
        if data_id not in record.producer:
            raise self._missing("data", data_id)
        if record.lineage_steps is not None:
            get_registry().counter("index.hit").increment()
            return self.lineage_lookup(run_id, data_id)
        get_registry().counter("index.miss").increment()
        result = ProvenanceResult(target=data_id, view_name="UAdmin")
        seen_data: Set[str] = set()
        seen_steps: Set[str] = set()
        frontier: Deque[str] = deque([data_id])
        while frontier:
            current = frontier.popleft()
            if current in seen_data:
                continue
            seen_data.add(current)
            producer = record.producer[current]
            if producer == INPUT:
                result.user_inputs.add(current)
                continue
            if producer in seen_steps:
                continue
            seen_steps.add(producer)
            module = record.steps[producer]
            for data_in in sorted(record.inputs[producer]):
                result.rows.append(
                    ProvenanceRow(step_id=producer, module=module, data_in=data_in)
                )
                frontier.append(data_in)
        return result
