"""Pure-Python in-memory warehouse backend.

Stores the same relations as the SQLite backend in plain dictionaries with
secondary indexes (producer-by-data, inputs/outputs-by-step) and computes
the deep-provenance closure by breadth-first search.  This is the fastest
backend for the interactive path and the reference for conformance tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.errors import WarehouseError
from ..core.spec import INPUT, WorkflowSpec
from ..core.view import UserView
from ..provenance.result import ProvenanceResult, ProvenanceRow
from ..run.run import WorkflowRun
from .base import ProvenanceWarehouse
from .schema import DIR_IN, DIR_OUT


@dataclass
class _RunRecord:
    """All rows of one run, with the secondary indexes queries need."""

    spec_id: str
    steps: Dict[str, str] = field(default_factory=dict)  # step -> module
    io: List[Tuple[str, str, str]] = field(default_factory=list)
    producer: Dict[str, str] = field(default_factory=dict)  # data -> node
    inputs: Dict[str, Set[str]] = field(default_factory=dict)  # step -> data
    outputs: Dict[str, Set[str]] = field(default_factory=dict)
    user_inputs: Set[str] = field(default_factory=set)
    final_outputs: Set[str] = field(default_factory=set)
    input_who: Dict[str, str] = field(default_factory=dict)
    annotations: Dict[str, Dict[str, str]] = field(default_factory=dict)


class InMemoryWarehouse(ProvenanceWarehouse):
    """Dictionary-backed implementation of :class:`ProvenanceWarehouse`."""

    def __init__(self) -> None:
        self._specs: Dict[str, WorkflowSpec] = {}
        self._views: Dict[str, Tuple[str, UserView]] = {}
        self._runs: Dict[str, _RunRecord] = {}

    # ------------------------------------------------------------------
    # Specifications
    # ------------------------------------------------------------------

    def store_spec(self, spec: WorkflowSpec, spec_id: Optional[str] = None) -> str:
        identifier = self._fresh_id(spec_id, spec.name, self._specs)
        self._specs[identifier] = spec
        return identifier

    def get_spec(self, spec_id: str) -> WorkflowSpec:
        try:
            return self._specs[spec_id]
        except KeyError:
            raise self._missing("spec", spec_id) from None

    def list_specs(self) -> List[str]:
        return sorted(self._specs)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def store_view(
        self, view: UserView, spec_id: str, view_id: Optional[str] = None
    ) -> str:
        stored_spec = self.get_spec(spec_id)
        if view.spec != stored_spec:
            raise WarehouseError(
                "view %r does not match stored spec %r" % (view.name, spec_id)
            )
        identifier = self._fresh_id(view_id, view.name, self._views)
        self._views[identifier] = (spec_id, view)
        return identifier

    def get_view(self, view_id: str) -> UserView:
        try:
            return self._views[view_id][1]
        except KeyError:
            raise self._missing("view", view_id) from None

    def list_views(self, spec_id: Optional[str] = None) -> List[str]:
        return sorted(
            vid
            for vid, (sid, _view) in self._views.items()
            if spec_id is None or sid == spec_id
        )

    def view_rows(self, view_id: str) -> Tuple[str, str, Dict[str, List[str]]]:
        try:
            spec_id, view = self._views[view_id]
        except KeyError:
            raise self._missing("view", view_id) from None
        return (
            spec_id,
            view.name,
            {c: sorted(view.members(c)) for c in sorted(view.composites)},
        )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def store_run(
        self, run: WorkflowRun, spec_id: str, run_id: Optional[str] = None
    ) -> str:
        stored_spec = self.get_spec(spec_id)
        if run.spec != stored_spec:
            raise WarehouseError(
                "run %r does not match stored spec %r" % (run.run_id, spec_id)
            )
        run.validate()  # the warehouse only ever holds valid runs
        identifier = self._fresh_id(run_id, run.run_id, self._runs)
        record = _RunRecord(spec_id=spec_id)
        for step in run.steps():
            record.steps[step.step_id] = step.module
            record.inputs[step.step_id] = run.inputs_of(step.step_id)
            record.outputs[step.step_id] = run.outputs_of(step.step_id)
            for data_id in sorted(record.inputs[step.step_id]):
                record.io.append((step.step_id, data_id, DIR_IN))
            for data_id in sorted(record.outputs[step.step_id]):
                record.io.append((step.step_id, data_id, DIR_OUT))
                record.producer[data_id] = step.step_id
        record.user_inputs = set(run.user_inputs())
        for data_id in record.user_inputs:
            record.producer[data_id] = INPUT
        record.final_outputs = set(run.final_outputs())
        self._runs[identifier] = record
        return identifier

    def list_runs(self, spec_id: Optional[str] = None) -> List[str]:
        return sorted(
            rid
            for rid, record in self._runs.items()
            if spec_id is None or record.spec_id == spec_id
        )

    def run_spec_id(self, run_id: str) -> str:
        return self._record(run_id).spec_id

    def _record(self, run_id: str) -> _RunRecord:
        try:
            return self._runs[run_id]
        except KeyError:
            raise self._missing("run", run_id) from None

    # ------------------------------------------------------------------
    # Row-level primitives
    # ------------------------------------------------------------------

    def steps_of_run(self, run_id: str) -> List[Tuple[str, str]]:
        record = self._record(run_id)
        return sorted(record.steps.items())

    def io_rows(self, run_id: str) -> List[Tuple[str, str, str]]:
        return list(self._record(run_id).io)

    def user_inputs(self, run_id: str) -> FrozenSet[str]:
        return frozenset(self._record(run_id).user_inputs)

    def final_outputs(self, run_id: str) -> FrozenSet[str]:
        return frozenset(self._record(run_id).final_outputs)

    def producer_of(self, run_id: str, data_id: str) -> str:
        record = self._record(run_id)
        try:
            return record.producer[data_id]
        except KeyError:
            raise self._missing("data", data_id) from None

    def step_inputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        record = self._record(run_id)
        try:
            return frozenset(record.inputs[step_id])
        except KeyError:
            raise self._missing("step", step_id) from None

    def step_outputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        record = self._record(run_id)
        try:
            return frozenset(record.outputs[step_id])
        except KeyError:
            raise self._missing("step", step_id) from None

    def module_of_step(self, run_id: str, step_id: str) -> str:
        record = self._record(run_id)
        try:
            return record.steps[step_id]
        except KeyError:
            raise self._missing("step", step_id) from None

    # ------------------------------------------------------------------
    # User-input metadata and annotations
    # ------------------------------------------------------------------

    def user_input_who(self, run_id: str, data_id: str) -> str:
        record = self._record(run_id)
        if data_id not in record.user_inputs:
            raise self._missing("user input", data_id)
        return record.input_who.get(data_id, "user")

    def _set_user_input_who(self, run_id: str, who: Dict[str, str]) -> None:
        record = self._record(run_id)
        unknown = set(who) - record.user_inputs
        if unknown:
            raise WarehouseError(
                "not user inputs of %r: %s" % (run_id, sorted(unknown))
            )
        record.input_who.update(who)

    def annotate(self, run_id: str, subject: str, key: str, value: str) -> None:
        record = self._record(run_id)
        if subject not in record.steps and subject not in record.producer:
            raise self._missing("step or data", subject)
        record.annotations.setdefault(subject, {})[key] = value

    def annotations_of(self, run_id: str, subject: str) -> Dict[str, str]:
        return dict(self._record(run_id).annotations.get(subject, {}))

    def find_annotated(
        self, run_id: str, key: str, value: Optional[str] = None
    ) -> List[str]:
        record = self._record(run_id)
        return sorted(
            subject
            for subject, pairs in record.annotations.items()
            if key in pairs and (value is None or pairs[key] == value)
        )

    # ------------------------------------------------------------------
    # Recursive closure (BFS)
    # ------------------------------------------------------------------

    def admin_deep_provenance(self, run_id: str, data_id: str) -> ProvenanceResult:
        record = self._record(run_id)
        if data_id not in record.producer:
            raise self._missing("data", data_id)
        result = ProvenanceResult(target=data_id, view_name="UAdmin")
        seen_data: Set[str] = set()
        seen_steps: Set[str] = set()
        frontier: Deque[str] = deque([data_id])
        while frontier:
            current = frontier.popleft()
            if current in seen_data:
                continue
            seen_data.add(current)
            producer = record.producer[current]
            if producer == INPUT:
                result.user_inputs.add(current)
                continue
            if producer in seen_steps:
                continue
            seen_steps.add(producer)
            module = record.steps[producer]
            for data_in in sorted(record.inputs[producer]):
                result.rows.append(
                    ProvenanceRow(step_id=producer, module=module, data_in=data_in)
                )
                frontier.append(data_in)
        return result
