"""Batched, parallel ingestion: fan out the pure work, bulk-write the rows.

:func:`load_dataset` is the reference ingestion semantics — one run at a
time, one statement at a time.  This module is the high-volume path the
ROADMAP's "sharding, batching, async" north star asks for.  It splits a
workload into the two halves every provenance loader has:

* **prepare** — per-run work that is a *pure function* of the run: graph
  validation, shaping the relational rows (steps, io, user inputs, final
  outputs), computing the raw lint findings over those rows, and — when
  ingestion-time indexing is on — the lineage closure
  (:func:`~repro.provenance.index.closure_from_rows`).  Pure work fans out
  over a thread or process pool and arrives back in deterministic input
  order.
* **write** — committing a whole batch of prepared runs to the warehouse
  in a single transaction through the backends' ``store_many`` bulk API
  (prepared ``executemany`` over the pre-shaped tuples on SQLite).

The pipeline guarantees **result parity with the serial path**: the same
workload ingested through :func:`ingest_dataset` — at any ``jobs`` /
``batch_size`` — produces byte-identical warehouse rows, identical lint
findings and identical ``lint.<RULE_ID>`` metric counts as a plain
:func:`~repro.warehouse.loader.load_dataset` call.  ``tests/test_pipeline.py``
asserts this on generated workloads for both backends.

The one *failure-path* difference is batch atomicity: the serial path
commits run ``k`` before looking at run ``k+1``, so a mid-workload lint
rejection leaves every earlier run stored.  Here a batch is gated as a
unit **before** its single transaction, so a ``strict=True`` rejection (or
an invalid run) aborts the whole failing batch — earlier batches stay
committed, the failing batch leaves no partial rows behind.

Per-stage observability lands in the default metrics registry:
``ingest.prepare`` / ``ingest.gate`` / ``ingest.write`` timers and the
``ingest.runs`` / ``ingest.batches`` / ``ingest.specs`` counters.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import RunError, WarehouseError, ZoomError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..obs.metrics import get_registry
from ..run.executor import SimulationResult
from ..run.run import WorkflowRun
from .base import ProvenanceWarehouse
from .loader import LoadedSpec, load_spec
from .schema import DIR_IN, DIR_OUT

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids import cycles
    from ..lint.findings import Finding
    from ..provenance.index import LineageClosure

#: Default number of prepared runs committed per transaction.
DEFAULT_BATCH_SIZE = 32


@dataclass
class PreparedRun:
    """One run, reduced to the exact rows the warehouse will hold.

    Produced by the prepare stage (possibly in a worker thread/process)
    and consumed by the backends' ``store_many``.  ``findings`` are the
    *raw* rule findings — the parent process applies the linter's config
    and metrics policy so counters land in the right registry.
    """

    run_id: str                        #: warehouse id ("<spec_id>/runN")
    spec_id: str
    source_run_id: str                 #: the run graph's own id (lint subject)
    step_rows: List[Tuple[str, str]] = field(default_factory=list)
    io_rows: List[Tuple[str, str, str]] = field(default_factory=list)
    user_inputs: List[str] = field(default_factory=list)
    final_outputs: List[str] = field(default_factory=list)
    findings: List["Finding"] = field(default_factory=list)
    closure: Optional["LineageClosure"] = None
    #: Deferred ``run.validate()`` failure: raised at gate time, *after*
    #: the lint gate, mirroring the serial lint-then-store order.
    error: Optional[Exception] = None


@dataclass
class _PrepareTask:
    """Input of the prepare worker (picklable for process pools)."""

    run: WorkflowRun
    spec_id: str
    run_id: str
    index: bool


def prepare_run(task: _PrepareTask) -> PreparedRun:
    """The prepare stage: rows + lint facts + (optionally) the closure.

    Pure function of the task — no warehouse access, no shared state — so
    it parallelizes over threads or processes.  The rows are shaped exactly
    once and shared by all three consumers (lint, store, closure); the
    serial path extracts them from the graph twice and reads them back
    from SQL a third time for the index build.
    """
    from ..lint.rules_run import RunFacts, lint_run_facts
    from ..provenance.index import closure_from_rows

    run = task.run
    prepared = PreparedRun(
        run_id=task.run_id, spec_id=task.spec_id, source_run_id=run.run_id
    )
    try:
        run.validate()
    except ZoomError as exc:
        prepared.error = exc
    # Shape rows straight off the adjacency maps: one dict walk per step
    # instead of the per-step edge-view objects of inputs_of/outputs_of,
    # which dominate the prepare profile at warehouse run counts.
    pred = run.graph.pred
    succ = run.graph.succ
    for step in run.steps():
        step_id = step.step_id
        if step_id not in pred:
            # Same failure the serial path's inputs_of() raises on a step
            # table that disagrees with the graph.
            raise RunError("unknown run node %r" % step_id)
        prepared.step_rows.append((step_id, step.module))
        ins: set = set()
        for attrs in pred[step_id].values():
            ins |= attrs["data"]
        outs: set = set()
        for attrs in succ[step_id].values():
            outs |= attrs["data"]
        for data_id in sorted(ins):
            prepared.io_rows.append((step_id, data_id, DIR_IN))
        for data_id in sorted(outs):
            prepared.io_rows.append((step_id, data_id, DIR_OUT))
    user_inputs: set = set()
    for attrs in succ[INPUT].values():
        user_inputs |= attrs["data"]
    final_outputs: set = set()
    for attrs in pred[OUTPUT].values():
        final_outputs |= attrs["data"]
    prepared.user_inputs = sorted(user_inputs)
    prepared.final_outputs = sorted(final_outputs)

    # Identical facts to RunFacts.from_run(run) — same row order, same
    # spec attachment — so the findings match the serial lint_run() pass.
    facts = RunFacts.from_rows(
        run.run_id,
        list(prepared.step_rows),
        list(prepared.io_rows),
        frozenset(prepared.user_inputs),
        frozenset(prepared.final_outputs),
    )
    facts.attach_spec(run.spec.modules, run.spec.edges())
    prepared.findings = lint_run_facts(facts)

    if task.index and prepared.error is None:
        prepared.closure = closure_from_rows(
            task.run_id,
            prepared.step_rows,
            prepared.io_rows,
            prepared.user_inputs,
        )
    return prepared


def _make_executor(jobs: int, pool: str) -> Executor:
    if pool == "process":
        return ProcessPoolExecutor(max_workers=jobs)
    if pool == "thread":
        return ThreadPoolExecutor(max_workers=jobs)
    raise ValueError("pool must be 'thread' or 'process', not %r" % pool)


def ingest_dataset(
    warehouse: ProvenanceWarehouse,
    items: Iterable[Tuple[WorkflowSpec, Sequence[SimulationResult]]],
    *,
    jobs: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    with_standard_views: bool = True,
    strict: bool = False,
    index: bool = False,
    pool: str = "thread",
) -> List[LoadedSpec]:
    """Ingest a workload through the batched, parallel pipeline.

    Parameters
    ----------
    jobs:
        Worker count for the prepare stage.  ``0`` (the default) prepares
        inline on the calling thread — still batched, no pool.  With
        threads the prepare of batch *k+1* overlaps the SQLite commit of
        batch *k*; a process pool adds true CPU parallelism at pickling
        cost.
    batch_size:
        Runs per ``store_many`` transaction (and per strict-gate unit).
    pool:
        ``"thread"`` (default) or ``"process"``.
    with_standard_views / strict / index:
        As in :func:`~repro.warehouse.loader.load_dataset`.  When the
        warehouse was opened with ``auto_index=True``, closures are
        computed (and stored) exactly as if ``index=True`` — same contract
        as the serial ``store_run`` path; provlint's ``WH039`` flags
        ingestion paths that skip this.

    Specs (with their views) are loaded first, serially, through
    :func:`~repro.warehouse.loader.load_spec` — they are few and cheap.
    Runs then flow through prepare -> gate -> bulk write in deterministic
    workload order.  Returns one :class:`LoadedSpec` per item, exactly as
    the serial path does.
    """
    from ..lint import Linter

    if batch_size < 1:
        raise ValueError("batch_size must be >= 1, not %d" % batch_size)
    registry = get_registry()
    linter = Linter()
    effective_index = index or bool(getattr(warehouse, "auto_index", False))

    records: List[LoadedSpec] = []
    tasks: List[_PrepareTask] = []
    owners: List[LoadedSpec] = []  # owners[i] owns tasks[i]'s run id
    for spec, simulations in items:
        record = load_spec(
            warehouse, spec, with_standard_views=with_standard_views,
            strict=strict,
        )
        registry.counter("ingest.specs").increment()
        records.append(record)
        for number, simulation in enumerate(simulations, start=1):
            run = simulation.run
            if run.spec is not spec and run.spec != spec:
                raise WarehouseError(
                    "run %r does not match stored spec %r"
                    % (run.run_id, record.spec_id)
                )
            run_id = "%s/run%d" % (record.spec_id, number)
            tasks.append(_PrepareTask(
                run=run, spec_id=record.spec_id, run_id=run_id,
                index=effective_index,
            ))
            owners.append(record)

    def _flush(batch: List[PreparedRun], batch_owners: List[LoadedSpec]) -> None:
        with registry.time("ingest.gate"):
            for prepared in batch:
                report = linter.report_findings(prepared.findings)
                linter.gate(
                    report, "run %r" % prepared.source_run_id, strict
                )
                if prepared.error is not None:
                    raise prepared.error
        with registry.time("ingest.write"):
            warehouse.store_many(batch)
        registry.counter("ingest.batches").increment()
        registry.counter("ingest.runs").increment(len(batch))
        for prepared, owner in zip(batch, batch_owners):
            owner.run_ids.append(prepared.run_id)

    def _consume(results: Iterator[PreparedRun]) -> None:
        batch: List[PreparedRun] = []
        batch_owners: List[LoadedSpec] = []
        prepare_timer = registry.timer("ingest.prepare")
        position = 0
        while True:
            started = perf_counter()
            prepared = next(results, None)
            prepare_timer.observe(perf_counter() - started)
            if prepared is None:
                break
            batch.append(prepared)
            batch_owners.append(owners[position])
            position += 1
            if len(batch) >= batch_size:
                _flush(batch, batch_owners)
                batch, batch_owners = [], []
        if batch:
            _flush(batch, batch_owners)

    with warehouse.bulk_load():
        if jobs and jobs > 0:
            with _make_executor(jobs, pool) as executor:
                # map() preserves input order, so batches are committed in
                # workload order no matter which worker finishes first.
                _consume(iter(executor.map(prepare_run, tasks)))
        else:
            _consume(map(prepare_run, tasks))
    return records


def _closure_task(
    args: Tuple[str, List[Tuple[str, str]], List[Tuple[str, str, str]], List[str]],
) -> "LineageClosure":
    from ..provenance.index import closure_from_rows

    run_id, steps, io_rows, user_inputs = args
    return closure_from_rows(run_id, steps, io_rows, user_inputs)


def build_lineage_indexes(
    warehouse: ProvenanceWarehouse,
    run_ids: Optional[Sequence[str]] = None,
    *,
    jobs: int = 0,
    rebuild: bool = False,
) -> Dict[str, int]:
    """Materialise the lineage index of many runs, fanning out the closures.

    The closure of each run is a pure function of its rows, so with
    ``jobs > 0`` the topological passes run concurrently while the parent
    stores finished closures in run order.  ``jobs=0`` delegates to the
    serial :meth:`~repro.warehouse.base.ProvenanceWarehouse.build_lineage_index`
    reference path.  Returns ``run_id -> closure row count`` for every
    requested run (already-indexed runs keep their count unless
    ``rebuild``).
    """
    registry = get_registry()
    targets = list(run_ids) if run_ids is not None else warehouse.list_runs()
    results: Dict[str, int] = {}
    if jobs <= 0:
        for run_id in targets:
            results[run_id] = warehouse.build_lineage_index(
                run_id, rebuild=rebuild
            )
        return results

    pending: List[str] = []
    rows_args: List[Tuple[str, List[Tuple[str, str]],
                          List[Tuple[str, str, str]], List[str]]] = []
    for run_id in targets:
        existing = warehouse.lineage_row_count(run_id)
        if existing is not None and not rebuild:
            results[run_id] = existing
            continue
        pending.append(run_id)
        rows_args.append((
            run_id,
            warehouse.steps_of_run(run_id),
            warehouse.io_rows(run_id),
            sorted(warehouse.user_inputs(run_id)),
        ))
    with ThreadPoolExecutor(max_workers=jobs) as executor:
        for run_id, closure in zip(pending, executor.map(_closure_task, rows_args)):
            with registry.time("index.build"):
                if warehouse.lineage_row_count(run_id) is not None:
                    warehouse.drop_lineage_index(run_id)
                warehouse._store_lineage_closure(closure)
            results[run_id] = closure.num_rows()
    return {run_id: results[run_id] for run_id in targets}


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "PreparedRun",
    "build_lineage_indexes",
    "ingest_dataset",
    "prepare_run",
]
