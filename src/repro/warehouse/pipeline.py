"""Batched, parallel ingestion: fan out the pure work, bulk-write the rows.

:func:`load_dataset` is the reference ingestion semantics — one run at a
time, one statement at a time.  This module is the high-volume path the
ROADMAP's "sharding, batching, async" north star asks for.  It splits a
workload into the two halves every provenance loader has:

* **prepare** — per-run work that is a *pure function* of the run: graph
  validation, shaping the relational rows (steps, io, user inputs, final
  outputs), computing the raw lint findings over those rows, and — when
  ingestion-time indexing is on — the lineage closure
  (:func:`~repro.provenance.index.closure_from_rows`).  Pure work fans out
  over a thread or process pool and arrives back in deterministic input
  order.
* **write** — committing a whole batch of prepared runs to the warehouse
  in a single transaction through the backends' ``store_many`` bulk API
  (prepared ``executemany`` over the pre-shaped tuples on SQLite).

The pipeline guarantees **result parity with the serial path**: the same
workload ingested through :func:`ingest_dataset` — at any ``jobs`` /
``batch_size`` — produces byte-identical warehouse rows, identical lint
findings and identical ``lint.<RULE_ID>`` metric counts as a plain
:func:`~repro.warehouse.loader.load_dataset` call.  ``tests/test_pipeline.py``
asserts this on generated workloads for both backends.

The one *failure-path* difference is batch atomicity: the serial path
commits run ``k`` before looking at run ``k+1``, so a mid-workload lint
rejection leaves every earlier run stored.  Here a batch is gated as a
unit **before** its single transaction, so a ``strict=True`` rejection (or
an invalid run) aborts the whole failing batch — earlier batches stay
committed, the failing batch leaves no partial rows behind.

Every batch is also **journalled** (:mod:`repro.warehouse.recovery`):
pending rows with content checksums before the commit, committed marks
after — so a crashed load is repairable (``zoom recover``) and resumable
(``ingest_dataset(resume=True)``), and ``on_error="quarantine"`` diverts
failing runs into the warehouse quarantine instead of aborting the
dataset.

Per-stage observability lands in the default metrics registry:
``ingest.prepare`` / ``ingest.gate`` / ``ingest.write`` timers and the
``ingest.runs`` / ``ingest.batches`` / ``ingest.specs`` /
``ingest.skipped`` / ``ingest.quarantined`` counters.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import RunError, WarehouseError, ZoomError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..core.view import admin_view, blackbox_view
from ..faults import FaultPlan
from ..faults import hit as fault_hit
from ..obs.metrics import get_registry
from ..run.executor import SimulationResult
from ..run.run import WorkflowRun
from .base import ProvenanceWarehouse
from .loader import LoadedSpec, load_spec
from .recovery import (
    JournalEntry,
    QuarantineRecord,
    event_index_of,
    recover,
    run_checksum,
)
from .schema import DIR_IN, DIR_OUT

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids import cycles
    from ..lint.findings import Finding
    from ..provenance.index import LineageClosure
    from ..provenance.labels import LineageLabels

#: Default number of prepared runs committed per transaction.
DEFAULT_BATCH_SIZE = 32


@dataclass
class PreparedRun:
    """One run, reduced to the exact rows the warehouse will hold.

    Produced by the prepare stage (possibly in a worker thread/process)
    and consumed by the backends' ``store_many``.  ``findings`` are the
    *raw* rule findings — the parent process applies the linter's config
    and metrics policy so counters land in the right registry.
    """

    run_id: str                        #: warehouse id ("<spec_id>/runN")
    spec_id: str
    source_run_id: str                 #: the run graph's own id (lint subject)
    step_rows: List[Tuple[str, str]] = field(default_factory=list)
    io_rows: List[Tuple[str, str, str]] = field(default_factory=list)
    user_inputs: List[str] = field(default_factory=list)
    final_outputs: List[str] = field(default_factory=list)
    findings: List["Finding"] = field(default_factory=list)
    closure: Optional["LineageClosure"] = None
    labels: Optional["LineageLabels"] = None
    #: Deferred ``run.validate()`` failure: raised at gate time, *after*
    #: the lint gate, mirroring the serial lint-then-store order.
    error: Optional[Exception] = None
    #: Content hash of the shaped rows (:func:`~repro.warehouse.recovery.
    #: run_checksum`), journalled before the batch commit so recovery can
    #: tell a fully stored run from a half-applied one.
    checksum: str = ""


@dataclass
class _PrepareTask:
    """Input of the prepare worker (picklable for process pools)."""

    run: WorkflowRun
    spec_id: str
    run_id: str
    index: bool
    labels: bool = False


def prepare_run(task: _PrepareTask) -> PreparedRun:
    """The prepare stage: rows + lint facts + (optionally) the closure.

    Pure function of the task — no warehouse access, no shared state — so
    it parallelizes over threads or processes.  The rows are shaped exactly
    once and shared by all three consumers (lint, store, closure); the
    serial path extracts them from the graph twice and reads them back
    from SQL a third time for the index build.
    """
    from ..lint.rules_run import RunFacts, lint_run_facts
    from ..provenance.index import closure_from_rows
    from ..provenance.labels import labels_from_rows

    run = task.run
    prepared = PreparedRun(
        run_id=task.run_id, spec_id=task.spec_id, source_run_id=run.run_id
    )
    try:
        run.validate()
    except ZoomError as exc:
        prepared.error = exc
    # Shape rows straight off the adjacency maps: one dict walk per step
    # instead of the per-step edge-view objects of inputs_of/outputs_of,
    # which dominate the prepare profile at warehouse run counts.
    pred = run.graph.pred
    succ = run.graph.succ
    for step in run.steps():
        step_id = step.step_id
        if step_id not in pred:
            # Same failure the serial path's inputs_of() raises on a step
            # table that disagrees with the graph.
            raise RunError("unknown run node %r" % step_id)
        prepared.step_rows.append((step_id, step.module))
        ins: set = set()
        for attrs in pred[step_id].values():
            ins |= attrs["data"]
        outs: set = set()
        for attrs in succ[step_id].values():
            outs |= attrs["data"]
        for data_id in sorted(ins):
            prepared.io_rows.append((step_id, data_id, DIR_IN))
        for data_id in sorted(outs):
            prepared.io_rows.append((step_id, data_id, DIR_OUT))
    user_inputs: set = set()
    for attrs in succ[INPUT].values():
        user_inputs |= attrs["data"]
    final_outputs: set = set()
    for attrs in pred[OUTPUT].values():
        final_outputs |= attrs["data"]
    prepared.user_inputs = sorted(user_inputs)
    prepared.final_outputs = sorted(final_outputs)

    # Identical facts to RunFacts.from_run(run) — same row order, same
    # spec attachment — so the findings match the serial lint_run() pass.
    facts = RunFacts.from_rows(
        run.run_id,
        list(prepared.step_rows),
        list(prepared.io_rows),
        frozenset(prepared.user_inputs),
        frozenset(prepared.final_outputs),
    )
    facts.attach_spec(run.spec.modules, run.spec.edges())
    prepared.findings = lint_run_facts(facts)

    if task.index and prepared.error is None:
        prepared.closure = closure_from_rows(
            task.run_id,
            prepared.step_rows,
            prepared.io_rows,
            prepared.user_inputs,
        )
    if task.labels and prepared.error is None:
        prepared.labels = labels_from_rows(
            task.run_id,
            prepared.step_rows,
            prepared.io_rows,
            prepared.user_inputs,
        )
    prepared.checksum = run_checksum(
        prepared.spec_id,
        prepared.step_rows,
        prepared.io_rows,
        prepared.user_inputs,
        prepared.final_outputs,
    )
    return prepared


def _prepare_quarantinable(task: _PrepareTask) -> PreparedRun:
    """:func:`prepare_run` that converts its own failures into records.

    Only used under ``on_error="quarantine"``: a raising worker would
    poison the executor's result iterator and abort the whole dataset —
    exactly what quarantine mode promises not to do.  Module-level so it
    pickles for process pools.
    """
    try:
        return prepare_run(task)
    except ZoomError as exc:
        prepared = PreparedRun(
            run_id=task.run_id, spec_id=task.spec_id,
            source_run_id=task.run.run_id,
        )
        prepared.error = exc
        return prepared


def _make_executor(jobs: int, pool: str) -> Executor:
    if pool == "process":
        return ProcessPoolExecutor(max_workers=jobs)
    if pool == "thread":
        return ThreadPoolExecutor(max_workers=jobs)
    raise ValueError("pool must be 'thread' or 'process', not %r" % pool)


def _annotate_committed(exc: BaseException, committed: List[str]) -> None:
    """Append the committed-so-far run ids to an aborting exception.

    A mid-workload failure leaves every earlier batch committed; without
    this note the caller has no record of how far the load got.  The
    original exception object is re-raised unchanged in type (tests and
    callers match on type and message), only its first arg is extended.
    """
    if not committed or not exc.args:
        return
    note = " [committed before failure: %s]" % ", ".join(committed)
    exc.args = (str(exc.args[0]) + note,) + exc.args[1:]


def _quarantine_prepared(
    warehouse: ProvenanceWarehouse,
    prepared: PreparedRun,
    exc: BaseException,
) -> None:
    """Divert a failed run into the warehouse quarantine."""
    warehouse.quarantine_add(QuarantineRecord(
        run_id=prepared.run_id,
        spec_id=prepared.spec_id,
        source_run_id=prepared.source_run_id,
        reason="%s: %s" % (type(exc).__name__, exc),
        event_index=event_index_of(exc),
        step_rows=list(prepared.step_rows),
        io_rows=list(prepared.io_rows),
        user_inputs=list(prepared.user_inputs),
        final_outputs=list(prepared.final_outputs),
        checksum=prepared.checksum,
    ))
    get_registry().counter("ingest.quarantined").increment()


def _resumable_load_spec(
    warehouse: ProvenanceWarehouse,
    spec: WorkflowSpec,
    with_standard_views: bool,
    strict: bool,
) -> LoadedSpec:
    """:func:`load_spec` that tolerates a spec the crashed load stored.

    An equal stored spec is reused (missing standard views are filled
    in); a *conflicting* one is an error — resuming must never silently
    mix two workloads under one id.
    """
    spec_id = spec.name
    if spec_id not in warehouse.list_specs():
        return load_spec(
            warehouse, spec, with_standard_views=with_standard_views,
            strict=strict,
        )
    if warehouse.get_spec(spec_id) != spec:
        raise WarehouseError(
            "cannot resume: stored spec %r differs from the workload's"
            % spec_id
        )
    record = LoadedSpec(spec_id=spec_id)
    if with_standard_views:
        stored_views = set(warehouse.list_views(spec_id))
        for view in (admin_view(spec), blackbox_view(spec)):
            view_id = "%s/%s" % (spec_id, view.name)
            if view_id not in stored_views:
                warehouse.store_view(view, spec_id, view_id=view_id)
            record.view_ids[view.name] = view_id
    return record


def ingest_dataset(
    warehouse: ProvenanceWarehouse,
    items: Iterable[Tuple[WorkflowSpec, Sequence[SimulationResult]]],
    *,
    jobs: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    with_standard_views: bool = True,
    strict: bool = False,
    index: bool = False,
    labels: bool = False,
    pool: str = "thread",
    on_error: str = "abort",
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
) -> List[LoadedSpec]:
    """Ingest a workload through the batched, parallel pipeline.

    Parameters
    ----------
    jobs:
        Worker count for the prepare stage.  ``0`` (the default) prepares
        inline on the calling thread — still batched, no pool.  With
        threads the prepare of batch *k+1* overlaps the SQLite commit of
        batch *k*; a process pool adds true CPU parallelism at pickling
        cost.
    batch_size:
        Runs per ``store_many`` transaction (and per strict-gate unit).
    pool:
        ``"thread"`` (default) or ``"process"``.
    with_standard_views / strict / index:
        As in :func:`~repro.warehouse.loader.load_dataset`.  When the
        warehouse was opened with ``auto_index=True``, closures are
        computed (and stored) exactly as if ``index=True`` — same contract
        as the serial ``store_run`` path; provlint's ``WH039`` flags
        ingestion paths that skip this.
    labels:
        Also compute the compact reachability labels
        (:func:`~repro.provenance.labels.labels_from_rows`) in the prepare
        stage and persist them with the batch, so ``strategy="labeled"``
        queries never pay a first-query build.  Orthogonal to ``index``:
        either, both, or neither may be materialised at ingestion time.
    on_error:
        ``"abort"`` (default) keeps the historical semantics: the first
        failing run aborts the load, with the committed-so-far run ids
        appended to the exception message.  ``"quarantine"`` isolates
        failing runs — lint-gate rejections, validation errors, per-run
        storage failures — into the warehouse quarantine
        (``zoom quarantine list|show|retry``) and keeps loading; each
        diversion bumps the ``ingest.quarantined`` counter.
    resume:
        Continue a crashed load: first :func:`~repro.warehouse.recovery.
        recover` settles the ingest journal (integrity repair, roll
        forward/back), then every run the warehouse already holds is
        skipped (``ingest.skipped`` counter; skipped runs are *not*
        counted under ``ingest.runs``) and only the remainder is
        prepared and stored.  Specs and views stored by the crashed
        attempt are reused.
    faults:
        A :class:`~repro.faults.FaultPlan` for the pipeline-level fault
        sites (``journal.pending``, ``journal.mark``, per-run failures).
        Defaults to the warehouse's own ``faults`` attribute so one plan
        covers both layers.

    Every batch is journalled ``pending`` (run ids + content checksums)
    before its transaction commits and marked ``committed`` after, so a
    crash at any point is repairable by ``zoom recover`` and resumable
    with ``resume=True`` — the chaos suite asserts convergence to the
    uninterrupted result.  Specs (with their views) are loaded first,
    serially — they are few and cheap.  Runs then flow through
    prepare -> gate -> journal -> bulk write in deterministic workload
    order.  Returns one :class:`LoadedSpec` per item, exactly as the
    serial path does.
    """
    from ..lint import Linter

    if batch_size < 1:
        raise ValueError("batch_size must be >= 1, not %d" % batch_size)
    if on_error not in ("abort", "quarantine"):
        raise ValueError(
            "on_error must be 'abort' or 'quarantine', not %r" % on_error
        )
    registry = get_registry()
    linter = Linter()
    effective_index = index or bool(getattr(warehouse, "auto_index", False))
    plan = faults if faults is not None else getattr(warehouse, "faults", None)

    already: frozenset = frozenset()
    open_streams: frozenset = frozenset()
    if resume:
        recover(warehouse)
        # After recovery every stored run is verified (journal-committed
        # or checksum-matched), so presence alone is the skip criterion —
        # it also covers runs a serial, journal-less path loaded.
        already = frozenset(warehouse.list_runs())
        # A run still open for streaming appends is mid-flight under the
        # other ingestion protocol: its rows are a valid prefix, not the
        # finished run, so neither skipping nor re-storing it is right.
        open_streams = frozenset(warehouse.stream_states())

    records: List[LoadedSpec] = []
    tasks: List[_PrepareTask] = []
    owners: List[LoadedSpec] = []  # owners[i] owns tasks[i]'s run id
    for spec, simulations in items:
        if resume:
            record = _resumable_load_spec(
                warehouse, spec, with_standard_views, strict
            )
        else:
            record = load_spec(
                warehouse, spec, with_standard_views=with_standard_views,
                strict=strict,
            )
        registry.counter("ingest.specs").increment()
        records.append(record)
        for number, simulation in enumerate(simulations, start=1):
            run = simulation.run
            if run.spec is not spec and run.spec != spec:
                raise WarehouseError(
                    "run %r does not match stored spec %r"
                    % (run.run_id, record.spec_id)
                )
            run_id = "%s/run%d" % (record.spec_id, number)
            if run_id in open_streams:
                raise WarehouseError(
                    "cannot resume over run %r: it is open for streaming"
                    " appends — finalize it (or let the streaming ingestor"
                    " resume it) instead of re-ingesting the batch" % run_id
                )
            if run_id in already:
                record.run_ids.append(run_id)
                registry.counter("ingest.skipped").increment()
                continue
            tasks.append(_PrepareTask(
                run=run, spec_id=record.spec_id, run_id=run_id,
                index=effective_index, labels=labels,
            ))
            owners.append(record)

    committed_ids: List[str] = []
    batch_counter = [0]

    def _flush(batch: List[PreparedRun], batch_owners: List[LoadedSpec]) -> None:
        batch_counter[0] += 1
        survivors: List[PreparedRun] = []
        survivor_owners: List[LoadedSpec] = []
        with registry.time("ingest.gate"):
            for prepared, owner in zip(batch, batch_owners):
                try:
                    if plan is not None:
                        plan.check_run(prepared.run_id)
                    report = linter.report_findings(prepared.findings)
                    linter.gate(
                        report, "run %r" % prepared.source_run_id, strict
                    )
                    if prepared.error is not None:
                        raise prepared.error
                except ZoomError as exc:
                    if on_error == "quarantine":
                        _quarantine_prepared(warehouse, prepared, exc)
                        continue
                    _annotate_committed(exc, committed_ids)
                    raise
                survivors.append(prepared)
                survivor_owners.append(owner)
        if not survivors:
            return
        warehouse.journal_begin([
            JournalEntry(
                run_id=p.run_id, spec_id=p.spec_id, checksum=p.checksum,
                batch=batch_counter[0],
            )
            for p in survivors
        ])
        # Crash window: pending journal rows exist, the batch has not
        # committed — the "torn journal" state WH041 reports and a
        # resumed load re-ingests.
        fault_hit(plan, "journal.pending")
        stored: List[Tuple[PreparedRun, LoadedSpec]] = []
        try:
            with registry.time("ingest.write"):
                warehouse.store_many(survivors)
        except ZoomError as exc:
            if on_error == "abort":
                # The batch transaction stored nothing; its pending
                # journal rows are a truthful record of the aborted
                # intent (torn journal — resumable).
                _annotate_committed(exc, committed_ids)
                raise
            # Quarantine mode: salvage the batch run by run, diverting
            # only the runs that actually fail.
            for prepared, owner in zip(survivors, survivor_owners):
                try:
                    warehouse.store_many([prepared])
                except ZoomError as exc_run:
                    warehouse.journal_discard([prepared.run_id])
                    _quarantine_prepared(warehouse, prepared, exc_run)
                else:
                    stored.append((prepared, owner))
        else:
            stored = list(zip(survivors, survivor_owners))
        # Crash window: the batch is durably committed but still marked
        # pending — recovery rolls it forward by checksum.
        fault_hit(plan, "journal.mark")
        warehouse.journal_commit([p.run_id for p, _owner in stored])
        registry.counter("ingest.batches").increment()
        registry.counter("ingest.runs").increment(len(stored))
        for prepared, owner in stored:
            owner.run_ids.append(prepared.run_id)
            committed_ids.append(prepared.run_id)

    def _consume(results: Iterator[PreparedRun]) -> None:
        batch: List[PreparedRun] = []
        batch_owners: List[LoadedSpec] = []
        prepare_timer = registry.timer("ingest.prepare")
        position = 0
        while True:
            started = perf_counter()
            prepared = next(results, None)
            prepare_timer.observe(perf_counter() - started)
            if prepared is None:
                break
            batch.append(prepared)
            batch_owners.append(owners[position])
            position += 1
            if len(batch) >= batch_size:
                _flush(batch, batch_owners)
                batch, batch_owners = [], []
        if batch:
            _flush(batch, batch_owners)

    prepare = _prepare_quarantinable if on_error == "quarantine" else prepare_run
    with warehouse.bulk_load():
        if jobs and jobs > 0:
            with _make_executor(jobs, pool) as executor:
                # map() preserves input order, so batches are committed in
                # workload order no matter which worker finishes first.
                _consume(iter(executor.map(prepare, tasks)))
        else:
            _consume(map(prepare, tasks))
    return records


def _closure_task(
    args: Tuple[str, List[Tuple[str, str]], List[Tuple[str, str, str]], List[str]],
) -> "LineageClosure":
    from ..provenance.index import closure_from_rows

    run_id, steps, io_rows, user_inputs = args
    return closure_from_rows(run_id, steps, io_rows, user_inputs)


def _labels_task(
    args: Tuple[str, List[Tuple[str, str]], List[Tuple[str, str, str]], List[str]],
) -> "LineageLabels":
    from ..provenance.labels import labels_from_rows

    run_id, steps, io_rows, user_inputs = args
    return labels_from_rows(run_id, steps, io_rows, user_inputs)


def build_lineage_indexes(
    warehouse: ProvenanceWarehouse,
    run_ids: Optional[Sequence[str]] = None,
    *,
    jobs: int = 0,
    rebuild: bool = False,
    kind: str = "closure",
) -> Dict[str, int]:
    """Materialise the lineage index of many runs, fanning out the builds.

    Both index kinds — the ``"closure"`` (pairwise lineage rows) and the
    ``"labeled"`` compact reachability labels — are pure functions of a
    run's rows, so with ``jobs > 0`` the topological passes run
    concurrently while the parent stores finished structures in run
    order.  ``jobs=0`` delegates to the serial
    :meth:`~repro.warehouse.base.ProvenanceWarehouse.build_lineage_index` /
    :meth:`~repro.warehouse.base.ProvenanceWarehouse.build_label_index`
    reference paths.  Returns ``run_id -> stored row count`` for every
    requested run (already-indexed runs keep their count unless
    ``rebuild``).
    """
    if kind not in ("closure", "labeled"):
        raise ValueError(
            "kind must be 'closure' or 'labeled', not %r" % kind
        )
    registry = get_registry()
    targets = list(run_ids) if run_ids is not None else warehouse.list_runs()
    results: Dict[str, int] = {}
    if jobs <= 0:
        for run_id in targets:
            if kind == "labeled":
                results[run_id] = warehouse.build_label_index(
                    run_id, rebuild=rebuild
                )
            else:
                results[run_id] = warehouse.build_lineage_index(
                    run_id, rebuild=rebuild
                )
        return results

    row_count = (
        warehouse.label_row_count if kind == "labeled"
        else warehouse.lineage_row_count
    )
    pending: List[str] = []
    rows_args: List[Tuple[str, List[Tuple[str, str]],
                          List[Tuple[str, str, str]], List[str]]] = []
    for run_id in targets:
        existing = row_count(run_id)
        if existing is not None and not rebuild:
            results[run_id] = existing
            continue
        pending.append(run_id)
        rows_args.append((
            run_id,
            warehouse.steps_of_run(run_id),
            warehouse.io_rows(run_id),
            sorted(warehouse.user_inputs(run_id)),
        ))
    with ThreadPoolExecutor(max_workers=jobs) as executor:
        if kind == "labeled":
            for run_id, labels in zip(
                pending, executor.map(_labels_task, rows_args)
            ):
                with registry.time("labels.build"):
                    if warehouse.label_row_count(run_id) is not None:
                        warehouse.drop_label_index(run_id)
                    warehouse._store_lineage_labels(labels)
                results[run_id] = labels.num_rows()
        else:
            for run_id, closure in zip(
                pending, executor.map(_closure_task, rows_args)
            ):
                with registry.time("index.build"):
                    if warehouse.lineage_row_count(run_id) is not None:
                        warehouse.drop_lineage_index(run_id)
                    warehouse._store_lineage_closure(closure)
                results[run_id] = closure.num_rows()
    return {run_id: results[run_id] for run_id in targets}


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "PreparedRun",
    "build_lineage_indexes",
    "ingest_dataset",
    "prepare_run",
]
