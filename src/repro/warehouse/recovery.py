"""Crash recovery for batched ingestion: journal, checksums, quarantine.

PR 4's bulk pipeline trades durability for throughput (``synchronous=OFF``,
multi-run transactions, deferred indexes) — a crash mid-load can leave the
warehouse partially loaded with no record of how far it got.  This module
is the write-ahead manifest that makes those loads **crash-safe and
resumable**:

* Before a batch commits, the pipeline journals one ``pending`` row per
  run — warehouse id, spec id and a :func:`run_checksum` over the exact
  relational rows about to be stored.  After the commit the rows are
  marked ``committed``.  The journal lives next to the data it describes
  (a ``_ingest_journal`` table in SQLite, a dict in memory), so it crashes
  and recovers with it.
* :func:`recover` replays the journal on the crashed warehouse: a pending
  run whose stored rows match its checksum is rolled **forward** (marked
  committed); a mismatching one is rolled **back** (deleted, left pending);
  a pending entry with no stored run is a **torn** ingest, reported and
  left for ``load_dataset(resume=True)`` to re-ingest.  The warehouse's
  own integrity probe (``PRAGMA quick_check`` + expected-index repair)
  runs first, so a kill between ``bulk_load``'s index drop and rebuild is
  healed in the same pass.
* Runs that fail *individually* — lint-gate rejections, validation
  errors, mid-batch storage failures — can be diverted into a
  **quarantine** (``ingest_dataset(on_error="quarantine")``) instead of
  aborting the dataset: a :class:`QuarantineRecord` keeps the shaped rows,
  the original exception and the offending event index, inspectable and
  re-ingestable via ``zoom quarantine list|show|retry``.

The chaos suite (``tests/test_recovery.py``) drives every crash site of
:mod:`repro.faults` through this module and asserts byte-identical
convergence with an uninterrupted load.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ZoomError
from ..obs.metrics import get_registry
from .base import ProvenanceWarehouse

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids import cycles
    from .pipeline import PreparedRun

#: Journal state: rows written, batch commit not yet confirmed.
JOURNAL_PENDING = "pending"

#: Journal state: the run's batch transaction is durably committed.
JOURNAL_COMMITTED = "committed"


@dataclass(frozen=True)
class JournalEntry:
    """One ingest-journal row: a run the pipeline intends (or managed) to
    store, with the checksum its stored rows must hash to."""

    run_id: str
    spec_id: str
    checksum: str
    batch: int
    state: str = JOURNAL_PENDING


@dataclass
class QuarantineRecord:
    """A failed run, preserved with enough context to inspect and retry.

    ``reason`` is the original exception (type and message);
    ``event_index`` names the offending log event when the error carries
    one.  The shaped relational rows ride along so ``retry`` can re-gate
    and re-store without the original workload in hand.
    """

    run_id: str
    spec_id: str
    source_run_id: str
    reason: str
    event_index: Optional[int] = None
    step_rows: List[Tuple[str, str]] = field(default_factory=list)
    io_rows: List[Tuple[str, str, str]] = field(default_factory=list)
    user_inputs: List[str] = field(default_factory=list)
    final_outputs: List[str] = field(default_factory=list)
    checksum: str = ""

    def to_payload(self) -> str:
        """The row payload persisted by the SQLite backend (JSON)."""
        return json.dumps({
            "source_run_id": self.source_run_id,
            "step_rows": [list(r) for r in self.step_rows],
            "io_rows": [list(r) for r in self.io_rows],
            "user_inputs": list(self.user_inputs),
            "final_outputs": list(self.final_outputs),
            "checksum": self.checksum,
        }, sort_keys=True)

    @classmethod
    def from_payload(
        cls,
        run_id: str,
        spec_id: str,
        reason: str,
        event_index: Optional[int],
        payload: str,
    ) -> "QuarantineRecord":
        data = json.loads(payload)
        return cls(
            run_id=run_id,
            spec_id=spec_id,
            source_run_id=data.get("source_run_id", run_id),
            reason=reason,
            event_index=event_index,
            step_rows=[tuple(r) for r in data.get("step_rows", [])],
            io_rows=[tuple(r) for r in data.get("io_rows", [])],
            user_inputs=list(data.get("user_inputs", [])),
            final_outputs=list(data.get("final_outputs", [])),
            checksum=data.get("checksum", ""),
        )

    def to_prepared(self) -> "PreparedRun":
        """Rebuild the bulk-storable form (for ``quarantine retry``)."""
        from .pipeline import PreparedRun

        return PreparedRun(
            run_id=self.run_id,
            spec_id=self.spec_id,
            source_run_id=self.source_run_id,
            step_rows=list(self.step_rows),
            io_rows=list(self.io_rows),
            user_inputs=list(self.user_inputs),
            final_outputs=list(self.final_outputs),
            checksum=self.checksum or run_checksum(
                self.spec_id, self.step_rows, self.io_rows,
                self.user_inputs, self.final_outputs,
            ),
        )


@dataclass
class RecoveryReport:
    """What :func:`recover` found and fixed.

    The ``stream_*`` lists cover runs that were *open for streaming*
    (:meth:`~repro.warehouse.base.ProvenanceWarehouse.stream_states`)
    when the crash hit: an epoch rolled forward by checksum, an append
    truncated back to the last committed epoch, or a run whose
    lineage/label indexes trailed its committed epoch and were dropped
    for lazy rebuild.
    """

    integrity_ok: bool = True
    repaired_indexes: List[str] = field(default_factory=list)
    marked_committed: List[str] = field(default_factory=list)
    rolled_back: List[str] = field(default_factory=list)
    torn_journal: List[str] = field(default_factory=list)
    stream_rolled_forward: List[str] = field(default_factory=list)
    stream_truncated: List[str] = field(default_factory=list)
    stream_desynced: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing needed fixing and nothing is left torn."""
        return (
            self.integrity_ok
            and not self.repaired_indexes
            and not self.marked_committed
            and not self.rolled_back
            and not self.torn_journal
            and not self.stream_rolled_forward
            and not self.stream_truncated
            and not self.stream_desynced
        )

    def summary(self) -> str:
        lines = [
            "integrity: %s" % ("ok" if self.integrity_ok else "FAILED"),
        ]
        if self.repaired_indexes:
            lines.append(
                "repaired indexes: %s" % ", ".join(self.repaired_indexes)
            )
        if self.marked_committed:
            lines.append(
                "rolled forward (marked committed): %s"
                % ", ".join(self.marked_committed)
            )
        if self.rolled_back:
            lines.append(
                "rolled back (left pending): %s" % ", ".join(self.rolled_back)
            )
        if self.torn_journal:
            lines.append(
                "torn journal (re-load with --resume): %s"
                % ", ".join(self.torn_journal)
            )
        if self.stream_rolled_forward:
            lines.append(
                "stream epochs rolled forward: %s"
                % ", ".join(self.stream_rolled_forward)
            )
        if self.stream_truncated:
            lines.append(
                "stream appends truncated (resume re-sends): %s"
                % ", ".join(self.stream_truncated)
            )
        if self.stream_desynced:
            lines.append(
                "stream indexes dropped (delta_epoch trailed): %s"
                % ", ".join(self.stream_desynced)
            )
        if self.clean:
            lines.append("journal: clean")
        return "\n".join(lines)


def run_checksum(
    spec_id: str,
    step_rows: Iterable[Tuple[str, str]],
    io_rows: Iterable[Tuple[str, str, str]],
    user_inputs: Iterable[str],
    final_outputs: Iterable[str],
) -> str:
    """Content hash of a run's relational rows, order-independent.

    SHA-256 over a canonical JSON form with every relation sorted, so the
    same hash comes out of a :class:`~repro.warehouse.pipeline.PreparedRun`
    (rows in shaping order) and out of the stored warehouse rows (rows in
    backend iteration order).  The lineage closure is deliberately
    excluded: it is derived data, rebuildable from these rows.
    """
    payload = {
        "spec_id": spec_id,
        "steps": sorted([s, m] for s, m in step_rows),
        "io": sorted([s, d, direction] for s, d, direction in io_rows),
        "user_inputs": sorted(user_inputs),
        "final_outputs": sorted(final_outputs),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def checksum_stored_run(warehouse: ProvenanceWarehouse, run_id: str) -> str:
    """:func:`run_checksum` recomputed from what the warehouse holds."""
    return run_checksum(
        warehouse.run_spec_id(run_id),
        warehouse.steps_of_run(run_id),
        warehouse.io_rows(run_id),
        warehouse.user_inputs(run_id),
        warehouse.final_outputs(run_id),
    )


def event_index_of(exc: BaseException) -> Optional[int]:
    """The offending log-event index an ingestion error names, if any.

    ``run_from_log`` errors are prefixed ``"event %d (kind): ..."``; an
    explicit ``event_index`` attribute (future-proofing) wins over the
    message parse.
    """
    explicit = getattr(exc, "event_index", None)
    if isinstance(explicit, int):
        return explicit
    match = re.search(r"\bevent (\d+)\b", str(exc))
    return int(match.group(1)) if match else None


def _recover_streams(
    warehouse: ProvenanceWarehouse, report: RecoveryReport
) -> frozenset:
    """Settle every open streaming run; returns their run ids.

    A streaming run holds exactly one journal entry, re-written
    ``pending`` at the start of each epoch and ``committed`` after the
    epoch's rows landed; the ``_stream_state`` row — updated *in the same
    transaction* as the rows — is the last-committed watermark.  Per run:

    * pending entry whose checksum matches the stored rows → the crash
      hit between the atomic apply and the journal mark; roll the epoch
      **forward** (mark committed).
    * pending entry, stored rows matching the *state* checksum instead →
      the epoch never (durably) applied; **truncate** by re-journalling
      the last committed epoch, leaving a resumed append to re-send it.
    * stored rows matching neither checksum → corrupt; the run (and its
      state row) is deleted outright.
    * no journal entry at all → the crash hit inside ``open_run`` before
      its first journal write; re-journal the committed open state.

    After the journal settles, a run whose ``delta_epoch`` trails its
    committed epoch (crash between epoch commit and index delta — lint
    rule ``WH047``) has its lineage/label indexes dropped and the
    watermark advanced: queries rebuild lazily rather than read a stale
    index.
    """
    registry = get_registry()
    states = warehouse.stream_states()
    if not states:
        return frozenset()
    entries = {e.run_id: e for e in warehouse.journal_entries()}
    present = set(warehouse.list_runs())
    for run_id in sorted(states):
        state = states[run_id]
        if run_id not in present:  # pragma: no cover — state row is
            # written in the same transaction as the run definition, so
            # this needs external vandalism; settle it defensively.
            warehouse.stream_close(run_id)
            if run_id in entries:
                warehouse.journal_discard([run_id])
            report.rolled_back.append(run_id)
            continue
        entry = entries.get(run_id)
        stored = checksum_stored_run(warehouse, run_id)
        if entry is not None and entry.state == JOURNAL_COMMITTED:
            pass  # journal already settled; only the delta check remains
        elif entry is not None and stored == entry.checksum:
            warehouse.journal_commit([run_id])
            registry.counter("recovery.stream_rolled_forward").increment()
            report.stream_rolled_forward.append(run_id)
        elif stored == state.checksum:
            # Also covers entry=None: a kill between open_run's state
            # transaction and its journal write leaves epoch 0 committed
            # but unjournalled.
            warehouse.journal_begin([JournalEntry(
                run_id=run_id, spec_id=state.spec_id,
                checksum=state.checksum, batch=state.epoch,
            )])
            warehouse.journal_commit([run_id])
            registry.counter("recovery.stream_truncated").increment()
            report.stream_truncated.append(run_id)
        else:
            # Matches neither the in-flight epoch nor the last committed
            # one: the stored rows are garbage.  delete_run clears the
            # journal row and the stream state with it.
            warehouse.delete_run(run_id)
            registry.counter("recovery.rolled_back").increment()
            report.rolled_back.append(run_id)
            continue
        state = warehouse.stream_state(run_id)
        if state is not None and state.delta_epoch < state.epoch:
            if warehouse.has_lineage_index(run_id):
                warehouse.drop_lineage_index(run_id)
            if warehouse.has_label_index(run_id):
                warehouse.drop_label_index(run_id)
            warehouse.stream_mark_delta(run_id, state.epoch)
            registry.counter("recovery.stream_desynced").increment()
            report.stream_desynced.append(run_id)
    return frozenset(states)


def recover(warehouse: ProvenanceWarehouse) -> RecoveryReport:
    """Repair a warehouse after a crashed (or killed) ingestion.

    Safe to run any time — on a healthy warehouse it is a cheap no-op
    audit.  Four passes:

    1. **Integrity**: the backend's :meth:`integrity_report` with
       ``repair=True`` — ``PRAGMA quick_check`` plus recreation of any
       expected index a kill inside ``bulk_load`` left dropped.
    2. **Streams**: every run open for streaming appends is settled
       epoch-wise — rolled forward, truncated to its last committed
       epoch, or (when its rows match no checksum) deleted; stale index
       deltas are dropped.  See :func:`_recover_streams`.
    3. **Roll forward**: every ``pending`` journal entry whose run is
       stored with rows hashing to the journalled checksum is marked
       ``committed`` (the crash hit after the batch commit, before the
       journal mark).
    4. **Roll back**: a ``pending`` run stored with *mismatching* rows is
       half-applied garbage — it is deleted and its journal entry
       re-written as ``pending``, so a resumed load re-ingests it.

    Pending entries whose run is absent (torn journal, lint rule
    ``WH041``) are reported but left in place: they are precisely the
    work-list ``load_dataset(resume=True)`` needs.

    A warehouse exposing ``recover_shards`` (the sharded federation)
    takes over the whole procedure: each shard runs this function
    locally on its own writer thread, in parallel, and the reports merge
    into one.
    """
    recover_shards = getattr(warehouse, "recover_shards", None)
    if recover_shards is not None:
        return recover_shards()
    registry = get_registry()
    integrity = warehouse.integrity_report(repair=True)
    report = RecoveryReport(
        integrity_ok=bool(integrity.get("ok", True)),
        repaired_indexes=[str(n) for n in integrity.get("repaired", [])],
    )
    streaming = _recover_streams(warehouse, report)
    present = set(warehouse.list_runs())
    for entry in warehouse.journal_entries(state=JOURNAL_PENDING):
        if entry.run_id in streaming:
            continue
        if entry.run_id not in present:
            report.torn_journal.append(entry.run_id)
            continue
        if checksum_stored_run(warehouse, entry.run_id) == entry.checksum:
            warehouse.journal_commit([entry.run_id])
            registry.counter("recovery.marked_committed").increment()
            report.marked_committed.append(entry.run_id)
        else:
            # delete_run clears the journal row as well; re-journal the
            # entry as pending so the resume path re-ingests this run.
            warehouse.delete_run(entry.run_id)
            warehouse.journal_begin([JournalEntry(
                run_id=entry.run_id, spec_id=entry.spec_id,
                checksum=entry.checksum, batch=entry.batch,
            )])
            registry.counter("recovery.rolled_back").increment()
            report.rolled_back.append(entry.run_id)
    return report


def retry_quarantined(
    warehouse: ProvenanceWarehouse,
    run_ids: Optional[Sequence[str]] = None,
    force: bool = False,
) -> Dict[str, str]:
    """Re-gate and re-store quarantined runs; returns run id -> outcome.

    Each run's preserved rows are re-linted against the stored spec and
    pushed through the same journal-then-store protocol the pipeline uses.
    A run that fails the gate again stays quarantined (outcome
    ``"rejected: ..."``) unless ``force=True`` skips the gate.  Outcomes:
    ``"stored"``, ``"rejected: <error>"`` or ``"failed: <error>"``.
    """
    from ..lint import Linter
    from ..lint.findings import LintGateError
    from ..lint.rules_run import RunFacts, lint_run_facts

    linter = Linter()
    targets = list(run_ids) if run_ids is not None else warehouse.quarantine_list()
    outcomes: Dict[str, str] = {}
    for run_id in targets:
        record = warehouse.quarantine_get(run_id)
        prepared = record.to_prepared()
        try:
            if not force:
                facts = RunFacts.from_rows(
                    record.source_run_id,
                    list(record.step_rows),
                    list(record.io_rows),
                    frozenset(record.user_inputs),
                    frozenset(record.final_outputs),
                )
                spec_rows = warehouse.spec_rows(record.spec_id)
                facts.attach_spec(
                    spec_rows["modules"], spec_rows["edges"]  # type: ignore[arg-type]
                )
                report = linter.report_findings(lint_run_facts(facts))
                linter.gate(report, "run %r" % record.source_run_id, True)
            warehouse.journal_begin([JournalEntry(
                run_id=prepared.run_id, spec_id=prepared.spec_id,
                checksum=prepared.checksum, batch=0,
            )])
            warehouse.store_many([prepared])
            warehouse.journal_commit([prepared.run_id])
            warehouse.quarantine_delete(run_id)
        except LintGateError as exc:
            outcomes[run_id] = "rejected: %s" % exc
        except ZoomError as exc:
            outcomes[run_id] = "failed: %s" % exc
        else:
            outcomes[run_id] = "stored"
    return outcomes


__all__ = [
    "JOURNAL_COMMITTED",
    "JOURNAL_PENDING",
    "JournalEntry",
    "QuarantineRecord",
    "RecoveryReport",
    "checksum_stored_run",
    "event_index_of",
    "recover",
    "retry_quarantined",
    "run_checksum",
]
