"""Relational schema of the provenance warehouse (Section IV).

The paper stores workflow specifications, user-view definitions and run
logs in an Oracle warehouse.  This module fixes the analogous relational
schema used by both backends of this reproduction:

``spec(spec_id, name)``
    one row per workflow specification;
``module(spec_id, module)``
    the specification's modules;
``spec_edge(spec_id, src, dst)``
    the specification's edges (``src``/``dst`` may be ``input``/``output``);
``view_def(view_id, spec_id, name)`` and ``view_member(view_id, composite, module)``
    user-view definitions as (composite, member) pairs;
``run_def(run_id, spec_id)`` and ``step(run_id, step_id, module)``
    runs and their steps;
``io(run_id, step_id, data_id, direction)``
    the immediate-provenance relation extracted from the workflow log: one
    row per read (``direction = 'in'``) or write (``'out'``) event;
``user_input(run_id, data_id, who)`` and ``final_output(run_id, data_id)``
    the data fed into and produced by the run as a whole.

Deep provenance is the transitive closure of ``io`` — computed by the
paper with Oracle ``CONNECT BY`` and here with a SQLite ``WITH RECURSIVE``
CTE (or plain BFS in the in-memory backend).
"""

from __future__ import annotations

from typing import Tuple

#: ``direction`` value for a step reading a data object.
DIR_IN = "in"

#: ``direction`` value for a step writing a data object.
DIR_OUT = "out"

#: The secondary indexes over the ``io`` relation, by name.  Kept apart
#: from :data:`SQLITE_DDL` so the bulk loader can drop and recreate them
#: around a large ingestion (one sorted build beats per-row maintenance)
#: without duplicating the definitions.
SQLITE_IO_INDEXES: Tuple[Tuple[str, str], ...] = (
    ("io_by_data", """
    CREATE INDEX IF NOT EXISTS io_by_data
        ON io (run_id, data_id, direction, step_id)
    """),
    ("io_by_step", """
    CREATE INDEX IF NOT EXISTS io_by_step
        ON io (run_id, step_id, direction, data_id)
    """),
)

#: DDL creating all warehouse tables, executed once per SQLite connection.
SQLITE_DDL: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS spec (
        spec_id TEXT PRIMARY KEY,
        name    TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS module (
        spec_id TEXT NOT NULL REFERENCES spec(spec_id),
        module  TEXT NOT NULL,
        PRIMARY KEY (spec_id, module)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS spec_edge (
        spec_id TEXT NOT NULL REFERENCES spec(spec_id),
        src     TEXT NOT NULL,
        dst     TEXT NOT NULL,
        PRIMARY KEY (spec_id, src, dst)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS view_def (
        view_id TEXT PRIMARY KEY,
        spec_id TEXT NOT NULL REFERENCES spec(spec_id),
        name    TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS view_member (
        view_id   TEXT NOT NULL REFERENCES view_def(view_id),
        composite TEXT NOT NULL,
        module    TEXT NOT NULL,
        PRIMARY KEY (view_id, module)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS run_def (
        run_id  TEXT PRIMARY KEY,
        spec_id TEXT NOT NULL REFERENCES spec(spec_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS step (
        run_id  TEXT NOT NULL REFERENCES run_def(run_id),
        step_id TEXT NOT NULL,
        module  TEXT NOT NULL,
        PRIMARY KEY (run_id, step_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS io (
        run_id    TEXT NOT NULL REFERENCES run_def(run_id),
        step_id   TEXT NOT NULL,
        data_id   TEXT NOT NULL,
        direction TEXT NOT NULL CHECK (direction IN ('in', 'out')),
        PRIMARY KEY (run_id, step_id, data_id, direction)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS user_input (
        run_id  TEXT NOT NULL REFERENCES run_def(run_id),
        data_id TEXT NOT NULL,
        who     TEXT NOT NULL DEFAULT 'user',
        PRIMARY KEY (run_id, data_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS final_output (
        run_id  TEXT NOT NULL REFERENCES run_def(run_id),
        data_id TEXT NOT NULL,
        PRIMARY KEY (run_id, data_id)
    )
    """,
    # Free-form annotations on steps or data objects of a run — the
    # "whatever metadata information is recorded" of Section II, made
    # queryable.
    """
    CREATE TABLE IF NOT EXISTS annotation (
        run_id  TEXT NOT NULL REFERENCES run_def(run_id),
        subject TEXT NOT NULL,
        key     TEXT NOT NULL,
        value   TEXT NOT NULL,
        PRIMARY KEY (run_id, subject, key)
    )
    """,
    # The indexes the paper's "variety of indexes" experiments converged
    # on: deep provenance walks io by (run, data, direction) to find the
    # writer, then by (run, step, direction) to find that writer's reads —
    # one covering index per access path.
    SQLITE_IO_INDEXES[0][1],
    SQLITE_IO_INDEXES[1][1],
    # find_annotated probes by (run, key[, value]); the annotation PK only
    # covers the run prefix, so give the probe its own covering index.
    """
    CREATE INDEX IF NOT EXISTS annotation_by_key
        ON annotation (run_id, key, value, subject)
    """,
    # The materialized lineage-closure index (repro.provenance.index): one
    # row per (data object, ancestor step, that step's input) triple, plus
    # (data object, 'input', user input) marker rows.  The primary key IS
    # the covering index — WITHOUT ROWID clusters the rows by it, so a
    # deep-provenance query is a single range scan.
    """
    CREATE TABLE IF NOT EXISTS lineage (
        run_id  TEXT NOT NULL REFERENCES run_def(run_id),
        data_id TEXT NOT NULL,
        step_id TEXT NOT NULL,
        data_in TEXT NOT NULL,
        PRIMARY KEY (run_id, data_id, step_id, data_in)
    ) WITHOUT ROWID
    """,
    # One row per indexed run: lets has/status checks avoid counting the
    # lineage table, and distinguishes "indexed, trivially empty closure"
    # from "never indexed".
    """
    CREATE TABLE IF NOT EXISTS lineage_meta (
        run_id    TEXT PRIMARY KEY REFERENCES run_def(run_id),
        row_count INTEGER NOT NULL
    )
    """,
    # The compact reachability labels (repro.provenance.labels): one row
    # per step — interval [pre, post] over the spanning forest plus the
    # tree parent and the space-joined non-tree remainder set.  O(V) rows
    # where the lineage closure is O(V·E); WITHOUT ROWID clusters a run's
    # labels into one range scan.
    """
    CREATE TABLE IF NOT EXISTS lineage_labels (
        run_id      TEXT NOT NULL REFERENCES run_def(run_id),
        step_id     TEXT NOT NULL,
        pre         INTEGER NOT NULL,
        post        INTEGER NOT NULL,
        tree_parent TEXT NOT NULL,
        remainder   TEXT NOT NULL,
        PRIMARY KEY (run_id, step_id)
    ) WITHOUT ROWID
    """,
    # One row per labelled run: existence check plus the encoding version
    # the labels were computed under (lint rule WH043 compares it with
    # repro.provenance.labels.LABELS_VERSION).
    """
    CREATE TABLE IF NOT EXISTS labels_meta (
        run_id    TEXT PRIMARY KEY REFERENCES run_def(run_id),
        version   INTEGER NOT NULL,
        row_count INTEGER NOT NULL
    )
    """,
    # The ingest journal (repro.warehouse.recovery): one row per run a
    # bulk load intends to store, written 'pending' before the batch
    # commit and flipped to 'committed' after.  Deliberately NOT a
    # foreign key into run_def — a torn journal (pending rows whose run
    # never landed; lint rule WH041) must be representable so recovery
    # and resumed loads can see it.
    """
    CREATE TABLE IF NOT EXISTS _ingest_journal (
        run_id   TEXT PRIMARY KEY,
        spec_id  TEXT NOT NULL,
        checksum TEXT NOT NULL,
        batch    INTEGER NOT NULL,
        state    TEXT NOT NULL CHECK (state IN ('pending', 'committed'))
    )
    """,
    # Quarantined runs (ingest_dataset(on_error="quarantine")): the shaped
    # rows ride along as a JSON payload so `zoom quarantine retry` can
    # re-gate and re-store without the original workload.
    """
    CREATE TABLE IF NOT EXISTS _ingest_quarantine (
        run_id      TEXT PRIMARY KEY,
        spec_id     TEXT NOT NULL,
        reason      TEXT NOT NULL,
        event_index INTEGER,
        payload     TEXT NOT NULL
    )
    """,
    # Streaming open-run state (repro.warehouse.streaming): one row per
    # run currently being appended to.  ``epoch`` counts committed
    # appends, ``checksum`` is the cumulative run checksum *as of* that
    # epoch (what a torn append is truncated back to), ``delta_epoch``
    # is the epoch through which the lineage/label indexes were
    # incrementally maintained (lint rule WH047 reports it trailing),
    # and ``opened_at`` feeds the WH046 staleness threshold.  The row is
    # deleted by finalize_run — its presence *is* the open-run marker.
    """
    CREATE TABLE IF NOT EXISTS _stream_state (
        run_id      TEXT PRIMARY KEY,
        spec_id     TEXT NOT NULL,
        epoch       INTEGER NOT NULL,
        delta_epoch INTEGER NOT NULL,
        checksum    TEXT NOT NULL,
        opened_at   REAL,
        state       TEXT NOT NULL CHECK (state IN ('open'))
    )
    """,
)

#: Every secondary index the warehouse is expected to hold when healthy —
#: what the startup integrity probe (and ``zoom recover``) verifies and
#: recreates after a kill inside ``bulk_load`` skipped the rebuild.
SQLITE_EXPECTED_INDEXES: Tuple[Tuple[str, str], ...] = SQLITE_IO_INDEXES + (
    ("annotation_by_key", """
    CREATE INDEX IF NOT EXISTS annotation_by_key
        ON annotation (run_id, key, value, subject)
    """),
)

#: Recursive deep-provenance query (the SQLite analogue of Oracle's
#: ``CONNECT BY``): starting from one data object, repeatedly join the
#: writer of each object in the lineage with that writer's reads.
#:
#: ``CROSS JOIN`` is SQLite's documented way of pinning the join order:
#: without it the planner may pick the reads table as the outer loop and
#: re-scan the whole ``io`` relation per lineage row, turning a linear
#: traversal quadratic on large runs.
SQLITE_DEEP_PROVENANCE = """
WITH RECURSIVE lineage(data_id) AS (
    VALUES (:data_id)
    UNION
    SELECT io_in.data_id
    FROM lineage
    CROSS JOIN io AS io_out
      ON io_out.run_id = :run_id
     AND io_out.data_id = lineage.data_id
     AND io_out.direction = 'out'
    CROSS JOIN io AS io_in
      ON io_in.run_id = :run_id
     AND io_in.step_id = io_out.step_id
     AND io_in.direction = 'in'
)
SELECT DISTINCT io_out.step_id, step.module, io_in.data_id
FROM lineage
CROSS JOIN io AS io_out
  ON io_out.run_id = :run_id
 AND io_out.data_id = lineage.data_id
 AND io_out.direction = 'out'
CROSS JOIN io AS io_in
  ON io_in.run_id = :run_id
 AND io_in.step_id = io_out.step_id
 AND io_in.direction = 'in'
CROSS JOIN step
  ON step.run_id = :run_id
 AND step.step_id = io_out.step_id
"""

#: Indexed deep provenance: the recursive CTE collapsed to one range scan
#: of the materialized ``lineage`` table (``:input`` is bound to the
#: reserved ``input`` marker, which no real step id may carry).
SQLITE_LINEAGE_LOOKUP = """
SELECT lineage.step_id, step.module, lineage.data_in
FROM lineage
JOIN step
  ON step.run_id = lineage.run_id
 AND step.step_id = lineage.step_id
WHERE lineage.run_id = :run_id
  AND lineage.data_id = :data_id
  AND lineage.step_id != :input
"""

#: Companion range scan: the lineage user inputs of one data object.
SQLITE_LINEAGE_LOOKUP_INPUTS = """
SELECT data_in
FROM lineage
WHERE run_id = :run_id
  AND data_id = :data_id
  AND step_id = :input
"""

#: Companion query: which objects in the lineage are user inputs.
SQLITE_LINEAGE_USER_INPUTS = """
WITH RECURSIVE lineage(data_id) AS (
    VALUES (:data_id)
    UNION
    SELECT io_in.data_id
    FROM lineage
    CROSS JOIN io AS io_out
      ON io_out.run_id = :run_id
     AND io_out.data_id = lineage.data_id
     AND io_out.direction = 'out'
    CROSS JOIN io AS io_in
      ON io_in.run_id = :run_id
     AND io_in.step_id = io_out.step_id
     AND io_in.direction = 'in'
)
SELECT lineage.data_id
FROM lineage
CROSS JOIN user_input
  ON user_input.run_id = :run_id
 AND user_input.data_id = lineage.data_id
"""
