"""Sharded warehouse federation: N SQLite files behind one interface.

One SQLite file is the reproduction's scaling ceiling: ingestion (the
batch pipeline), recovery (the checksummed journal) and serving (the
query service) are all parallel, but every byte still funnels through a
single write connection.  :class:`ShardedWarehouse` removes that ceiling
by partitioning *runs* across N independent :class:`SqliteWarehouse`
files under one directory:

* **routing** — every run id is owned by exactly one shard, decided by a
  deterministic router (SHA-256 of the run id by default, so the mapping
  survives process restarts and ``PYTHONHASHSEED``); per-run operations
  (rows, annotations, lineage/label indexes, journal, quarantine,
  delete) go straight to the owning shard.
* **replication** — specifications and view definitions are tiny and
  referenced by every shard's runs, so they are written to *all* shards;
  any shard can then reconstruct any of its runs without cross-shard
  reads, and a shard file is self-contained for backup or migration.
* **scatter-gather** — cross-run operations (``list_runs``,
  ``journal_entries``, index status, integrity) fan out over a reusable
  thread pool and merge with deterministic (sorted) ordering, so answers
  are independent of shard arrival order.
* **parallel ingest** — :meth:`store_many` groups a prepared batch by
  owning shard and commits the groups concurrently, one transaction per
  shard; combined with per-shard ``bulk_load`` brackets this turns the
  pipeline's single-writer bottleneck into N independent writers.

**Thread affinity.**  A :class:`SqliteWarehouse` binds its write
connection to the thread that constructed it.  The facade therefore
gives every shard a dedicated *writer thread* (:class:`_ShardWriter`)
that constructs the shard and executes all mutating operations for it;
reads run on the calling thread through the shard's per-thread read-only
connections.  Callers never need to know: the facade routes.

**Crash semantics.**  The PR 5 journal protocol is per-shard: pending
rows live on the shard that owns the run, so a crash mid-batch leaves
each shard either fully committed (roll-forward finds matching
checksums) or rolled back (the transaction never landed), and
:func:`repro.warehouse.recovery.recover` — which only speaks the
warehouse interface — settles every shard through ordinary routing.  A
cross-shard batch is *not* atomic as a whole; it is exactly as resumable
as a sequence of single-shard batches, which is what the journal was
built for.

The shard layout is described by ``shard_manifest.json`` in the
directory (format version, shard count, routing scheme, labels version),
validated on every open so a federation cannot silently be opened with
the wrong shard count or router.  See ``docs/sharding.md``.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor, wait
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from ..core.errors import WarehouseError
from ..core.spec import WorkflowSpec
from ..core.view import UserView
from ..faults import FaultPlan
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.retry import with_retries
from ..provenance.result import ProvenanceResult
from ..run.run import WorkflowRun
from ..sanitize import make_lock
from .base import ProvenanceWarehouse, StreamState
from .sqlite import SqliteWarehouse

if TYPE_CHECKING:  # pragma: no cover — annotation-only
    from ..provenance.index import LineageClosure
    from ..provenance.labels import LineageLabels
    from .pipeline import PreparedRun
    from .recovery import JournalEntry, QuarantineRecord, RecoveryReport

T = TypeVar("T")

#: Name of the layout descriptor inside a federation directory.
MANIFEST_NAME = "shard_manifest.json"

#: Format version of ``shard_manifest.json``.
MANIFEST_VERSION = 1

#: Shard count used when creating a fresh federation without an explicit
#: ``shards=``.
DEFAULT_SHARD_COUNT = 4

#: Filename pattern of the per-shard databases.
SHARD_FILE = "shard-%03d.db"


def _stable_bucket(key: str, shards: int) -> int:
    """SHA-256 bucket of ``key`` — stable across processes and platforms.

    Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``),
    which would scatter a reopened federation's runs onto the wrong
    shards; a cryptographic digest costs nanoseconds per route and never
    moves.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def hash_router(run_id: str, shards: int) -> int:
    """Default routing: uniform SHA-256 hash of the full run id."""
    return _stable_bucket(run_id, shards)


def spec_router(run_id: str, shards: int) -> int:
    """Workflow-class affinity: route on the run id's spec prefix.

    Run ids follow the loader's ``<spec_id>/runN`` convention, so hashing
    the prefix co-locates all runs of one workflow on one shard — queries
    scoped to a spec touch a single file.  The price is skew when one
    workflow dominates the corpus (lint rule ``WH045`` watches for that).
    """
    return _stable_bucket(run_id.split("/", 1)[0], shards)


#: Named routing schemes accepted by ``router=`` (and recorded in the
#: manifest so a reopen validates the scheme matches).
ROUTERS: Dict[str, Callable[[str, int], int]] = {
    "hash": hash_router,
    "spec": spec_router,
}


class _ShardWriter:
    """Dedicated owner thread serializing one shard's mutations.

    The shard's :class:`SqliteWarehouse` is *constructed on this thread*,
    making it the owner of the shard's single write connection; every
    mutating operation is submitted as a callable and executed in FIFO
    order.  Results and exceptions — including the fault harness's
    :class:`~repro.faults.InjectedCrash`, a ``BaseException`` — travel
    back through a :class:`concurrent.futures.Future`, so a simulated
    crash on one shard surfaces in the caller exactly like the
    single-file backend while the other shards' transactions settle
    independently.
    """

    def __init__(
        self, name: str, factory: Callable[[], SqliteWarehouse]
    ) -> None:
        self._jobs: "queue.Queue[Optional[Tuple[Callable[[], object], Future]]]" = (
            queue.Queue()
        )
        self._thread = threading.Thread(
            target=self._loop, args=(factory,), name=name, daemon=True
        )
        ready: "Future[SqliteWarehouse]" = Future()
        self._ready = ready
        self._thread.start()
        #: The shard backend, constructed on (and owned by) the writer
        #: thread; reads may use it from any thread.
        self.warehouse: SqliteWarehouse = ready.result()

    def _loop(self, factory: Callable[[], SqliteWarehouse]) -> None:
        try:
            warehouse = factory()
        except BaseException as exc:  # pragma: no cover — bad directory
            self._ready.set_exception(exc)
            return
        self._ready.set_result(warehouse)
        while True:
            job = self._jobs.get()
            if job is None:
                return
            fn, future = job
            if not future.set_running_or_notify_cancel():
                continue  # pragma: no cover — nothing cancels these
            try:
                future.set_result(fn())
            except BaseException as exc:  # InjectedCrash must propagate
                future.set_exception(exc)

    def submit(self, fn: Callable[[], T]) -> "Future[T]":
        """Queue ``fn`` for the writer thread; returns its future."""
        future: "Future[T]" = Future()
        self._jobs.put((fn, future))
        return future

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` on the writer thread and wait for its result."""
        return self.submit(fn).result()

    def stop(self) -> None:
        """Drain outstanding work and end the thread."""
        self._jobs.put(None)
        self._thread.join()


class ShardedWarehouse(ProvenanceWarehouse):
    """A warehouse facade partitioning runs across N SQLite shard files.

    Parameters
    ----------
    directory:
        The federation directory.  Created (with a fresh manifest) when
        it does not yet hold one; otherwise the persisted manifest is
        validated against the arguments.
    shards:
        Shard count when *creating* a federation (default
        :data:`DEFAULT_SHARD_COUNT`).  On reopen the manifest's count is
        authoritative; passing a conflicting explicit count raises.
    router:
        A routing scheme name (``"hash"``/``"spec"``) or a callable
        ``(run_id, shards) -> shard_index``.  Named schemes are recorded
        in the manifest and checked on reopen; a custom callable records
        ``"custom"`` and the caller is responsible for passing the same
        function every time.  The default ``None`` honours the
        manifest's recorded scheme on reopen (``"hash"`` when creating),
        which is what lets the CLI open any federation without knowing
        how it was routed.
    timing / auto_index / bulk / faults:
        Passed through to every shard's :class:`SqliteWarehouse`.  A
        fault plan is shared by all shards — sites fire on whichever
        shard reaches them, which is what the chaos suite exploits.
    """

    def __init__(
        self,
        directory: str,
        shards: Optional[int] = None,
        router: object = None,
        timing: bool = False,
        auto_index: bool = False,
        bulk: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        from ..provenance.labels import LABELS_VERSION  # late: import cycle

        if shards is not None and shards < 1:
            raise WarehouseError("shard count must be >= 1, got %r" % shards)
        self._directory = os.path.abspath(directory)
        os.makedirs(self._directory, exist_ok=True)

        manifest_path = os.path.join(self._directory, MANIFEST_NAME)
        manifest = self._read_manifest(manifest_path)
        preexisting = manifest is not None
        if router is None:
            recorded = manifest.get("routing") if preexisting else None
            if recorded == "custom":
                raise WarehouseError(
                    "federation %r was created with a custom router; pass"
                    " the same callable via router=" % self._directory
                )
            router = recorded if recorded is not None else "hash"
        self._router, self._routing = self._resolve_router(router)
        if manifest is not None:
            self._validate_manifest(manifest, shards)
            count = int(manifest["shards"])
        else:
            if self._existing_shard_files():
                raise WarehouseError(
                    "directory %r holds shard files but no %s — refusing to"
                    " guess the layout" % (self._directory, MANIFEST_NAME)
                )
            count = shards if shards is not None else DEFAULT_SHARD_COUNT
            manifest = {
                "version": MANIFEST_VERSION,
                "shards": count,
                "routing": self._routing,
                "labels_version": LABELS_VERSION,
            }
        self._count = count
        self._manifest: Dict[str, object] = dict(manifest)
        self._shard_paths = [
            os.path.join(self._directory, SHARD_FILE % i) for i in range(count)
        ]
        #: Shard files the manifest promised but the directory lacked at
        #: open — the backend recreates them *empty*, so their runs are
        #: gone; lint rule ``WH044`` reports this from here.
        self.missing_on_open: List[str] = [
            os.path.basename(p)
            for p in self._shard_paths
            if not os.path.exists(p)
        ] if preexisting else []

        #: The shared fault plan, also handed to every shard backend, so
        #: protocol layers (e.g. the streaming ingestor) can pick it up
        #: from the facade exactly as they do from a single-file backend.
        self.faults = faults
        self._writers: List[_ShardWriter] = []
        for i, path in enumerate(self._shard_paths):
            factory = self._shard_factory(path, timing, auto_index, bulk, faults)
            self._writers.append(
                _ShardWriter("zoom-shard-writer-%d" % i, factory)
            )
        self._warehouses = [w.warehouse for w in self._writers]
        if not preexisting:
            self._write_manifest(manifest_path)

        self._pool_lock = make_lock("warehouse.sharded.pool")
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _pool_lock
        self._closed = False
        self._metrics = MetricsRegistry()
        self._shard_metrics = [
            self._metrics.child("shard%d" % i) for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Layout: manifest, routing, lifecycle
    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_router(
        router: object,
    ) -> Tuple[Callable[[str, int], int], str]:
        if callable(router):
            return router, getattr(router, "routing_name", "custom")  # type: ignore[return-value]
        try:
            return ROUTERS[router], router  # type: ignore[index,return-value]
        except (KeyError, TypeError):
            raise WarehouseError(
                "unknown routing scheme %r (expected one of %s or a"
                " callable)" % (router, sorted(ROUTERS))
            ) from None

    @staticmethod
    def _read_manifest(path: str) -> Optional[Dict[str, object]]:
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise WarehouseError(
                "unreadable shard manifest %r: %s" % (path, exc)
            ) from exc
        if not isinstance(manifest, dict):
            raise WarehouseError("malformed shard manifest %r" % path)
        return manifest

    def _validate_manifest(
        self, manifest: Dict[str, object], shards: Optional[int]
    ) -> None:
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            raise WarehouseError(
                "shard manifest format v%r is not supported (this build"
                " speaks v%d)" % (version, MANIFEST_VERSION)
            )
        declared = manifest.get("shards")
        if not isinstance(declared, int) or declared < 1:
            raise WarehouseError(
                "shard manifest declares invalid shard count %r" % declared
            )
        if shards is not None and shards != declared:
            raise WarehouseError(
                "federation was created with %d shard(s); reopening with"
                " shards=%d would misroute every run" % (declared, shards)
            )
        recorded = manifest.get("routing")
        if self._routing != "custom" and recorded != self._routing:
            raise WarehouseError(
                "federation was created with routing %r; reopening with %r"
                " would misroute runs" % (recorded, self._routing)
            )

    def _write_manifest(self, path: str) -> None:
        payload = json.dumps(self._manifest, indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    def _existing_shard_files(self) -> List[str]:
        pattern = os.path.join(self._directory, "shard-*.db")
        return sorted(os.path.basename(p) for p in glob.glob(pattern))

    @staticmethod
    def _shard_factory(
        path: str,
        timing: bool,
        auto_index: bool,
        bulk: bool,
        faults: Optional[FaultPlan],
    ) -> Callable[[], SqliteWarehouse]:
        def factory() -> SqliteWarehouse:
            return SqliteWarehouse(
                path, timing=timing, auto_index=auto_index,
                bulk=bulk, faults=faults,
            )
        return factory

    @property
    def shard_count(self) -> int:
        """How many shard files the federation spans."""
        return self._count

    @property
    def directory(self) -> str:
        """The federation directory (absolute)."""
        return self._directory

    @property
    def manifest(self) -> Dict[str, object]:
        """A copy of the persisted layout manifest."""
        return dict(self._manifest)

    @property
    def routing(self) -> str:
        """Name of the active routing scheme."""
        return self._routing

    def shard_index(self, run_id: str) -> int:
        """The shard owning ``run_id`` under the active router."""
        index = self._router(run_id, self._count)
        if not 0 <= index < self._count:
            raise WarehouseError(
                "router sent run %r to shard %r (federation has %d)"
                % (run_id, index, self._count)
            )
        return index

    def _owner(self, run_id: str) -> SqliteWarehouse:
        return self._warehouses[self.shard_index(run_id)]

    def _owner_writer(self, run_id: str) -> _ShardWriter:
        return self._writers[self.shard_index(run_id)]

    def close(self) -> None:
        """Close every shard (on its writer thread) and stop the threads."""
        if self._closed:
            return
        self._closed = True
        for writer in self._writers:
            writer.submit(writer.warehouse.close)
        for writer in self._writers:
            writer.stop()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedWarehouse":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scatter-gather plumbing
    # ------------------------------------------------------------------

    def _scatter_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is not None:
            return pool
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=min(self._count, 8),
                    thread_name_prefix="zoom-shard-gather",
                )
            return self._pool

    def _scatter(self, fn: Callable[[SqliteWarehouse], T]) -> List[T]:
        """Run a read over every shard; results in shard order.

        Single-shard federations skip the pool — the facade then costs
        one extra function call over the raw backend.  Each per-shard
        probe is wrapped in :func:`~repro.obs.retry.with_retries`: a
        shard momentarily locked by its writer thread (checkpoint, bulk
        bracket, streaming append) costs a backed-off retry on that one
        shard instead of failing the whole gather.
        """
        resilient = with_retries()(fn)
        if self._count == 1:
            return [resilient(self._warehouses[0])]
        registry = get_registry()
        registry.counter("shard.scatter.ops").increment()
        with registry.time("shard.scatter"):
            return list(self._scatter_pool().map(resilient, self._warehouses))

    def _fan_out_writers(
        self, fn: Callable[[SqliteWarehouse], T]
    ) -> List[T]:
        """Run a mutation on every shard, each on its own writer thread."""
        futures = [
            writer.submit(lambda wh=writer.warehouse: fn(wh))
            for writer in self._writers
        ]
        wait(futures)
        return [f.result() for f in futures]

    def _group_by_shard(
        self, keyed: Sequence[Tuple[str, T]]
    ) -> Dict[int, List[T]]:
        groups: Dict[int, List[T]] = {}
        for run_id, item in keyed:
            groups.setdefault(self.shard_index(run_id), []).append(item)
        return groups

    @staticmethod
    def _merge_sorted(parts: Sequence[List[str]]) -> List[str]:
        merged: Set[str] = set()
        for part in parts:
            merged.update(part)
        return sorted(merged)

    # ------------------------------------------------------------------
    # Specifications and views (replicated to every shard)
    # ------------------------------------------------------------------

    def store_spec(
        self, spec: WorkflowSpec, spec_id: Optional[str] = None
    ) -> str:
        ids = self._fan_out_writers(
            lambda wh: wh.store_spec(spec, spec_id=spec_id)
        )
        return ids[0]

    def get_spec(self, spec_id: str) -> WorkflowSpec:
        return self._warehouses[0].get_spec(spec_id)

    def list_specs(self) -> List[str]:
        return self._merge_sorted(self._scatter(lambda wh: wh.list_specs()))

    def spec_rows(self, spec_id: str) -> Dict[str, object]:
        return self._warehouses[0].spec_rows(spec_id)

    def store_view(
        self, view: UserView, spec_id: str, view_id: Optional[str] = None
    ) -> str:
        ids = self._fan_out_writers(
            lambda wh: wh.store_view(view, spec_id, view_id=view_id)
        )
        return ids[0]

    def get_view(self, view_id: str) -> UserView:
        return self._warehouses[0].get_view(view_id)

    def list_views(self, spec_id: Optional[str] = None) -> List[str]:
        return self._merge_sorted(
            self._scatter(lambda wh: wh.list_views(spec_id))
        )

    def view_rows(self, view_id: str) -> Tuple[str, str, Dict[str, List[str]]]:
        return self._warehouses[0].view_rows(view_id)

    # ------------------------------------------------------------------
    # Runs: routed writes, scatter-gathered listings
    # ------------------------------------------------------------------

    def store_run(
        self, run: WorkflowRun, spec_id: str, run_id: Optional[str] = None
    ) -> str:
        resolved = run_id or run.run_id
        index = self.shard_index(resolved)
        self._shard_metrics[index].counter("runs").increment()
        return self._writers[index].call(
            lambda: self._warehouses[index].store_run(
                run, spec_id, run_id=run_id
            )
        )

    def store_many(self, prepared: Sequence["PreparedRun"]) -> List[str]:
        """Commit a batch shard-by-shard, all shards in parallel.

        Each owning shard receives its group as one ordinary
        :meth:`SqliteWarehouse.store_many` transaction on its writer
        thread.  All groups are waited on — even when one shard raises —
        so the surviving shards' transactions settle before the first
        failure (in shard order) propagates; the journal protocol makes
        the partial batch recoverable exactly like a crash between two
        single-shard batches.  Returned ids preserve input order.
        """
        if not prepared:
            return []
        positions: Dict[int, List[int]] = {}
        groups: Dict[int, List["PreparedRun"]] = {}
        for position, p in enumerate(prepared):
            index = self.shard_index(p.run_id)
            groups.setdefault(index, []).append(p)
            positions.setdefault(index, []).append(position)
        futures: Dict[int, Future] = {}
        for index, group in sorted(groups.items()):
            wh = self._warehouses[index]
            metrics = self._shard_metrics[index]
            metrics.counter("ingest.batches").increment()
            metrics.counter("ingest.runs").increment(len(group))

            @with_retries()
            def commit(
                wh: SqliteWarehouse = wh,
                group: List["PreparedRun"] = group,
                metrics: MetricsRegistry = metrics,
            ) -> List[str]:
                with metrics.time("ingest.store_many"):
                    return wh.store_many(group)

            futures[index] = self._writers[index].submit(commit)
        wait(list(futures.values()))
        failure: Optional[BaseException] = None
        out: List[Optional[str]] = [None] * len(prepared)
        for index in sorted(futures):
            exc = futures[index].exception()
            if exc is not None:
                failure = failure or exc
                continue
            for position, stored in zip(positions[index], futures[index].result()):
                out[position] = stored
        if failure is not None:
            raise failure
        return [stored for stored in out if stored is not None]

    @contextmanager
    def bulk_load(self) -> Iterator[None]:
        """Enter every shard's bulk bracket, each on its writer thread.

        Index teardown/rebuild is a write, so the brackets are entered
        and exited via the writer threads; exits run even when the
        ingestion raised, mirroring the single-file contract.
        """
        entered: List[Tuple[_ShardWriter, object]] = []
        for writer in self._writers:
            ctx = writer.warehouse.bulk_load()
            writer.call(ctx.__enter__)
            entered.append((writer, ctx))
        try:
            yield
        except BaseException as exc:
            for writer, ctx in reversed(entered):
                writer.call(
                    lambda c=ctx: c.__exit__(type(exc), exc, exc.__traceback__)
                )
            raise
        else:
            for writer, ctx in reversed(entered):
                writer.call(lambda c=ctx: c.__exit__(None, None, None))

    def list_runs(self, spec_id: Optional[str] = None) -> List[str]:
        return self._merge_sorted(
            self._scatter(lambda wh: wh.list_runs(spec_id))
        )

    def run_spec_id(self, run_id: str) -> str:
        return self._owner(run_id).run_spec_id(run_id)

    def delete_run(self, run_id: str) -> None:
        writer = self._owner_writer(run_id)
        writer.call(lambda: writer.warehouse.delete_run(run_id))

    # ------------------------------------------------------------------
    # Row-level primitives (routed reads)
    # ------------------------------------------------------------------

    def steps_of_run(self, run_id: str) -> List[Tuple[str, str]]:
        return self._owner(run_id).steps_of_run(run_id)

    def io_rows(self, run_id: str) -> List[Tuple[str, str, str]]:
        return self._owner(run_id).io_rows(run_id)

    def user_inputs(self, run_id: str) -> FrozenSet[str]:
        return self._owner(run_id).user_inputs(run_id)

    def final_outputs(self, run_id: str) -> FrozenSet[str]:
        return self._owner(run_id).final_outputs(run_id)

    def producer_of(self, run_id: str, data_id: str) -> str:
        return self._owner(run_id).producer_of(run_id, data_id)

    def step_inputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        return self._owner(run_id).step_inputs(run_id, step_id)

    def step_outputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        return self._owner(run_id).step_outputs(run_id, step_id)

    def module_of_step(self, run_id: str, step_id: str) -> str:
        return self._owner(run_id).module_of_step(run_id, step_id)

    # ------------------------------------------------------------------
    # User-input metadata and annotations (routed)
    # ------------------------------------------------------------------

    def user_input_who(self, run_id: str, data_id: str) -> str:
        return self._owner(run_id).user_input_who(run_id, data_id)

    def _set_user_input_who(self, run_id: str, who: Dict[str, str]) -> None:
        writer = self._owner_writer(run_id)
        writer.call(
            lambda: writer.warehouse._set_user_input_who(run_id, who)
        )

    def annotate(
        self, run_id: str, subject: str, key: str, value: str
    ) -> None:
        writer = self._owner_writer(run_id)
        writer.call(
            lambda: writer.warehouse.annotate(run_id, subject, key, value)
        )

    def annotations_of(self, run_id: str, subject: str) -> Dict[str, str]:
        return self._owner(run_id).annotations_of(run_id, subject)

    def find_annotated(
        self, run_id: str, key: str, value: Optional[str] = None
    ) -> List[str]:
        return self._owner(run_id).find_annotated(run_id, key, value)

    # ------------------------------------------------------------------
    # Provenance closure and indexes (routed; status scatter-gathered)
    # ------------------------------------------------------------------

    def admin_deep_provenance(
        self, run_id: str, data_id: str
    ) -> ProvenanceResult:
        return self._owner(run_id).admin_deep_provenance(run_id, data_id)

    def build_lineage_index(self, run_id: str, rebuild: bool = False) -> int:
        writer = self._owner_writer(run_id)
        return writer.call(
            lambda: writer.warehouse.build_lineage_index(
                run_id, rebuild=rebuild
            )
        )

    def _store_lineage_closure(self, closure: "LineageClosure") -> None:
        writer = self._owner_writer(closure.run_id)
        writer.call(
            lambda: writer.warehouse._store_lineage_closure(closure)
        )

    def has_lineage_index(self, run_id: str) -> bool:
        return self._owner(run_id).has_lineage_index(run_id)

    def lineage_row_count(self, run_id: str) -> Optional[int]:
        return self._owner(run_id).lineage_row_count(run_id)

    def drop_lineage_index(self, run_id: Optional[str] = None) -> List[str]:
        if run_id is not None:
            writer = self._owner_writer(run_id)
            return writer.call(
                lambda: writer.warehouse.drop_lineage_index(run_id)
            )
        return self._merge_sorted(
            self._fan_out_writers(lambda wh: wh.drop_lineage_index())
        )

    def lineage_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        return self._owner(run_id).lineage_lookup(run_id, data_id)

    def lineage_rows_raw(self, run_id: str) -> Set[Tuple[str, str, str]]:
        return self._owner(run_id).lineage_rows_raw(run_id)

    def lineage_index_status(self) -> Dict[str, Optional[int]]:
        merged: Dict[str, Optional[int]] = {}
        for status in self._scatter(lambda wh: wh.lineage_index_status()):
            merged.update(status)
        return dict(sorted(merged.items()))

    def build_label_index(self, run_id: str, rebuild: bool = False) -> int:
        writer = self._owner_writer(run_id)
        return writer.call(
            lambda: writer.warehouse.build_label_index(run_id, rebuild=rebuild)
        )

    def _store_lineage_labels(self, labels: "LineageLabels") -> None:
        writer = self._owner_writer(labels.run_id)
        writer.call(lambda: writer.warehouse._store_lineage_labels(labels))

    def has_label_index(self, run_id: str) -> bool:
        return self._owner(run_id).has_label_index(run_id)

    def label_row_count(self, run_id: str) -> Optional[int]:
        return self._owner(run_id).label_row_count(run_id)

    def label_index_version(self, run_id: str) -> Optional[int]:
        return self._owner(run_id).label_index_version(run_id)

    def drop_label_index(self, run_id: Optional[str] = None) -> List[str]:
        if run_id is not None:
            writer = self._owner_writer(run_id)
            return writer.call(
                lambda: writer.warehouse.drop_label_index(run_id)
            )
        return self._merge_sorted(
            self._fan_out_writers(lambda wh: wh.drop_label_index())
        )

    def label_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        return self._owner(run_id).label_lookup(run_id, data_id)

    def label_rows_raw(
        self, run_id: str
    ) -> Set[Tuple[str, int, int, str, str]]:
        return self._owner(run_id).label_rows_raw(run_id)

    def label_index_status(self) -> Dict[str, Optional[int]]:
        merged: Dict[str, Optional[int]] = {}
        for status in self._scatter(lambda wh: wh.label_index_status()):
            merged.update(status)
        return dict(sorted(merged.items()))

    # ------------------------------------------------------------------
    # Ingest journal, quarantine and integrity (routed / merged)
    # ------------------------------------------------------------------

    def journal_begin(self, entries: Sequence["JournalEntry"]) -> None:
        groups = self._group_by_shard([(e.run_id, e) for e in entries])
        futures = [
            self._writers[index].submit(
                lambda wh=self._warehouses[index], group=group:
                wh.journal_begin(group)
            )
            for index, group in sorted(groups.items())
        ]
        wait(futures)
        for future in futures:
            future.result()

    def journal_commit(self, run_ids: Sequence[str]) -> None:
        groups = self._group_by_shard([(r, r) for r in run_ids])
        futures = [
            self._writers[index].submit(
                lambda wh=self._warehouses[index], group=group:
                wh.journal_commit(group)
            )
            for index, group in sorted(groups.items())
        ]
        wait(futures)
        for future in futures:
            future.result()

    def journal_discard(self, run_ids: Sequence[str]) -> None:
        groups = self._group_by_shard([(r, r) for r in run_ids])
        futures = [
            self._writers[index].submit(
                lambda wh=self._warehouses[index], group=group:
                wh.journal_discard(group)
            )
            for index, group in sorted(groups.items())
        ]
        wait(futures)
        for future in futures:
            future.result()

    def journal_entries(
        self, state: Optional[str] = None
    ) -> List["JournalEntry"]:
        merged: List["JournalEntry"] = []
        for part in self._scatter(lambda wh: wh.journal_entries(state)):
            merged.extend(part)
        return sorted(merged, key=lambda entry: entry.run_id)

    def quarantine_add(self, record: "QuarantineRecord") -> None:
        writer = self._owner_writer(record.run_id)
        writer.call(lambda: writer.warehouse.quarantine_add(record))

    def quarantine_list(self) -> List[str]:
        return self._merge_sorted(
            self._scatter(lambda wh: wh.quarantine_list())
        )

    def quarantine_get(self, run_id: str) -> "QuarantineRecord":
        return self._owner(run_id).quarantine_get(run_id)

    def quarantine_delete(self, run_id: str) -> None:
        writer = self._owner_writer(run_id)
        writer.call(lambda: writer.warehouse.quarantine_delete(run_id))

    def integrity_report(self, repair: bool = False) -> Dict[str, object]:
        """Per-shard physical probes merged into one report.

        Repair recreates missing indexes, i.e. writes, so every probe
        runs on its shard's writer thread.  Shard-specific entries are
        prefixed ``shard-<i>:`` so a repaired index is attributable.
        """
        reports = self._fan_out_writers(
            lambda wh: wh.integrity_report(repair=repair)
        )
        merged: Dict[str, object] = {
            "ok": all(bool(r["ok"]) for r in reports),
            "missing_indexes": [
                "shard-%d:%s" % (i, name)
                for i, r in enumerate(reports)
                for name in r["missing_indexes"]  # type: ignore[union-attr]
            ],
            "repaired": [
                "shard-%d:%s" % (i, name)
                for i, r in enumerate(reports)
                for name in r["repaired"]  # type: ignore[union-attr]
            ],
        }
        return merged

    def recover_shards(self) -> "RecoveryReport":
        """Run shard-local recovery on every writer thread, in parallel.

        :func:`repro.warehouse.recovery.recover` delegates here when the
        warehouse exposes this method, so ``zoom recover`` and
        ``zoom load --resume`` settle an N-shard federation in the time
        of its slowest shard instead of N sequential passes.  Each shard
        recovers through its own writer thread (recovery mutates: journal
        marks, deletions, index repair) and the per-shard
        :class:`~repro.warehouse.recovery.RecoveryReport` objects are
        merged — run-level lists concatenate sorted (run ids are unique
        to their owning shard), repaired indexes keep the
        ``shard-<i>:`` prefix idiom of :meth:`integrity_report`.
        """
        from .recovery import RecoveryReport, recover

        futures = [
            writer.submit(lambda wh=writer.warehouse: recover(wh))
            for writer in self._writers
        ]
        wait(futures)
        reports = [f.result() for f in futures]
        merged = RecoveryReport(
            integrity_ok=all(r.integrity_ok for r in reports),
            repaired_indexes=[
                "shard-%d:%s" % (i, name)
                for i, r in enumerate(reports)
                for name in r.repaired_indexes
            ],
        )
        for attr in (
            "marked_committed",
            "rolled_back",
            "torn_journal",
            "stream_rolled_forward",
            "stream_truncated",
            "stream_desynced",
        ):
            getattr(merged, attr).extend(sorted(
                run_id for r in reports for run_id in getattr(r, attr)
            ))
        return merged

    # ------------------------------------------------------------------
    # Streaming appends (routed to the owning shard's writer thread)
    # ------------------------------------------------------------------

    def stream_begin(
        self,
        run_id: str,
        spec_id: str,
        *,
        checksum: str,
        opened_at: Optional[float] = None,
    ) -> None:
        writer = self._owner_writer(run_id)
        writer.call(lambda: writer.warehouse.stream_begin(
            run_id, spec_id, checksum=checksum, opened_at=opened_at
        ))

    def stream_state(self, run_id: str) -> Optional[StreamState]:
        return self._owner(run_id).stream_state(run_id)

    def stream_states(self) -> Dict[str, StreamState]:
        merged: Dict[str, StreamState] = {}
        for part in self._scatter(lambda wh: wh.stream_states()):
            merged.update(part)
        return dict(sorted(merged.items()))

    def stream_apply(
        self,
        run_id: str,
        *,
        epoch: int,
        checksum: str,
        step_rows: Sequence[Tuple[str, str]],
        io_rows: Sequence[Tuple[str, str, str]],
        user_inputs: Sequence[Tuple[str, str]],
        final_outputs: Sequence[str],
    ) -> None:
        writer = self._owner_writer(run_id)
        writer.call(lambda: writer.warehouse.stream_apply(
            run_id, epoch=epoch, checksum=checksum,
            step_rows=step_rows, io_rows=io_rows,
            user_inputs=user_inputs, final_outputs=final_outputs,
        ))

    def stream_mark_delta(self, run_id: str, epoch: int) -> None:
        writer = self._owner_writer(run_id)
        writer.call(
            lambda: writer.warehouse.stream_mark_delta(run_id, epoch)
        )

    def stream_close(self, run_id: str) -> None:
        writer = self._owner_writer(run_id)
        writer.call(lambda: writer.warehouse.stream_close(run_id))

    def extend_lineage_index(
        self, run_id: str, rows: Sequence[Tuple[str, str, str]]
    ) -> int:
        writer = self._owner_writer(run_id)
        return writer.call(
            lambda: writer.warehouse.extend_lineage_index(run_id, rows)
        )

    # ------------------------------------------------------------------
    # Health and observability
    # ------------------------------------------------------------------

    def runs_per_shard(self) -> Dict[int, int]:
        """Shard index → number of runs it currently owns."""
        counts = self._scatter(lambda wh: len(wh.list_runs()))
        return {i: count for i, count in enumerate(counts)}

    def shard_health(self) -> Dict[str, object]:
        """Layout facts for lint (``WH044``/``WH045``) and the CLI.

        Re-probes the directory, so a shard file deleted *after* open is
        reported alongside anything recorded missing at open time.
        """
        on_disk = set(self._existing_shard_files())
        declared = [os.path.basename(p) for p in self._shard_paths]
        missing = sorted(
            set(self.missing_on_open)
            | {name for name in declared if name not in on_disk}
        )
        return {
            "declared": self._count,
            "routing": self._routing,
            "files": declared,
            "missing": missing,
            "extra": sorted(on_disk - set(declared)),
            "runs_per_shard": self.runs_per_shard(),
        }

    def shard_stats(self) -> Dict[str, object]:
        """Per-shard and merged facade metrics plus layout facts."""
        return {
            "shards": self._count,
            "routing": self._routing,
            "runs_per_shard": {
                "shard-%d" % i: count
                for i, count in self.runs_per_shard().items()
            },
            "per_shard": self._metrics.snapshot(children=True),
            "merged": self._metrics.merged().snapshot(),
        }

    def stats(self) -> Dict[str, object]:
        """Alias of :meth:`shard_stats` (the CLI's ``zoom shard status``)."""
        return self.shard_stats()
