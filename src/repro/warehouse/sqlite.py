"""SQLite warehouse backend.

The paper stores provenance in Oracle 10g and computes deep provenance with
``CONNECT BY`` recursive queries plus stored procedures.  SQLite's
``WITH RECURSIVE`` common table expressions are the standard-SQL analogue,
available in the Python standard library — so this backend reproduces the
paper's warehouse architecture end to end: relational tables loaded from
workflow logs, covering indexes on the ``io`` relation, and a recursive SQL
closure for deep provenance.

Use ``path=":memory:"`` (the default) for a throwaway database or a file
path for a persistent warehouse.
"""

from __future__ import annotations

import sqlite3
import threading
import uuid
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import WarehouseError
from ..core.spec import INPUT, WorkflowSpec
from ..core.view import UserView
from ..faults import FaultPlan
from ..obs.metrics import get_registry
from ..obs.retry import with_retries
from ..provenance.result import ProvenanceResult, ProvenanceRow
from ..run.run import WorkflowRun
from ..sanitize import guard, make_lock
from .base import ProvenanceWarehouse, StreamState
from .recovery import JOURNAL_COMMITTED, JOURNAL_PENDING, JournalEntry, QuarantineRecord
from .schema import (
    DIR_IN,
    DIR_OUT,
    SQLITE_DDL,
    SQLITE_DEEP_PROVENANCE,
    SQLITE_EXPECTED_INDEXES,
    SQLITE_IO_INDEXES,
    SQLITE_LINEAGE_LOOKUP,
    SQLITE_LINEAGE_LOOKUP_INPUTS,
    SQLITE_LINEAGE_USER_INPUTS,
)

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids an import cycle
    from ..provenance.index import LineageClosure
    from ..provenance.labels import LineageLabels
    from .pipeline import PreparedRun


class SqliteWarehouse(ProvenanceWarehouse):
    """SQLite implementation of :class:`ProvenanceWarehouse`.

    Parameters
    ----------
    path:
        Database location; ``":memory:"`` (default) keeps everything in
        RAM, any other string is a filesystem path.
    timing:
        When true, every SQL statement executed on this connection is
        counted and timed in the default metrics registry under
        ``warehouse.sql`` (via :meth:`sqlite3.Connection.set_trace_callback`
        for the count and explicit timers on the closure queries).
    auto_index:
        When true, :meth:`store_run` materialises the lineage-closure
        index of every run as it is ingested (see
        :meth:`~repro.warehouse.base.ProvenanceWarehouse.build_lineage_index`),
        trading ingestion time for constant-depth deep-provenance queries.
    bulk:
        Open the connection in the **bulk-load pragma profile** for the
        whole session: ``synchronous = OFF`` (the OS, not fsync, decides
        when pages hit disk) and ``temp_store = MEMORY``.  Meant for
        dedicated loader processes that can re-ingest after a crash; the
        default service profile keeps ``synchronous = NORMAL``, the
        durable setting WAL mode is designed for.  :meth:`store_many`
        applies the same profile around each batch commit on a
        non-``bulk`` connection and **restores ``synchronous = NORMAL``
        afterwards**, so a service warehouse never stays in the relaxed
        mode.

    Notes
    -----
    File-backed databases run in WAL journal mode with a 5 s busy timeout,
    so concurrent readers never block a writer and a briefly locked
    database retries instead of failing — the configuration a multi-session
    service needs.  ``:memory:`` databases are opened through a
    shared-cache URI so every connection of this warehouse object sees the
    same database, and silently keep their native journal mode.  All
    durability/journal pragma decisions live in
    :meth:`_apply_session_pragmas` / :meth:`_bulk_writes`; nothing else
    touches them.

    **Thread-affinity contract.**  The thread that constructs the
    warehouse owns the single *write* connection; every mutating method
    (``store_*``, ``annotate``, ``delete_run``, journal/quarantine writes,
    index builds and drops) must run on that thread.  *Read* methods are
    safe from any thread: the first read from a foreign thread checks out
    a dedicated read-only connection (``PRAGMA query_only = ON``) from the
    per-thread pool, created by the same connection factory and counted
    under ``warehouse.pool.readers``.  A write attempted from a foreign
    thread fails fast with ``sqlite3.OperationalError`` (read-only
    connection) instead of the historical cross-thread
    ``sqlite3.ProgrammingError`` on reads.
    """

    def __init__(
        self,
        path: str = ":memory:",
        timing: bool = False,
        auto_index: bool = False,
        bulk: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._path = path
        #: Shared-cache URI for in-memory databases, so reader connections
        #: attach to the same database instead of fresh empty ones; the
        #: uuid keeps distinct warehouse objects isolated from each other.
        self._uri: Optional[str] = (
            "file:zoom-mem-%s?mode=memory&cache=shared" % uuid.uuid4().hex
            if path == ":memory:" else None
        )
        #: Statement counting requested (applied to reader connections too).
        self._timing = timing
        #: Thread that owns the write connection (see class docstring).
        self._owner_thread = threading.get_ident()
        #: Per-thread read-only connections, created lazily on first read
        #: from a foreign thread.
        self._thread_readers = threading.local()  # thread-owned
        self._readers_lock = make_lock("warehouse.readers")
        #: Every reader ever handed out, so :meth:`close` can close them.
        self._all_readers: List[sqlite3.Connection] = guard(
            [], self._readers_lock, "warehouse._all_readers"
        )  # guarded-by: _readers_lock
        self._write_conn = self._connect()  # thread-owned
        #: Build the lineage-closure index of every run at ingestion time.
        self.auto_index = auto_index
        #: Session-wide bulk-load pragma profile (see class docstring).
        self._bulk = bulk
        #: Fault-injection schedule (tests only; ``None`` in production).
        self.faults = faults
        #: Indexes the startup probe found missing on an existing database
        #: (a kill inside ``bulk_load`` skipped the rebuild); the DDL pass
        #: below recreates them immediately.
        self.repaired_indexes: List[str] = []
        self._apply_session_pragmas()
        if timing:
            counter = get_registry().counter("warehouse.sql")
            self._write_conn.set_trace_callback(
                lambda _stmt: counter.increment()
            )
        self._startup_integrity()
        for statement in SQLITE_DDL:
            self._write_conn.execute(statement)
        self._write_conn.commit()

    # ------------------------------------------------------------------
    # Connection factory and per-thread read pool
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """Open one connection to this warehouse's database.

        ``check_same_thread=False`` because thread safety is enforced by
        this class's own discipline instead of sqlite3's blanket ban: the
        write connection is only ever *used* by the owning thread, readers
        are never shared between threads, and :meth:`close` may tear any
        of them down from whichever thread calls it.
        """
        if self._uri is not None:
            return sqlite3.connect(self._uri, uri=True, check_same_thread=False)
        return sqlite3.connect(self._path, check_same_thread=False)

    @property
    def _conn(self) -> sqlite3.Connection:  # owner-only
        """The calling thread's connection.

        The owning thread gets the read/write connection; any other thread
        gets its own read-only connection, checked out lazily.  Routing
        through a property fixes the historical thread-affinity bug (every
        cross-thread read died with ``ProgrammingError``) without touching
        the query methods themselves.
        """
        if threading.get_ident() == self._owner_thread:
            return self._write_conn
        conn = getattr(self._thread_readers, "conn", None)
        if conn is None:
            conn = self._checkout_reader()
            self._thread_readers.conn = conn
        return conn

    def _checkout_reader(self) -> sqlite3.Connection:
        """Create, configure and register the calling thread's reader."""
        conn = self._connect()
        conn.execute("PRAGMA busy_timeout = 5000")
        conn.execute("PRAGMA foreign_keys = ON")
        # Readers must never write: a service worker that strays onto a
        # mutating path fails fast instead of corrupting the single-writer
        # discipline WAL mode relies on.
        conn.execute("PRAGMA query_only = ON")
        if self._timing:
            counter = get_registry().counter("warehouse.sql")
            conn.set_trace_callback(lambda _stmt: counter.increment())
        registry = get_registry()
        with self._readers_lock:
            self._all_readers.append(conn)
            pool_size = len(self._all_readers)
        # Metrics are recorded outside the lock; the size was snapshotted
        # inside it so the gauge never under-reports a concurrent checkout.
        registry.counter("warehouse.pool.readers").increment()
        registry.gauge("warehouse.pool.size").set(pool_size)
        return conn

    def _hit(self, site: str) -> None:
        """Fire the fault plan at an instrumented site (no-op without one)."""
        if self.faults is not None:
            self.faults.hit(site)

    def _startup_integrity(self) -> None:
        """Probe an existing database before the DDL pass heals it.

        On a fresh database (no ``io`` table yet) there is nothing to
        probe.  Otherwise run the same check as :meth:`integrity_report`
        and record which expected indexes were missing — the ``IF NOT
        EXISTS`` DDL that follows recreates them, so the repair is counted
        here (``warehouse.integrity.repaired``) and surfaced on
        :attr:`repaired_indexes`.
        """
        tables = {
            name
            for (name,) in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "io" not in tables:
            return
        report = self.integrity_report(repair=False)
        missing = [str(name) for name in report["missing_indexes"]]  # type: ignore[union-attr]
        if missing:
            self.repaired_indexes = missing
            get_registry().counter(
                "warehouse.integrity.repaired"
            ).increment(len(missing))

    def integrity_report(self, repair: bool = False) -> Dict[str, object]:
        """``PRAGMA quick_check`` plus the expected-index inventory.

        Counted under ``warehouse.integrity.checks`` /
        ``warehouse.integrity.failed`` / ``warehouse.integrity.repaired``.
        With ``repair=True`` any missing expected index is recreated on
        the spot (what ``zoom recover`` does).
        """
        registry = get_registry()
        registry.counter("warehouse.integrity.checks").increment()
        row = self._conn.execute("PRAGMA quick_check").fetchone()
        ok = row is not None and row[0] == "ok"
        if not ok:
            registry.counter("warehouse.integrity.failed").increment()
        names = {
            name
            for (name,) in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }
        missing = [
            name for name, _ddl in SQLITE_EXPECTED_INDEXES if name not in names
        ]
        repaired: List[str] = []
        if repair and missing:
            with self._conn:
                for name, ddl in SQLITE_EXPECTED_INDEXES:
                    if name in missing:
                        self._conn.execute(ddl)
                        repaired.append(name)
            registry.counter(
                "warehouse.integrity.repaired"
            ).increment(len(repaired))
        return {"ok": ok, "missing_indexes": missing, "repaired": repaired}

    def _apply_session_pragmas(self) -> None:
        """The connection profile: WAL + busy retry, durability by mode.

        * every session: ``foreign_keys = ON``, ``journal_mode = WAL``,
          ``busy_timeout = 5000``;
        * service profile (default): ``synchronous = NORMAL`` — with WAL,
          commits are consistent across crashes and fsync happens at
          checkpoint time;
        * bulk profile (``bulk=True``): ``synchronous = OFF`` and
          ``temp_store = MEMORY`` — maximum load throughput, crash safety
          delegated to "re-run the loader".
        """
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA busy_timeout = 5000")
        if self._bulk:
            self._conn.execute("PRAGMA synchronous = OFF")
            self._conn.execute("PRAGMA temp_store = MEMORY")
        else:
            self._conn.execute("PRAGMA synchronous = NORMAL")

    @contextmanager
    def _bulk_writes(self) -> Iterator[None]:
        """Run one batch commit under the bulk profile, then restore.

        On a ``bulk=True`` connection this is a no-op (the profile is
        already session-wide).  Otherwise ``synchronous`` drops to ``OFF``
        for the duration and is restored to ``NORMAL`` afterwards even on
        error — one fsync policy decision, documented here, instead of
        pragma statements scattered through the write paths.
        """
        if self._bulk:
            yield
            return
        self._conn.execute("PRAGMA synchronous = OFF")
        try:
            yield
        finally:
            self._conn.execute("PRAGMA synchronous = NORMAL")

    @contextmanager
    def bulk_load(self) -> Iterator[None]:
        """Defer the ``io`` secondary indexes across a whole ingestion.

        Only active on a ``bulk=True`` connection (the service profile
        keeps every index live for concurrent readers): the two covering
        indexes over ``io`` are dropped on entry and rebuilt on exit —
        one sorted ``CREATE INDEX`` pass over the final relation instead
        of two b-tree insertions per ``io`` row.  The rebuild runs in a
        ``finally`` block, so even an ingestion that raises leaves the
        warehouse fully indexed.

        An ingestion that **raises** additionally demotes the connection
        back to the durable service profile (``synchronous = NORMAL``,
        default ``temp_store``): a failed bulk load may be followed by
        service traffic on the same object, and the relaxed fsync policy
        must not leak into it.  Only a genuine process kill (the chaos
        suite's ``InjectedCrash`` before the rebuild) can leave the
        profile and indexes behind — exactly the state the startup
        integrity probe repairs.
        """
        if not self._bulk:
            yield
            return
        with self._conn:
            for name, _ddl in SQLITE_IO_INDEXES:
                self._conn.execute("DROP INDEX IF EXISTS %s" % name)
        failed = False
        try:
            yield
        except BaseException:
            failed = True
            raise
        finally:
            self._hit("bulk_load.rebuild")
            with self._conn:
                for _name, ddl in SQLITE_IO_INDEXES:
                    self._conn.execute(ddl)
            if failed:
                self._bulk = False
                self._conn.execute("PRAGMA synchronous = NORMAL")
                self._conn.execute("PRAGMA temp_store = DEFAULT")

    def close(self) -> None:  # owner-only
        """Close the write connection and every checked-out reader."""
        with self._readers_lock:
            readers = list(self._all_readers)
            self._all_readers.clear()
        for conn in readers:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover — already closed
                pass
        self._write_conn.close()

    def __enter__(self) -> "SqliteWarehouse":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @contextmanager
    def _snapshot(self) -> Iterator[None]:
        """Pin one WAL snapshot across a multi-statement read.

        A reader reconstructing a run issues several SELECTs; under a
        concurrent streaming append an epoch could commit between them and
        tear the reconstruction across two prefixes.  Wrapping the reads
        in an explicit deferred transaction pins the per-thread reader
        connection to the snapshot its first SELECT sees.  On the owner
        thread (where writes are serialized with reads by construction)
        and inside an already-open transaction this is a no-op.
        """
        conn = self._conn
        # Identity comparison only, no use of the connection — safe from
        # any thread.  # provlint: ignore=SRC050
        if conn is self._write_conn or conn.in_transaction:
            yield
            return
        conn.execute("BEGIN")
        try:
            yield
        finally:
            conn.execute("COMMIT")

    def get_run(self, run_id: str) -> WorkflowRun:
        with self._snapshot():
            return super().get_run(run_id)

    def _exists(self, table: str, key: str, value: str) -> bool:
        cursor = self._conn.execute(
            "SELECT 1 FROM %s WHERE %s = ? LIMIT 1" % (table, key), (value,)
        )
        return cursor.fetchone() is not None

    def _require(self, table: str, key: str, value: str, kind: str) -> None:
        if not self._exists(table, key, value):
            raise self._missing(kind, value)

    # ------------------------------------------------------------------
    # Specifications
    # ------------------------------------------------------------------

    def store_spec(self, spec: WorkflowSpec, spec_id: Optional[str] = None) -> str:
        identifier = spec_id or spec.name
        if self._exists("spec", "spec_id", identifier):
            raise WarehouseError("identifier %r already stored" % identifier)
        with self._conn:
            self._conn.execute(
                "INSERT INTO spec (spec_id, name) VALUES (?, ?)",
                (identifier, spec.name),
            )
            self._conn.executemany(
                "INSERT INTO module (spec_id, module) VALUES (?, ?)",
                [(identifier, m) for m in sorted(spec.modules)],
            )
            self._conn.executemany(
                "INSERT INTO spec_edge (spec_id, src, dst) VALUES (?, ?, ?)",
                [(identifier, src, dst) for src, dst in sorted(spec.edges())],
            )
        return identifier

    def get_spec(self, spec_id: str) -> WorkflowSpec:
        row = self._conn.execute(
            "SELECT name FROM spec WHERE spec_id = ?", (spec_id,)
        ).fetchone()
        if row is None:
            raise self._missing("spec", spec_id)
        modules = [
            m
            for (m,) in self._conn.execute(
                "SELECT module FROM module WHERE spec_id = ? ORDER BY module",
                (spec_id,),
            )
        ]
        edges = [
            (src, dst)
            for src, dst in self._conn.execute(
                "SELECT src, dst FROM spec_edge WHERE spec_id = ? ORDER BY src, dst",
                (spec_id,),
            )
        ]
        return WorkflowSpec(modules, edges, name=row[0])

    def list_specs(self) -> List[str]:
        return [
            spec_id
            for (spec_id,) in self._conn.execute(
                "SELECT spec_id FROM spec ORDER BY spec_id"
            )
        ]

    def spec_rows(self, spec_id: str) -> Dict[str, object]:
        """Raw module/spec_edge rows, unvalidated (lint audits at rest)."""
        row = self._conn.execute(
            "SELECT name FROM spec WHERE spec_id = ?", (spec_id,)
        ).fetchone()
        if row is None:
            raise self._missing("spec", spec_id)
        return {
            "name": row[0],
            "modules": [
                m
                for (m,) in self._conn.execute(
                    "SELECT module FROM module WHERE spec_id = ?"
                    " ORDER BY module",
                    (spec_id,),
                )
            ],
            "edges": [
                (src, dst)
                for src, dst in self._conn.execute(
                    "SELECT src, dst FROM spec_edge WHERE spec_id = ?"
                    " ORDER BY src, dst",
                    (spec_id,),
                )
            ],
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def store_view(
        self, view: UserView, spec_id: str, view_id: Optional[str] = None
    ) -> str:
        stored_spec = self.get_spec(spec_id)
        if view.spec != stored_spec:
            raise WarehouseError(
                "view %r does not match stored spec %r" % (view.name, spec_id)
            )
        identifier = view_id or view.name
        if self._exists("view_def", "view_id", identifier):
            raise WarehouseError("identifier %r already stored" % identifier)
        with self._conn:
            self._conn.execute(
                "INSERT INTO view_def (view_id, spec_id, name) VALUES (?, ?, ?)",
                (identifier, spec_id, view.name),
            )
            rows = [
                (identifier, composite, module)
                for composite in sorted(view.composites)
                for module in sorted(view.members(composite))
            ]
            self._conn.executemany(
                "INSERT INTO view_member (view_id, composite, module)"
                " VALUES (?, ?, ?)",
                rows,
            )
        return identifier

    def get_view(self, view_id: str) -> UserView:
        row = self._conn.execute(
            "SELECT spec_id, name FROM view_def WHERE view_id = ?", (view_id,)
        ).fetchone()
        if row is None:
            raise self._missing("view", view_id)
        spec = self.get_spec(row[0])
        composites: Dict[str, List[str]] = {}
        for composite, module in self._conn.execute(
            "SELECT composite, module FROM view_member WHERE view_id = ?"
            " ORDER BY composite, module",
            (view_id,),
        ):
            composites.setdefault(composite, []).append(module)
        return UserView(spec, composites, name=row[1])

    def view_rows(self, view_id: str) -> Tuple[str, str, Dict[str, List[str]]]:
        """Raw view_def/view_member rows, unvalidated (lint audits at rest)."""
        row = self._conn.execute(
            "SELECT spec_id, name FROM view_def WHERE view_id = ?", (view_id,)
        ).fetchone()
        if row is None:
            raise self._missing("view", view_id)
        composites: Dict[str, List[str]] = {}
        for composite, module in self._conn.execute(
            "SELECT composite, module FROM view_member WHERE view_id = ?"
            " ORDER BY composite, module",
            (view_id,),
        ):
            composites.setdefault(composite, []).append(module)
        return row[0], row[1], composites

    def list_views(self, spec_id: Optional[str] = None) -> List[str]:
        if spec_id is None:
            cursor = self._conn.execute(
                "SELECT view_id FROM view_def ORDER BY view_id"
            )
        else:
            cursor = self._conn.execute(
                "SELECT view_id FROM view_def WHERE spec_id = ? ORDER BY view_id",
                (spec_id,),
            )
        return [view_id for (view_id,) in cursor]

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def store_run(
        self, run: WorkflowRun, spec_id: str, run_id: Optional[str] = None
    ) -> str:
        stored_spec = self.get_spec(spec_id)
        if run.spec != stored_spec:
            raise WarehouseError(
                "run %r does not match stored spec %r" % (run.run_id, spec_id)
            )
        run.validate()  # the warehouse only ever holds valid runs
        identifier = run_id or run.run_id
        if self._exists("run_def", "run_id", identifier):
            raise WarehouseError("identifier %r already stored" % identifier)
        step_rows: List[Tuple[str, str, str]] = []
        io_rows: List[Tuple[str, str, str, str]] = []
        for step in run.steps():
            step_rows.append((identifier, step.step_id, step.module))
            for data_id in sorted(run.inputs_of(step.step_id)):
                io_rows.append((identifier, step.step_id, data_id, DIR_IN))
            for data_id in sorted(run.outputs_of(step.step_id)):
                io_rows.append((identifier, step.step_id, data_id, DIR_OUT))
        with self._conn:
            self._conn.execute(
                "INSERT INTO run_def (run_id, spec_id) VALUES (?, ?)",
                (identifier, spec_id),
            )
            self._conn.executemany(
                "INSERT INTO step (run_id, step_id, module) VALUES (?, ?, ?)",
                step_rows,
            )
            self._conn.executemany(
                "INSERT INTO io (run_id, step_id, data_id, direction)"
                " VALUES (?, ?, ?, ?)",
                io_rows,
            )
            self._conn.executemany(
                "INSERT INTO user_input (run_id, data_id) VALUES (?, ?)",
                [(identifier, d) for d in sorted(run.user_inputs())],
            )
            self._conn.executemany(
                "INSERT INTO final_output (run_id, data_id) VALUES (?, ?)",
                [(identifier, d) for d in sorted(run.final_outputs())],
            )
        if self.auto_index:
            self.build_lineage_index(identifier)
        return identifier

    @with_retries()
    def store_many(self, prepared: Sequence["PreparedRun"]) -> List[str]:
        """Commit a batch of prepared runs in one transaction.

        Five prepared ``executemany`` statements over the pre-shaped row
        tuples (run_def, step, io, user_input, final_output), then — for
        prepared runs carrying a closure — the compact lineage expansion
        of :meth:`_insert_closure_compact`, all inside a single
        transaction under the bulk pragma profile.  Id freshness is
        checked against one precomputed set (batch + stored), so a batch
        is O(batch) instead of O(batch * stored).

        Transient lock/busy contention (another loader holding the write
        lock) is retried with backoff by :func:`~repro.obs.retry.with_retries`
        — safe because the transaction is atomic: a locked-out attempt
        stored nothing.
        """
        self._hit("store_many.begin")
        batch = list(prepared)
        if not batch:
            return []
        known_specs = set(self.list_specs())
        existing = set(self.list_runs())
        for p in batch:
            if p.spec_id not in known_specs:
                raise self._missing("spec", p.spec_id)
            self._fresh_id(p.run_id, p.run_id, existing)
            existing.add(p.run_id)
        with self._bulk_writes():
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO run_def (run_id, spec_id) VALUES (?, ?)",
                    [(p.run_id, p.spec_id) for p in batch],
                )
                # A crash from here on aborts the whole transaction —
                # SQLite rolls the batch back on recovery, exactly the
                # hard-kill semantics the chaos suite simulates.
                self._hit("store_many.mid")
                self._conn.executemany(
                    "INSERT INTO step (run_id, step_id, module)"
                    " VALUES (?, ?, ?)",
                    [(p.run_id, step_id, module)
                     for p in batch for step_id, module in p.step_rows],
                )
                self._conn.executemany(
                    "INSERT INTO io (run_id, step_id, data_id, direction)"
                    " VALUES (?, ?, ?, ?)",
                    [(p.run_id, step_id, data_id, direction)
                     for p in batch
                     for step_id, data_id, direction in p.io_rows],
                )
                self._conn.executemany(
                    "INSERT INTO user_input (run_id, data_id) VALUES (?, ?)",
                    [(p.run_id, d) for p in batch for d in p.user_inputs],
                )
                self._conn.executemany(
                    "INSERT INTO final_output (run_id, data_id) VALUES (?, ?)",
                    [(p.run_id, d) for p in batch for d in p.final_outputs],
                )
                for p in batch:
                    if p.closure is not None:
                        self._insert_closure_compact(p.closure)
                    if p.labels is not None:
                        self._insert_label_rows(p.labels)
        return [p.run_id for p in batch]

    def _insert_closure_compact(self, closure: "LineageClosure") -> None:
        """Expand and store a closure SQL-side, from its compact form.

        The expanded ``lineage`` relation repeats each ancestor step's
        input list once per descendant data object — for deep workflows
        that is orders of magnitude more rows than the closure's compact
        dict-of-shared-frozensets form holds.  Rather than expanding in
        Python and pushing ~N*M tuples through ``executemany``
        (:meth:`_store_lineage_closure`, the reference), this inserts only
        the *distinct* ancestor sets into temp tables and lets one
        ``INSERT ... SELECT`` join against ``io`` do the expansion in C.
        The ``ORDER BY`` matters: the WITHOUT ROWID b-tree is filled in
        key order instead of randomly.  Must run inside the caller's
        transaction, after the run's ``io`` rows are inserted.
        """
        self._conn.execute(
            "CREATE TEMP TABLE IF NOT EXISTS bulk_anc_set"
            " (set_id INTEGER, step_id TEXT)"
        )
        self._conn.execute(
            "CREATE TEMP TABLE IF NOT EXISTS bulk_data_set"
            " (data_id TEXT, set_id INTEGER)"
        )
        self._conn.execute("DELETE FROM bulk_anc_set")
        self._conn.execute("DELETE FROM bulk_data_set")
        set_ids: Dict[FrozenSet[str], int] = {}
        anc_rows: List[Tuple[int, str]] = []
        data_rows: List[Tuple[str, int]] = []
        for data_id, steps in closure.lineage_steps.items():
            set_id = set_ids.get(steps)
            if set_id is None:
                set_id = set_ids[steps] = len(set_ids)
                anc_rows.extend((set_id, step_id) for step_id in steps)
            data_rows.append((data_id, set_id))
        self._conn.executemany(
            "INSERT INTO bulk_anc_set (set_id, step_id) VALUES (?, ?)",
            anc_rows,
        )
        self._conn.executemany(
            "INSERT INTO bulk_data_set (data_id, set_id) VALUES (?, ?)",
            data_rows,
        )
        params = {"run_id": closure.run_id, "marker": INPUT, "dir_in": DIR_IN}
        # (data, ancestor step, that step's input) expansion rows.
        self._conn.execute(
            "INSERT INTO lineage (run_id, data_id, step_id, data_in)"
            " SELECT :run_id, d.data_id, a.step_id, io.data_id"
            " FROM bulk_data_set AS d"
            " JOIN bulk_anc_set AS a ON a.set_id = d.set_id"
            " JOIN io ON io.run_id = :run_id AND io.step_id = a.step_id"
            "  AND io.direction = :dir_in"
            " ORDER BY d.data_id, a.step_id, io.data_id",
            params,
        )
        # (data, 'input', user input) markers: a user input is in a data
        # object's lineage exactly when some ancestor step reads it.
        self._conn.execute(
            "INSERT OR IGNORE INTO lineage (run_id, data_id, step_id, data_in)"
            " SELECT DISTINCT :run_id, d.data_id, :marker, io.data_id"
            " FROM bulk_data_set AS d"
            " JOIN bulk_anc_set AS a ON a.set_id = d.set_id"
            " JOIN io ON io.run_id = :run_id AND io.step_id = a.step_id"
            "  AND io.direction = :dir_in"
            " JOIN user_input AS u ON u.run_id = :run_id"
            "  AND u.data_id = io.data_id",
            params,
        )
        # A user input's own lineage is itself.
        self._conn.execute(
            "INSERT OR IGNORE INTO lineage (run_id, data_id, step_id, data_in)"
            " SELECT :run_id, data_id, :marker, data_id"
            " FROM user_input WHERE run_id = :run_id",
            params,
        )
        self._conn.execute(
            "INSERT INTO lineage_meta (run_id, row_count)"
            " SELECT :run_id, COUNT(*) FROM lineage WHERE run_id = :run_id",
            params,
        )

    # ------------------------------------------------------------------
    # Ingest journal and quarantine (crash-safe ingestion)
    # ------------------------------------------------------------------

    @with_retries()
    def journal_begin(self, entries: Sequence["JournalEntry"]) -> None:
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO _ingest_journal"
                " (run_id, spec_id, checksum, batch, state)"
                " VALUES (?, ?, ?, ?, ?)",
                [(e.run_id, e.spec_id, e.checksum, e.batch, JOURNAL_PENDING)
                 for e in entries],
            )

    @with_retries()
    def journal_commit(self, run_ids: Sequence[str]) -> None:
        with self._conn:
            self._conn.executemany(
                "UPDATE _ingest_journal SET state = ? WHERE run_id = ?",
                [(JOURNAL_COMMITTED, run_id) for run_id in run_ids],
            )

    @with_retries()
    def journal_discard(self, run_ids: Sequence[str]) -> None:
        with self._conn:
            self._conn.executemany(
                "DELETE FROM _ingest_journal WHERE run_id = ?",
                [(run_id,) for run_id in run_ids],
            )

    def journal_entries(
        self, state: Optional[str] = None
    ) -> List["JournalEntry"]:
        if state is None:
            cursor = self._conn.execute(
                "SELECT run_id, spec_id, checksum, batch, state"
                " FROM _ingest_journal ORDER BY run_id"
            )
        else:
            cursor = self._conn.execute(
                "SELECT run_id, spec_id, checksum, batch, state"
                " FROM _ingest_journal WHERE state = ? ORDER BY run_id",
                (state,),
            )
        return [
            JournalEntry(run_id=r, spec_id=s, checksum=c, batch=b, state=st)
            for r, s, c, b, st in cursor
        ]

    @with_retries()
    def quarantine_add(self, record: "QuarantineRecord") -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO _ingest_quarantine"
                " (run_id, spec_id, reason, event_index, payload)"
                " VALUES (?, ?, ?, ?, ?)",
                (record.run_id, record.spec_id, record.reason,
                 record.event_index, record.to_payload()),
            )

    def quarantine_list(self) -> List[str]:
        return [
            run_id
            for (run_id,) in self._conn.execute(
                "SELECT run_id FROM _ingest_quarantine ORDER BY run_id"
            )
        ]

    def quarantine_get(self, run_id: str) -> "QuarantineRecord":
        row = self._conn.execute(
            "SELECT spec_id, reason, event_index, payload"
            " FROM _ingest_quarantine WHERE run_id = ?",
            (run_id,),
        ).fetchone()
        if row is None:
            raise self._missing("quarantined run", run_id)
        return QuarantineRecord.from_payload(
            run_id, row[0], row[1], row[2], row[3]
        )

    def quarantine_delete(self, run_id: str) -> None:
        with self._conn:
            deleted = self._conn.execute(
                "DELETE FROM _ingest_quarantine WHERE run_id = ?", (run_id,)
            )
            if deleted.rowcount == 0:
                raise self._missing("quarantined run", run_id)

    # ------------------------------------------------------------------
    # Streaming appends (open runs)
    # ------------------------------------------------------------------

    def stream_begin(
        self,
        run_id: str,
        spec_id: str,
        *,
        checksum: str,
        opened_at: Optional[float] = None,
    ) -> None:
        self.get_spec(spec_id)  # raise for unknown specs
        if self._exists("run_def", "run_id", run_id):
            raise WarehouseError("identifier %r already stored" % run_id)
        with self._conn:
            self._conn.execute(
                "INSERT INTO run_def (run_id, spec_id) VALUES (?, ?)",
                (run_id, spec_id),
            )
            self._conn.execute(
                "INSERT INTO _stream_state"
                " (run_id, spec_id, epoch, delta_epoch, checksum, opened_at,"
                "  state) VALUES (?, ?, 0, 0, ?, ?, 'open')",
                (run_id, spec_id, checksum, opened_at),
            )

    def stream_state(self, run_id: str) -> Optional[StreamState]:
        row = self._conn.execute(
            "SELECT run_id, spec_id, epoch, delta_epoch, checksum, opened_at"
            " FROM _stream_state WHERE run_id = ?",
            (run_id,),
        ).fetchone()
        if row is None:
            return None
        return StreamState(*row)

    def stream_states(self) -> Dict[str, StreamState]:
        return {
            row[0]: StreamState(*row)
            for row in self._conn.execute(
                "SELECT run_id, spec_id, epoch, delta_epoch, checksum,"
                " opened_at FROM _stream_state ORDER BY run_id"
            )
        }

    @with_retries()
    def stream_apply(
        self,
        run_id: str,
        *,
        epoch: int,
        checksum: str,
        step_rows: Sequence[Tuple[str, str]],
        io_rows: Sequence[Tuple[str, str, str]],
        user_inputs: Sequence[Tuple[str, str]],
        final_outputs: Sequence[str],
    ) -> None:
        """Apply one epoch's delta in a single transaction.

        The delta rows and the ``_stream_state`` advance commit together,
        so a crash anywhere inside — including the instrumented
        ``stream.append`` site — rolls the whole epoch back to the
        previous consistent prefix.  An injected lock error at the same
        site aborts the transaction and is retried whole by
        :func:`~repro.obs.retry.with_retries`; ``INSERT OR IGNORE`` keeps
        replayed rows idempotent.
        """
        if self.stream_state(run_id) is None:
            raise WarehouseError("run %r is not open for streaming" % run_id)
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO step (run_id, step_id, module)"
                " VALUES (?, ?, ?)",
                [(run_id, step_id, module) for step_id, module in step_rows],
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO io"
                " (run_id, step_id, data_id, direction) VALUES (?, ?, ?, ?)",
                [(run_id, step_id, data_id, direction)
                 for step_id, data_id, direction in io_rows],
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO user_input (run_id, data_id, who)"
                " VALUES (?, ?, ?)",
                [(run_id, data_id, who) for data_id, who in user_inputs],
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO final_output (run_id, data_id)"
                " VALUES (?, ?)",
                [(run_id, data_id) for data_id in final_outputs],
            )
            self._hit("stream.append")
            self._conn.execute(
                "UPDATE _stream_state SET epoch = ?, checksum = ?"
                " WHERE run_id = ?",
                (epoch, checksum, run_id),
            )

    @with_retries()
    def stream_mark_delta(self, run_id: str, epoch: int) -> None:
        with self._conn:
            updated = self._conn.execute(
                "UPDATE _stream_state SET delta_epoch = ? WHERE run_id = ?",
                (epoch, run_id),
            )
            if updated.rowcount == 0:
                raise WarehouseError(
                    "run %r is not open for streaming" % run_id
                )

    @with_retries()
    def stream_close(self, run_id: str) -> None:
        with self._conn:
            deleted = self._conn.execute(
                "DELETE FROM _stream_state WHERE run_id = ?", (run_id,)
            )
            if deleted.rowcount == 0:
                raise self._missing("open streaming run", run_id)

    def list_runs(self, spec_id: Optional[str] = None) -> List[str]:
        if spec_id is None:
            cursor = self._conn.execute("SELECT run_id FROM run_def ORDER BY run_id")
        else:
            cursor = self._conn.execute(
                "SELECT run_id FROM run_def WHERE spec_id = ? ORDER BY run_id",
                (spec_id,),
            )
        return [run_id for (run_id,) in cursor]

    def run_spec_id(self, run_id: str) -> str:
        row = self._conn.execute(
            "SELECT spec_id FROM run_def WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise self._missing("run", run_id)
        return row[0]

    # ------------------------------------------------------------------
    # Row-level primitives
    # ------------------------------------------------------------------

    def steps_of_run(self, run_id: str) -> List[Tuple[str, str]]:
        self._require("run_def", "run_id", run_id, "run")
        return [
            (step_id, module)
            for step_id, module in self._conn.execute(
                "SELECT step_id, module FROM step WHERE run_id = ? ORDER BY step_id",
                (run_id,),
            )
        ]

    def io_rows(self, run_id: str) -> List[Tuple[str, str, str]]:
        self._require("run_def", "run_id", run_id, "run")
        return [
            tuple(row)
            for row in self._conn.execute(
                "SELECT step_id, data_id, direction FROM io WHERE run_id = ?"
                " ORDER BY step_id, direction, data_id",
                (run_id,),
            )
        ]

    def user_inputs(self, run_id: str) -> FrozenSet[str]:
        self._require("run_def", "run_id", run_id, "run")
        return frozenset(
            data_id
            for (data_id,) in self._conn.execute(
                "SELECT data_id FROM user_input WHERE run_id = ?", (run_id,)
            )
        )

    def final_outputs(self, run_id: str) -> FrozenSet[str]:
        self._require("run_def", "run_id", run_id, "run")
        return frozenset(
            data_id
            for (data_id,) in self._conn.execute(
                "SELECT data_id FROM final_output WHERE run_id = ?", (run_id,)
            )
        )

    def producer_of(self, run_id: str, data_id: str) -> str:
        rows = self._conn.execute(
            "SELECT step_id FROM io WHERE run_id = ? AND data_id = ?"
            " AND direction = ?",
            (run_id, data_id, DIR_OUT),
        ).fetchall()
        if len(rows) > 1:
            # A data object with two producers violates the run model; a
            # bare fetchone() would nondeterministically pick one and turn
            # table corruption into silently wrong provenance.
            raise WarehouseError(
                "data %r in run %r has %d producing steps (%s); "
                "the io table is corrupt"
                % (data_id, run_id, len(rows),
                   ", ".join(sorted(step for (step,) in rows)))
            )
        if rows:
            return rows[0][0]
        user = self._conn.execute(
            "SELECT 1 FROM user_input WHERE run_id = ? AND data_id = ?",
            (run_id, data_id),
        ).fetchone()
        if user is not None:
            return INPUT
        raise self._missing("data", data_id)

    def step_inputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        self.module_of_step(run_id, step_id)  # validates (run, step)
        return frozenset(
            data_id
            for (data_id,) in self._conn.execute(
                "SELECT data_id FROM io WHERE run_id = ? AND step_id = ?"
                " AND direction = ?",
                (run_id, step_id, DIR_IN),
            )
        )

    def step_outputs(self, run_id: str, step_id: str) -> FrozenSet[str]:
        self.module_of_step(run_id, step_id)  # validates (run, step)
        return frozenset(
            data_id
            for (data_id,) in self._conn.execute(
                "SELECT data_id FROM io WHERE run_id = ? AND step_id = ?"
                " AND direction = ?",
                (run_id, step_id, DIR_OUT),
            )
        )

    def module_of_step(self, run_id: str, step_id: str) -> str:
        row = self._conn.execute(
            "SELECT module FROM step WHERE run_id = ? AND step_id = ?",
            (run_id, step_id),
        ).fetchone()
        if row is None:
            raise self._missing("step", step_id)
        return row[0]

    # ------------------------------------------------------------------
    # User-input metadata and annotations
    # ------------------------------------------------------------------

    def user_input_who(self, run_id: str, data_id: str) -> str:
        row = self._conn.execute(
            "SELECT who FROM user_input WHERE run_id = ? AND data_id = ?",
            (run_id, data_id),
        ).fetchone()
        if row is None:
            raise self._missing("user input", data_id)
        return row[0]

    def _set_user_input_who(self, run_id: str, who: Dict[str, str]) -> None:
        with self._conn:
            for data_id, supplier in sorted(who.items()):
                updated = self._conn.execute(
                    "UPDATE user_input SET who = ? WHERE run_id = ?"
                    " AND data_id = ?",
                    (supplier, run_id, data_id),
                )
                if updated.rowcount == 0:
                    raise WarehouseError(
                        "not a user input of %r: %r" % (run_id, data_id)
                    )

    def annotate(self, run_id: str, subject: str, key: str, value: str) -> None:
        is_step = self._conn.execute(
            "SELECT 1 FROM step WHERE run_id = ? AND step_id = ?",
            (run_id, subject),
        ).fetchone()
        is_data = self._conn.execute(
            "SELECT 1 FROM io WHERE run_id = ? AND data_id = ? LIMIT 1",
            (run_id, subject),
        ).fetchone() or self._conn.execute(
            "SELECT 1 FROM user_input WHERE run_id = ? AND data_id = ?",
            (run_id, subject),
        ).fetchone()
        if not is_step and not is_data:
            raise self._missing("step or data", subject)
        with self._conn:
            self._conn.execute(
                "INSERT INTO annotation (run_id, subject, key, value)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT (run_id, subject, key)"
                " DO UPDATE SET value = excluded.value",
                (run_id, subject, key, value),
            )

    def annotations_of(self, run_id: str, subject: str) -> Dict[str, str]:
        return {
            key: value
            for key, value in self._conn.execute(
                "SELECT key, value FROM annotation WHERE run_id = ?"
                " AND subject = ?",
                (run_id, subject),
            )
        }

    def find_annotated(
        self, run_id: str, key: str, value: Optional[str] = None
    ) -> List[str]:
        if value is None:
            cursor = self._conn.execute(
                "SELECT subject FROM annotation WHERE run_id = ? AND key = ?"
                " ORDER BY subject",
                (run_id, key),
            )
        else:
            cursor = self._conn.execute(
                "SELECT subject FROM annotation WHERE run_id = ? AND key = ?"
                " AND value = ? ORDER BY subject",
                (run_id, key, value),
            )
        return [subject for (subject,) in cursor]

    # ------------------------------------------------------------------
    # Materialized lineage-closure index
    # ------------------------------------------------------------------

    def _store_lineage_closure(self, closure: "LineageClosure") -> None:
        rows = [
            (closure.run_id, data_id, step_id, data_in)
            for data_id, step_id, data_in in closure.iter_table_rows()
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO lineage (run_id, data_id, step_id, data_in)"
                " VALUES (?, ?, ?, ?)",
                rows,
            )
            self._conn.execute(
                "INSERT INTO lineage_meta (run_id, row_count) VALUES (?, ?)",
                (closure.run_id, len(rows)),
            )

    def has_lineage_index(self, run_id: str) -> bool:
        self._require("run_def", "run_id", run_id, "run")
        return self._exists("lineage_meta", "run_id", run_id)

    def lineage_row_count(self, run_id: str) -> Optional[int]:
        self._require("run_def", "run_id", run_id, "run")
        row = self._conn.execute(
            "SELECT row_count FROM lineage_meta WHERE run_id = ?", (run_id,)
        ).fetchone()
        return None if row is None else row[0]

    def drop_lineage_index(self, run_id: Optional[str] = None) -> List[str]:
        if run_id is None:
            targets = [
                rid
                for (rid,) in self._conn.execute(
                    "SELECT run_id FROM lineage_meta ORDER BY run_id"
                )
            ]
        else:
            self._require("run_def", "run_id", run_id, "run")
            targets = [run_id] if self._exists("lineage_meta", "run_id", run_id) else []
        with self._conn:
            for target in targets:
                self._conn.execute(
                    "DELETE FROM lineage WHERE run_id = ?", (target,)
                )
                self._conn.execute(
                    "DELETE FROM lineage_meta WHERE run_id = ?", (target,)
                )
        return targets

    def lineage_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        with self._snapshot():
            if not self.has_lineage_index(run_id):
                raise WarehouseError("run %r has no lineage index" % run_id)
            # Validate the data id first; a range scan over an unknown
            # object would silently return an empty lineage.
            self.producer_of(run_id, data_id)
            params = {"run_id": run_id, "data_id": data_id, "input": INPUT}
            result = ProvenanceResult(target=data_id, view_name="UAdmin")
            for step_id, module, data_in in self._conn.execute(
                SQLITE_LINEAGE_LOOKUP, params
            ):
                result.rows.append(
                    ProvenanceRow(
                        step_id=step_id, module=module, data_in=data_in
                    )
                )
            for (user_input,) in self._conn.execute(
                SQLITE_LINEAGE_LOOKUP_INPUTS, params
            ):
                result.user_inputs.add(user_input)
            return result

    def lineage_rows_raw(self, run_id: str) -> Set[Tuple[str, str, str]]:
        self._require("run_def", "run_id", run_id, "run")
        return {
            tuple(row)
            for row in self._conn.execute(
                "SELECT data_id, step_id, data_in FROM lineage"
                " WHERE run_id = ?",
                (run_id,),
            )
        }

    @with_retries()
    def extend_lineage_index(
        self, run_id: str, rows: Sequence[Tuple[str, str, str]]
    ) -> int:
        if not self.has_lineage_index(run_id):
            raise WarehouseError("run %r has no lineage index" % run_id)
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO lineage"
                " (run_id, data_id, step_id, data_in) VALUES (?, ?, ?, ?)",
                [(run_id, data_id, step_id, data_in)
                 for data_id, step_id, data_in in rows],
            )
            self._conn.execute(
                "UPDATE lineage_meta SET row_count ="
                " (SELECT COUNT(*) FROM lineage WHERE run_id = ?)"
                " WHERE run_id = ?",
                (run_id, run_id),
            )
        count = self.lineage_row_count(run_id)
        return 0 if count is None else count

    # ------------------------------------------------------------------
    # Compact reachability labels
    # ------------------------------------------------------------------

    def _insert_label_rows(self, labels: "LineageLabels") -> None:
        """Insert one run's label rows; runs inside the caller's transaction."""
        rows = [
            (labels.run_id, step_id, pre, post, parent, remainder)
            for step_id, pre, post, parent, remainder
            in labels.iter_table_rows()
        ]
        self._conn.executemany(
            "INSERT INTO lineage_labels"
            " (run_id, step_id, pre, post, tree_parent, remainder)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.execute(
            "INSERT INTO labels_meta (run_id, version, row_count)"
            " VALUES (?, ?, ?)",
            (labels.run_id, labels.version, len(rows)),
        )

    def _store_lineage_labels(self, labels: "LineageLabels") -> None:
        with self._conn:
            self._insert_label_rows(labels)

    def has_label_index(self, run_id: str) -> bool:
        self._require("run_def", "run_id", run_id, "run")
        return self._exists("labels_meta", "run_id", run_id)

    def label_row_count(self, run_id: str) -> Optional[int]:
        self._require("run_def", "run_id", run_id, "run")
        row = self._conn.execute(
            "SELECT row_count FROM labels_meta WHERE run_id = ?", (run_id,)
        ).fetchone()
        return None if row is None else row[0]

    def label_index_version(self, run_id: str) -> Optional[int]:
        self._require("run_def", "run_id", run_id, "run")
        row = self._conn.execute(
            "SELECT version FROM labels_meta WHERE run_id = ?", (run_id,)
        ).fetchone()
        return None if row is None else row[0]

    def drop_label_index(self, run_id: Optional[str] = None) -> List[str]:
        if run_id is None:
            targets = [
                rid
                for (rid,) in self._conn.execute(
                    "SELECT run_id FROM labels_meta ORDER BY run_id"
                )
            ]
        else:
            self._require("run_def", "run_id", run_id, "run")
            targets = [run_id] if self._exists("labels_meta", "run_id", run_id) else []
        with self._conn:
            for target in targets:
                self._conn.execute(
                    "DELETE FROM lineage_labels WHERE run_id = ?", (target,)
                )
                self._conn.execute(
                    "DELETE FROM labels_meta WHERE run_id = ?", (target,)
                )
        return targets

    def label_lookup(self, run_id: str, data_id: str) -> ProvenanceResult:
        from ..provenance.labels import labels_from_stored

        with self._snapshot():
            version = self.label_index_version(run_id)
            if version is None:
                raise WarehouseError("run %r has no label index" % run_id)
            # Validate the data id first; rehydration would otherwise
            # report an unknown object as "not covered" instead of
            # unknown.
            self.producer_of(run_id, data_id)
            label_rows = [
                (step_id, pre, post, parent, remainder)
                for step_id, pre, post, parent, remainder
                in self._conn.execute(
                    "SELECT step_id, pre, post, tree_parent, remainder"
                    " FROM lineage_labels WHERE run_id = ?",
                    (run_id,),
                )
            ]
            labels = labels_from_stored(
                run_id,
                label_rows,
                self.steps_of_run(run_id),
                self.io_rows(run_id),
                sorted(self.user_inputs(run_id)),
                version=version,
            )
        return labels.result_for(data_id)

    def label_rows_raw(self, run_id: str) -> Set[Tuple[str, int, int, str, str]]:
        self._require("run_def", "run_id", run_id, "run")
        return {
            tuple(row)
            for row in self._conn.execute(
                "SELECT step_id, pre, post, tree_parent, remainder"
                " FROM lineage_labels WHERE run_id = ?",
                (run_id,),
            )
        }

    def delete_run(self, run_id: str) -> None:
        self._require("run_def", "run_id", run_id, "run")
        with self._conn:
            # Children first: every dependent table references run_def.
            # The journal and quarantine rows go too — deleting a run is
            # a statement that the warehouse no longer tracks it at all.
            for table in (
                "lineage",
                "lineage_meta",
                "lineage_labels",
                "labels_meta",
                "annotation",
                "final_output",
                "user_input",
                "io",
                "step",
                "run_def",
                "_ingest_journal",
                "_ingest_quarantine",
                "_stream_state",
            ):
                self._conn.execute(
                    "DELETE FROM %s WHERE run_id = ?" % table, (run_id,)
                )

    # ------------------------------------------------------------------
    # Recursive closure (WITH RECURSIVE; served from the index when built)
    # ------------------------------------------------------------------

    def admin_deep_provenance(self, run_id: str, data_id: str) -> ProvenanceResult:
        with self._snapshot():
            if self._exists("lineage_meta", "run_id", run_id):
                get_registry().counter("index.hit").increment()
                return self.lineage_lookup(run_id, data_id)
            get_registry().counter("index.miss").increment()
            # Validate the data id first; the recursive query would
            # silently return an empty lineage for an unknown object.
            self.producer_of(run_id, data_id)
            params = {"run_id": run_id, "data_id": data_id}
            result = ProvenanceResult(target=data_id, view_name="UAdmin")
            for step_id, module, data_in in self._conn.execute(
                SQLITE_DEEP_PROVENANCE, params
            ):
                result.rows.append(
                    ProvenanceRow(
                        step_id=step_id, module=module, data_in=data_in
                    )
                )
            for (lineage_data,) in self._conn.execute(
                SQLITE_LINEAGE_USER_INPUTS, params
            ):
                result.user_inputs.add(lineage_data)
            return result
