"""Warehouse statistics and cross-run reporting.

The paper sizes its evaluation as "what would happen in a large laboratory
with 40 workflows, each of which is executed about twice a week" — 3,600
runs in a warehouse.  Operating at that scale needs aggregate views of the
store itself: how big each run is, how modules are exercised across runs,
which runs a module's executions appear in.  These helpers compute those
aggregates through the backend-agnostic warehouse interface, so they work
on the in-memory, SQLite and archived stores alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .base import ProvenanceWarehouse


@dataclass(frozen=True)
class RunStats:
    """Row-level size of one stored run."""

    run_id: str
    spec_id: str
    steps: int
    io_rows: int
    data_objects: int
    user_inputs: int
    final_outputs: int


def run_stats(warehouse: ProvenanceWarehouse, run_id: str) -> RunStats:
    """Size statistics of one run, from its relational rows."""
    io_rows = warehouse.io_rows(run_id)
    data_objects = {data_id for _s, data_id, _d in io_rows}
    data_objects |= warehouse.user_inputs(run_id)
    return RunStats(
        run_id=run_id,
        spec_id=warehouse.run_spec_id(run_id),
        steps=len(warehouse.steps_of_run(run_id)),
        io_rows=len(io_rows),
        data_objects=len(data_objects),
        user_inputs=len(warehouse.user_inputs(run_id)),
        final_outputs=len(warehouse.final_outputs(run_id)),
    )


@dataclass
class WarehouseReport:
    """Aggregate contents of a warehouse."""

    specs: int
    views: int
    runs: int
    total_steps: int
    total_io_rows: int
    total_data_objects: int
    largest_run: Optional[RunStats]
    per_run: List[RunStats] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """Headline numbers, JSON-friendly."""
        return {
            "specs": self.specs,
            "views": self.views,
            "runs": self.runs,
            "total_steps": self.total_steps,
            "total_io_rows": self.total_io_rows,
            "total_data_objects": self.total_data_objects,
            "largest_run": self.largest_run.run_id if self.largest_run else None,
        }


def warehouse_report(warehouse: ProvenanceWarehouse) -> WarehouseReport:
    """Aggregate statistics over everything the warehouse holds."""
    per_run = [run_stats(warehouse, run_id) for run_id in warehouse.list_runs()]
    largest = max(per_run, key=lambda r: r.steps, default=None)
    return WarehouseReport(
        specs=len(warehouse.list_specs()),
        views=len(warehouse.list_views()),
        runs=len(per_run),
        total_steps=sum(r.steps for r in per_run),
        total_io_rows=sum(r.io_rows for r in per_run),
        total_data_objects=sum(r.data_objects for r in per_run),
        largest_run=largest,
        per_run=per_run,
    )


def module_execution_counts(
    warehouse: ProvenanceWarehouse, spec_id: str
) -> Dict[str, Dict[str, int]]:
    """Per-module execution counts across every run of one specification.

    Returns ``{module: {run_id: executions}}``; modules that never executed
    in a run are reported with 0, so loop-iteration variation across runs
    is directly visible.
    """
    spec = warehouse.get_spec(spec_id)
    counts: Dict[str, Dict[str, int]] = {
        module: {} for module in sorted(spec.modules)
    }
    for run_id in warehouse.list_runs(spec_id):
        per_run: Dict[str, int] = {module: 0 for module in spec.modules}
        for _step_id, module in warehouse.steps_of_run(run_id):
            per_run[module] += 1
        for module, hits in per_run.items():
            counts[module][run_id] = hits
    return counts


def runs_executing_module(
    warehouse: ProvenanceWarehouse, spec_id: str, module: str
) -> List[str]:
    """Runs of a specification in which ``module`` executed at least once."""
    return sorted(
        run_id
        for run_id, executions in module_execution_counts(
            warehouse, spec_id
        ).get(module, {}).items()
        if executions > 0
    )


def hottest_modules(
    warehouse: ProvenanceWarehouse, spec_id: str, top: int = 5
) -> List[Tuple[str, int]]:
    """Modules with the most executions across all runs (loops dominate)."""
    counts = module_execution_counts(warehouse, spec_id)
    totals = sorted(
        ((module, sum(per_run.values())) for module, per_run in counts.items()),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return totals[:top]
