"""Crash-safe streaming ingestion: journaled live-run appends.

The batch pipeline (:mod:`repro.warehouse.pipeline`) assumes a run is
*finished* before it is ingested.  Real workflow engines emit provenance
while the run executes; waiting for the end means the warehouse cannot
answer "what produced this intermediate file?" until hours later.  This
module closes that gap: a run is **opened**, its event log is appended in
**epochs**, and every epoch rides the same checksummed journal protocol
that makes batch loads crash-safe — so a kill at any instruction leaves
the warehouse recoverable to a consistent prefix of the stream.

Protocol (one :class:`StreamingIngestor` per producer):

1. :meth:`~StreamingIngestor.open_run` — one transaction creates the run
   definition and an open-run row (``_stream_state``: committed epoch,
   cumulative checksum, index watermark), then journals the empty run
   ``committed`` at epoch 0.
2. :meth:`~StreamingIngestor.ingest_events` — each call is one epoch
   ``N``: the journal entry is re-written ``pending`` with the cumulative
   checksum ``C_N`` (fault site ``stream.epoch.pending``), the epoch's
   rows and the state row advance **atomically** in one backend
   transaction (:meth:`~repro.warehouse.base.ProvenanceWarehouse.stream_apply`,
   fault site ``stream.append``), and the entry is marked ``committed``
   (fault site ``stream.epoch.mark``).  A crash in the first window
   truncates cleanly back to epoch ``N-1``; a crash in the last is rolled
   *forward* by checksum — :func:`~repro.warehouse.recovery.recover`
   settles both.
3. After the epoch commits, already-materialised lineage indexes are
   maintained **incrementally**: :func:`~repro.provenance.index.closure_delta_rows`
   derives closure rows for the epoch's new data from the boundary
   lookups alone, and :func:`~repro.provenance.labels.try_extend` grows
   the reachability labels when the delta shape allows.  Either falls
   back to a full rebuild when the epoch is not frontier-shaped — the
   ``stream.delta`` / ``stream.rebuild`` counters record which path ran,
   and the benchmark proves deltas dominate on canonical streams.  A
   crash between the epoch commit and the index delta (fault site
   ``stream.delta``) leaves the ``delta_epoch`` watermark trailing — lint
   rule ``WH047`` flags it and recovery drops the stale indexes.
4. :meth:`~StreamingIngestor.finalize_run` deletes the open-run row
   (fault site ``stream.finalize``), leaving rows, indexes and journal
   byte-identical to a cold batch load of the same events.

**Resume.**  After a crash, re-open with ``resume=True`` and re-send the
same append sequence from the start: recovery settles the torn epoch
first, then every call up to the durable epoch is skipped
(``stream.skipped`` counter) and appends continue seamlessly — the chaos
suite (``tests/test_streaming.py``) asserts the final warehouse
fingerprint matches both the uninterrupted stream and a cold batch load.

**Degraded reads.**  Because the rows and the state row move in one
transaction and indexes are only ever extended *after* the commit,
concurrent readers (:class:`~repro.serve.service.QueryService`, zoom
sessions) always observe a complete epoch prefix — stale, never torn.
``Session.watch`` polls the open-run row to follow convergence.

See ``docs/streaming.md`` for the crash matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import WarehouseError, ZoomError
from ..faults import FaultPlan
from ..faults import hit as fault_hit
from ..obs.metrics import get_registry
from ..run.log import Event, EventLog
from ..sanitize import make_lock
from .base import ProvenanceWarehouse
from .recovery import JournalEntry, recover, run_checksum
from .schema import DIR_IN, DIR_OUT


@dataclass
class _OpenRun:
    """The ingestor's local view of one run it holds open."""

    spec_id: str
    epoch: int                       #: last epoch this process committed
    skip_through: int                #: epochs durable before (re-)open
    calls: int = 0                   #: ingest_events calls seen
    step_rows: List[Tuple[str, str]] = field(default_factory=list)
    io_rows: List[Tuple[str, str, str]] = field(default_factory=list)
    user_inputs: List[str] = field(default_factory=list)
    final_outputs: List[str] = field(default_factory=list)
    checksum: str = ""


def chunk_log(
    events: Iterable[Event], max_events: int = 32
) -> List[List[Event]]:
    """Split a canonical event log into frontier-shaped epochs.

    A canonical log (:func:`~repro.run.log.log_from_run`) interleaves
    whole step blocks — a start, then the step's reads, then its writes —
    between singleton user-input and final-output events.  Chunking at
    arbitrary event counts can split a block, which forces the index
    delta path to rebuild; this helper packs **whole blocks** greedily up
    to ``max_events`` per chunk (a block larger than the budget becomes
    its own oversized chunk), so every chunk's io rows reference only
    steps declared in that same chunk and the delta path never falls
    back.  Any concatenation of the chunks replays to the original log.
    """
    if max_events < 1:
        raise ValueError("max_events must be >= 1, got %r" % max_events)
    blocks: List[List[Event]] = []
    for event in events:
        if event.kind in ("read", "write") and blocks:
            blocks[-1].append(event)
        else:
            blocks.append([event])
    chunks: List[List[Event]] = []
    current: List[Event] = []
    for block in blocks:
        if current and len(current) + len(block) > max_events:
            chunks.append(current)
            current = []
        current.extend(block)
    if current:
        chunks.append(current)
    return chunks


class StreamingIngestor:
    """Append a live run to a warehouse, one crash-safe epoch at a time.

    Parameters
    ----------
    warehouse:
        Any backend implementing the streaming hooks — memory, SQLite, or
        the sharded federation (appends route to the owning shard's
        writer thread).
    reasoner:
        Optional :class:`~repro.provenance.reasoner.ProvenanceReasoner`
        (or anything with ``refresh_run(run_id)``): notified after every
        committed epoch and on finalize, so serving caches flip to the
        new generation without discarding the persistent indexes.
    faults:
        A :class:`~repro.faults.FaultPlan` for the ``stream.*`` sites;
        defaults to the warehouse's own plan, so one plan covers the
        backend and the protocol choreography.

    One ingestor may hold many runs open concurrently; each *run's*
    appends must come from a single producer in order (the epoch number
    is the append sequence number).
    """

    def __init__(
        self,
        warehouse: ProvenanceWarehouse,
        *,
        reasoner: Optional[object] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._warehouse = warehouse
        self._reasoner = reasoner
        self._plan = (
            faults if faults is not None
            else getattr(warehouse, "faults", None)
        )
        self._lock = make_lock("warehouse.streaming")
        self._open: Dict[str, _OpenRun] = {}     # guarded-by: _lock
        self._listeners: List[Callable[[str, int], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open_run(
        self,
        run_id: str,
        spec_id: Optional[str] = None,
        *,
        resume: bool = False,
        opened_at: Optional[float] = None,
    ) -> int:
        """Open ``run_id`` for appends; returns the committed epoch.

        Fresh opens (``resume=False``) require ``spec_id`` and create the
        empty run at epoch 0.  ``resume=True`` re-opens a run a crashed
        producer left open: :func:`~repro.warehouse.recovery.recover`
        settles any torn epoch first, the local view is rebuilt from the
        stored rows, and subsequent :meth:`ingest_events` calls skip the
        epochs that are already durable — re-send the full append
        sequence from the start.
        """
        warehouse = self._warehouse
        if resume:
            recover(warehouse)
            state = warehouse.stream_state(run_id)
            if state is None:
                raise WarehouseError(
                    "run %r is not open for streaming; nothing to resume"
                    % run_id
                )
            if spec_id is not None and spec_id != state.spec_id:
                raise WarehouseError(
                    "run %r streams spec %r, not %r"
                    % (run_id, state.spec_id, spec_id)
                )
            record = _OpenRun(
                spec_id=state.spec_id,
                epoch=state.epoch,
                skip_through=state.epoch,
                step_rows=list(warehouse.steps_of_run(run_id)),
                io_rows=list(warehouse.io_rows(run_id)),
                user_inputs=sorted(warehouse.user_inputs(run_id)),
                final_outputs=sorted(warehouse.final_outputs(run_id)),
                checksum=state.checksum,
            )
            with self._lock:
                self._open[run_id] = record
            get_registry().counter("stream.resumed").increment()
            return state.epoch
        if spec_id is None:
            raise WarehouseError(
                "opening a fresh stream for run %r requires a spec_id"
                % run_id
            )
        checksum = run_checksum(spec_id, [], [], [], [])
        warehouse.stream_begin(
            run_id, spec_id, checksum=checksum,
            opened_at=time.time() if opened_at is None else opened_at,
        )
        # Epoch 0 — the empty run — goes straight to ``committed``: a
        # kill between stream_begin and this journal write is the gap
        # recovery's stream pass re-journals from the state row.
        warehouse.journal_begin([JournalEntry(
            run_id=run_id, spec_id=spec_id, checksum=checksum, batch=0,
        )])
        warehouse.journal_commit([run_id])
        with self._lock:
            self._open[run_id] = _OpenRun(
                spec_id=spec_id, epoch=0, skip_through=0, checksum=checksum,
            )
        get_registry().counter("stream.opened").increment()
        return 0

    def open_runs(self) -> List[str]:
        """Run ids this ingestor currently holds open, sorted."""
        with self._lock:
            return sorted(self._open)

    def subscribe(self, listener: Callable[[str, int], None]) -> None:
        """Call ``listener(run_id, epoch)`` after every committed epoch
        (and on finalize, with the final epoch)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def ingest_events(
        self, run_id: str, events: Iterable[Event]
    ) -> int:
        """Append one epoch of events; returns the committed epoch number.

        The epoch either commits completely — rows, state row and journal
        mark — or leaves a pending journal entry that recovery truncates;
        no intermediate state is ever observable.  On a resumed run,
        calls up to the durable epoch are skipped (``stream.skipped``).
        """
        record = self._record(run_id)
        registry = get_registry()
        batch = list(events)
        record.calls += 1
        if record.calls <= record.skip_through:
            # This append is already durable from before the crash.
            registry.counter("stream.skipped").increment()
            return record.calls
        warehouse = self._warehouse
        plan = self._plan
        epoch = record.epoch + 1

        new_steps, new_io, new_inputs, new_final = self._shape(record, batch)
        cum_steps = record.step_rows + new_steps
        cum_io = record.io_rows + new_io
        cum_inputs = record.user_inputs + [d for d, _who in new_inputs]
        cum_final = record.final_outputs + new_final
        checksum = run_checksum(
            record.spec_id, cum_steps, cum_io, cum_inputs, cum_final
        )

        warehouse.journal_begin([JournalEntry(
            run_id=run_id, spec_id=record.spec_id,
            checksum=checksum, batch=epoch,
        )])
        # Crash window: the journal promises epoch N but the rows are
        # still at N-1 — recovery truncates back by the state checksum.
        fault_hit(plan, "stream.epoch.pending")
        with registry.time("stream.apply"):
            warehouse.stream_apply(
                run_id, epoch=epoch, checksum=checksum,
                step_rows=new_steps, io_rows=new_io,
                user_inputs=new_inputs, final_outputs=new_final,
            )
        # Crash window: rows and state row committed atomically, journal
        # still pending — recovery rolls the epoch forward by checksum.
        fault_hit(plan, "stream.epoch.mark")
        warehouse.journal_commit([run_id])

        record.epoch = epoch
        record.step_rows = cum_steps
        record.io_rows = cum_io
        record.user_inputs = cum_inputs
        record.final_outputs = cum_final
        record.checksum = checksum
        registry.counter("stream.epochs").increment()
        registry.counter("stream.events").increment(len(batch))

        # Crash window: the epoch is durably committed but the index
        # deltas below never ran — ``delta_epoch`` trails (WH047) and
        # recovery drops the stale indexes for lazy rebuild.
        fault_hit(plan, "stream.delta")
        self._maintain_indexes(run_id, new_steps, new_io,
                               [d for d, _who in new_inputs])
        warehouse.stream_mark_delta(run_id, epoch)
        self._notify(run_id, epoch)
        return epoch

    def finalize_run(self, run_id: str) -> str:
        """Close the stream; returns the run's final content checksum.

        Idempotent against crashes: a kill at the ``stream.finalize``
        site leaves the run open (lint rule ``WH046`` flags it at rest)
        and a resumed producer's replayed finalize converges.  After
        closing, the warehouse holds exactly what a cold batch load of
        the same events would hold.
        """
        record = self._record(run_id)
        fault_hit(self._plan, "stream.finalize")
        self._warehouse.stream_close(run_id)
        with self._lock:
            self._open.pop(run_id, None)
        get_registry().counter("stream.finalized").increment()
        self._notify(run_id, record.epoch)
        return record.checksum

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record(self, run_id: str) -> _OpenRun:
        with self._lock:
            record = self._open.get(run_id)
        if record is None:
            raise WarehouseError(
                "run %r is not open in this ingestor — call open_run"
                " (resume=True to pick up a crashed stream)" % run_id
            )
        return record

    @staticmethod
    def _shape(
        record: _OpenRun, events: Sequence[Event]
    ) -> Tuple[
        List[Tuple[str, str]],
        List[Tuple[str, str, str]],
        List[Tuple[str, str]],
        List[str],
    ]:
        """Shape one epoch's events into relational delta rows.

        Rows the warehouse already holds (or that repeat within the
        epoch) are dropped, so a replayed event is harmless and the
        cumulative checksum matches the stored relations exactly.
        """
        steps: List[Tuple[str, str]] = []
        io_rows: List[Tuple[str, str, str]] = []
        user_inputs: List[Tuple[str, str]] = []
        final_outputs: List[str] = []
        seen_steps = set(record.step_rows)
        seen_io = set(record.io_rows)
        seen_inputs = set(record.user_inputs)
        seen_final = set(record.final_outputs)
        for event in events:
            kind = event.kind
            if kind == "start":
                row = (event.step_id, event.module)
                if row not in seen_steps:
                    seen_steps.add(row)
                    steps.append(row)
            elif kind == "read":
                io = (event.step_id, event.data_id, DIR_IN)
                if io not in seen_io:
                    seen_io.add(io)
                    io_rows.append(io)
            elif kind == "write":
                io = (event.step_id, event.data_id, DIR_OUT)
                if io not in seen_io:
                    seen_io.add(io)
                    io_rows.append(io)
            elif kind == "user_input":
                if event.data_id not in seen_inputs:
                    seen_inputs.add(event.data_id)
                    user_inputs.append((event.data_id, event.who))
            elif kind == "final_output":
                if event.data_id not in seen_final:
                    seen_final.add(event.data_id)
                    final_outputs.append(event.data_id)
            else:
                raise WarehouseError(
                    "unknown event kind %r in streaming append" % (kind,)
                )
        return steps, io_rows, user_inputs, final_outputs

    def _maintain_indexes(
        self,
        run_id: str,
        new_steps: List[Tuple[str, str]],
        new_io: List[Tuple[str, str, str]],
        new_user_inputs: List[str],
    ) -> None:
        """Advance already-built lineage/label indexes past the epoch.

        Indexes that were never materialised stay unbuilt (queries build
        lazily as usual).  The incremental paths bump ``stream.delta``;
        a fallback full rebuild bumps ``stream.rebuild``.
        """
        from ..provenance.index import closure_delta_rows
        from ..provenance.labels import (
            LABELS_VERSION,
            labels_from_stored,
            try_extend,
        )

        warehouse = self._warehouse
        registry = get_registry()
        if warehouse.has_lineage_index(run_id):
            try:
                with registry.time("stream.index.delta"):
                    rows = closure_delta_rows(
                        run_id, new_steps, new_io, new_user_inputs,
                        lambda d: warehouse.lineage_lookup(run_id, d),
                    )
                    warehouse.extend_lineage_index(run_id, rows)
            except ZoomError:
                with registry.time("stream.index.rebuild"):
                    warehouse.build_lineage_index(run_id, rebuild=True)
                registry.counter("stream.rebuild").increment()
            else:
                registry.counter("stream.delta").increment()
        if warehouse.has_label_index(run_id):
            stored = labels_from_stored(
                run_id,
                sorted(warehouse.label_rows_raw(run_id)),
                warehouse.steps_of_run(run_id),
                warehouse.io_rows(run_id),
                sorted(warehouse.user_inputs(run_id)),
                version=warehouse.label_index_version(run_id)
                or LABELS_VERSION,
            )
            with registry.time("stream.index.delta"):
                extended = try_extend(
                    stored, new_steps, new_io, new_user_inputs
                )
            if extended is None:
                with registry.time("stream.index.rebuild"):
                    warehouse.build_label_index(run_id, rebuild=True)
                registry.counter("stream.rebuild").increment()
            else:
                warehouse.drop_label_index(run_id)
                warehouse._store_lineage_labels(extended)
                registry.counter("stream.delta").increment()

    def _notify(self, run_id: str, epoch: int) -> None:
        reasoner = self._reasoner
        if reasoner is not None:
            reasoner.refresh_run(run_id)  # type: ignore[attr-defined]
        for listener in self._listeners:
            listener(run_id, epoch)


def stream_log(
    ingestor: StreamingIngestor,
    run_id: str,
    spec_id: str,
    log: EventLog,
    *,
    max_events: int = 32,
    resume: bool = False,
) -> str:
    """Stream a whole event log through open/append/finalize.

    Convenience wrapper over :func:`chunk_log` — the reference way to
    ingest a finished log *as if* it had arrived live, used by the chaos
    suite and the benchmark.  Returns the final checksum.
    """
    ingestor.open_run(run_id, spec_id, resume=resume)
    for chunk in chunk_log(log, max_events=max_events):
        ingestor.ingest_events(run_id, chunk)
    return ingestor.finalize_run(run_id)


__all__ = [
    "StreamingIngestor",
    "chunk_log",
    "stream_log",
]
