"""A business-process workload: order fulfilment with role-based views.

The paper closes by noting the technique "is generic in the sense that it
can be used by any workflow system which provides the required
information" and points its future work at well-structured business
processes (BPEL).  This module exercises that claim with a non-scientific
workload: an order-fulfilment process with a credit-check/negotiation
loop, parallel warehouse and invoicing branches, and the role-specific
relevant sets a company would actually configure —

* *sales* cares about order validation, negotiation and confirmation;
* *finance* cares about credit checking, invoicing and payment;
* *logistics* cares about picking, shipping and delivery confirmation.

Each role's view is derived with ``RelevUserViewBuilder``; tests check the
process is well-structured (BPEL-like, per the structure miner) and that
each role sees its own slice of a run's provenance.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.builder import build_user_view
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..core.view import UserView
from ..run.run import WorkflowRun

#: Task descriptions, for display layers.
TASKS: Dict[str, str] = {
    "receive_order": "Receive and parse the purchase order",
    "validate_order": "Validate items, quantities and addresses",
    "check_credit": "Check the customer's credit standing",
    "negotiate_terms": "Negotiate payment terms with the customer",
    "confirm_order": "Confirm the order with the customer",
    "allocate_stock": "Reserve stock in the warehouse",
    "pick_items": "Pick and pack the items",
    "ship_order": "Hand the parcel to the carrier",
    "create_invoice": "Create the invoice",
    "collect_payment": "Collect the payment",
    "reconcile": "Reconcile payment against the invoice",
    "close_order": "Confirm delivery and close the order",
}

#: Role-specific relevant sets.
ROLE_RELEVANT: Dict[str, FrozenSet[str]] = {
    "sales": frozenset({"validate_order", "negotiate_terms", "confirm_order"}),
    "finance": frozenset({"check_credit", "create_invoice", "collect_payment"}),
    "logistics": frozenset({"pick_items", "ship_order", "close_order"}),
}


def order_fulfilment_spec() -> WorkflowSpec:
    """The order-fulfilment process definition."""
    edges: List[Tuple[str, str]] = [
        (INPUT, "receive_order"),
        ("receive_order", "validate_order"),
        ("validate_order", "check_credit"),
        ("check_credit", "negotiate_terms"),
        ("negotiate_terms", "check_credit"),   # renegotiate until approved
        ("negotiate_terms", "confirm_order"),
        ("confirm_order", "allocate_stock"),
        ("confirm_order", "create_invoice"),
        ("allocate_stock", "pick_items"),
        ("pick_items", "ship_order"),
        ("create_invoice", "collect_payment"),
        ("collect_payment", "reconcile"),
        ("ship_order", "close_order"),
        ("reconcile", "close_order"),
        ("close_order", OUTPUT),
    ]
    return WorkflowSpec(sorted(TASKS), edges, name="order-fulfilment")


def role_view(
    role: str, spec: Optional[WorkflowSpec] = None
) -> UserView:
    """The derived user view for one of the configured roles."""
    if role not in ROLE_RELEVANT:
        raise KeyError(
            "unknown role %r (expected one of %s)"
            % (role, sorted(ROLE_RELEVANT))
        )
    spec = spec or order_fulfilment_spec()
    return build_user_view(spec, ROLE_RELEVANT[role], name=role)


def order_run(
    spec: Optional[WorkflowSpec] = None, negotiation_rounds: int = 2
) -> WorkflowRun:
    """A deterministic run: the terms were renegotiated ``rounds`` times.

    Data objects carry business-flavoured names (``order``, ``credit2``,
    ``invoice`` ...), showing the model does not care that they are not
    ``d``-numbered.
    """
    if negotiation_rounds < 1:
        raise ValueError("at least one negotiation round is needed")
    spec = spec or order_fulfilment_spec()
    run = WorkflowRun(spec, run_id="order-run")
    run.add_step("T1", "receive_order")
    run.add_step("T2", "validate_order")
    run.add_edge(INPUT, "T1", ["order"])
    run.add_edge("T1", "T2", ["parsed_order"])
    previous = "T2"
    previous_data = "validated_order"
    step_counter = 2
    # The credit/negotiation loop, unrolled: the final round exits to
    # confirmation without producing another credit request.
    for round_index in range(1, negotiation_rounds + 1):
        step_counter += 1
        credit_step = "T%d" % step_counter
        run.add_step(credit_step, "check_credit")
        run.add_edge(previous, credit_step, [previous_data])
        final_round = round_index == negotiation_rounds
        step_counter += 1
        negotiate_step = "T%d" % step_counter
        run.add_step(negotiate_step, "negotiate_terms")
        run.add_edge(credit_step, negotiate_step,
                     ["credit%d" % round_index])
        previous = negotiate_step
        previous_data = "terms%d" % round_index
        if final_round:
            break
    step_counter += 1
    confirm = "T%d" % step_counter
    run.add_step(confirm, "confirm_order")
    run.add_edge(previous, confirm, [previous_data])
    remaining = [
        ("allocate_stock", confirm, "confirmation_w"),
        ("create_invoice", confirm, "confirmation_f"),
    ]
    produced: Dict[str, str] = {}
    for module, source, data in remaining:
        step_counter += 1
        step = "T%d" % step_counter
        run.add_step(step, module)
        run.add_edge(source, step, [data])
        produced[module] = step
    chains = [
        ("pick_items", "allocate_stock", "allocation"),
        ("ship_order", "pick_items", "parcel"),
        ("collect_payment", "create_invoice", "invoice"),
        ("reconcile", "collect_payment", "payment"),
    ]
    for module, upstream, data in chains:
        step_counter += 1
        step = "T%d" % step_counter
        run.add_step(step, module)
        run.add_edge(produced[upstream], step, [data])
        produced[module] = step
    step_counter += 1
    close = "T%d" % step_counter
    run.add_step(close, "close_order")
    run.add_edge(produced["ship_order"], close, ["delivery_receipt"])
    run.add_edge(produced["reconcile"], close, ["ledger_entry"])
    run.add_edge(close, OUTPUT, ["closed_order"])
    run.validate()
    return run
