"""Workload classes: Tables I and II of the paper.

Table I defines four *classes of workflows* by their pattern-frequency
profiles; Table II defines three *classes of runs* (small, medium, large)
by the amount of user input, the data produced per step, the number of
loop iterations and a cap on run size.

The printed version of Table II in the paper does not reproduce the exact
numeric ranges legibly, so this module fixes concrete values consistent
with every constraint the text does state (one hundred user inputs in the
running example; medium and large runs made "very large" by iterating
loops many times; small/medium/large query times of roughly 23 ms, 213 ms
and 1.1 s, i.e. about an order of magnitude of growth per kind).  The
DESIGN.md substitution table records this reconstruction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..run.executor import ExecutionParams

#: Pattern kinds recognised by the frequency profiles.
PATTERN_KINDS = (
    "sequence",
    "loop",
    "parallel_process",
    "parallel_input",
    "synchronization",
)


@dataclass(frozen=True)
class WorkflowClass:
    """One row of Table I: a named pattern-frequency profile.

    Attributes
    ----------
    name:
        Class identifier (``Class1`` ... ``Class4``).
    description:
        The paper's one-word characterisation.
    frequencies:
        Mapping from pattern kind to its probability when drawing the next
        segment of a synthetic workflow.  Must sum to 1.
    avg_size:
        Target number of modules of a generated specification (the paper's
        "Avg Size" column; Class 1's real corpus averages 12 nodes).
    """

    name: str
    description: str
    frequencies: Mapping[str, float]
    avg_size: int

    def __post_init__(self) -> None:
        total = sum(self.frequencies.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                "frequencies of %s sum to %.3f, expected 1" % (self.name, total)
            )
        unknown = set(self.frequencies) - set(PATTERN_KINDS)
        if unknown:
            raise ValueError("unknown pattern kinds: %s" % sorted(unknown))

    def draw_kind(self, rng: random.Random) -> str:
        """Sample a pattern kind according to the profile."""
        kinds = sorted(self.frequencies)
        weights = [self.frequencies[k] for k in kinds]
        return rng.choices(kinds, weights=weights, k=1)[0]


@dataclass(frozen=True)
class RunClass:
    """One row of Table II: a named run-size regime.

    Attributes
    ----------
    name:
        ``small`` / ``medium`` / ``large``.
    user_input_range:
        Data objects supplied by the user per input edge.
    data_per_edge_range:
        Data objects a step writes per outgoing edge.
    loop_iterations_range:
        Iterations of each loop.
    max_nodes / max_edges:
        The "Size (Nodes-Edges)" caps of Table II; generated runs are
        checked against these and regenerated with fewer iterations when
        exceeded.
    """

    name: str
    user_input_range: Tuple[int, int]
    data_per_edge_range: Tuple[int, int]
    loop_iterations_range: Tuple[int, int]
    max_nodes: int
    max_edges: int

    def execution_params(self) -> ExecutionParams:
        """The simulator parameters this run class prescribes."""
        return ExecutionParams(
            user_input_range=self.user_input_range,
            data_per_edge_range=self.data_per_edge_range,
            loop_iterations_range=self.loop_iterations_range,
            max_steps=self.max_nodes,
        )


#: Table I.  Class 1 stands in for the collected real workflows: the same
#: average size (12 nodes) and the text's observation that the sequence
#: pattern is used about four times more than the reflexive loop.
CLASS1 = WorkflowClass(
    name="Class1",
    description="Real",
    frequencies={
        "sequence": 0.68,
        "loop": 0.17,
        "parallel_process": 0.05,
        "parallel_input": 0.05,
        "synchronization": 0.05,
    },
    avg_size=12,
)

CLASS2 = WorkflowClass(
    name="Class2",
    description="Linear",
    frequencies={
        "sequence": 0.80,
        "loop": 0.10,
        "parallel_process": 0.10,
    },
    avg_size=20,
)

CLASS3 = WorkflowClass(
    name="Class3",
    description="Parallel",
    frequencies={
        "parallel_process": 0.20,
        "parallel_input": 0.10,
        "synchronization": 0.20,
        "sequence": 0.50,
    },
    avg_size=20,
)

CLASS4 = WorkflowClass(
    name="Class4",
    description="Loop",
    frequencies={
        "loop": 0.50,
        "sequence": 0.50,
    },
    avg_size=20,
)

#: All workflow classes, in Table I order.
WORKFLOW_CLASSES: Dict[str, WorkflowClass] = {
    c.name: c for c in (CLASS1, CLASS2, CLASS3, CLASS4)
}

#: Table II.  Ranges reconstructed as documented in the module docstring.
RUN_SMALL = RunClass(
    name="small",
    user_input_range=(1, 10),
    data_per_edge_range=(1, 5),
    loop_iterations_range=(1, 5),
    max_nodes=100,
    max_edges=200,
)

RUN_MEDIUM = RunClass(
    name="medium",
    user_input_range=(10, 50),
    data_per_edge_range=(2, 10),
    loop_iterations_range=(5, 20),
    max_nodes=1_000,
    max_edges=2_000,
)

RUN_LARGE = RunClass(
    name="large",
    user_input_range=(50, 200),
    data_per_edge_range=(5, 20),
    loop_iterations_range=(20, 100),
    max_nodes=10_000,
    max_edges=20_000,
)

#: All run classes, in Table II order.
RUN_CLASSES: Dict[str, RunClass] = {
    c.name: c for c in (RUN_SMALL, RUN_MEDIUM, RUN_LARGE)
}
