"""Synthetic workflow generation per the Table I class profiles.

The paper generates "realistic synthetic workflows" by drawing patterns
according to per-class usage statistics and combining them; this module
does the same.  A generated workflow remembers which pattern produced each
module, which lets :func:`biologist_relevant` emulate the hand-picked UBio
relevant sets (biologists flag the scientifically central tasks: the
analyses being iterated, the integration joins — not the formatting glue)
while :func:`random_relevant` drives the randomised UV experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..core.spec import WorkflowSpec
from .classes import WorkflowClass
from .patterns import (
    ComposedWorkflow,
    LoopPattern,
    ParallelInputPattern,
    ParallelProcessPattern,
    Pattern,
    SequencePattern,
    SynchronizationPattern,
    compose_detailed,
)


@dataclass
class GeneratedWorkflow:
    """A synthetic specification with its generation metadata."""

    spec: WorkflowSpec
    workflow_class: str
    patterns: List[Pattern] = field(default_factory=list)
    module_kinds: Dict[str, str] = field(default_factory=dict)
    suggested_relevant: FrozenSet[str] = frozenset()

    def pattern_frequencies(self) -> Dict[str, float]:
        """Realised pattern-kind frequencies (for the Table I report)."""
        total = len(self.patterns)
        census: Dict[str, int] = {}
        for pattern in self.patterns:
            census[pattern.kind] = census.get(pattern.kind, 0) + 1
        return {kind: count / total for kind, count in sorted(census.items())}


def _instantiate(kind: str, rng: random.Random, remaining: int) -> Pattern:
    """Draw a concrete pattern of the requested kind.

    ``remaining`` loosely bounds the segment so workflows land near their
    target size instead of overshooting wildly.
    """
    if kind == "sequence":
        return SequencePattern(length=rng.randint(1, max(1, min(4, remaining))))
    if kind == "loop":
        return LoopPattern(length=rng.randint(2, max(2, min(4, remaining))))
    if kind == "parallel_process":
        return ParallelProcessPattern(
            branches=rng.randint(2, 3), branch_length=rng.randint(1, 2)
        )
    if kind == "parallel_input":
        return ParallelInputPattern(
            branches=rng.randint(2, 3), branch_length=rng.randint(1, 2)
        )
    if kind == "synchronization":
        lengths = [rng.randint(1, 3) for _branch in range(rng.randint(2, 3))]
        if len(set(lengths)) == 1:
            lengths[0] += 1  # ensure the join genuinely synchronises
        return SynchronizationPattern(branch_lengths=lengths)
    raise ValueError("unknown pattern kind %r" % kind)


def generate_workflow(
    workflow_class: WorkflowClass,
    rng: random.Random,
    target_size: Optional[int] = None,
    name: Optional[str] = None,
) -> GeneratedWorkflow:
    """Generate one synthetic workflow of the given class.

    Patterns are drawn from the class's frequency profile until the module
    count reaches ``target_size`` (default: the class's average size).
    """
    target = target_size or workflow_class.avg_size
    patterns: List[Pattern] = []
    size = 0
    while size < target:
        kind = workflow_class.draw_kind(rng)
        pattern = _instantiate(kind, rng, remaining=target - size)
        patterns.append(pattern)
        size += pattern.size()
    composed = compose_detailed(
        patterns, name=name or "%s-wf" % workflow_class.name
    )
    generated = GeneratedWorkflow(
        spec=composed.spec,
        workflow_class=workflow_class.name,
        patterns=patterns,
        module_kinds=composed.kind_of(),
    )
    generated.suggested_relevant = biologist_relevant(composed, rng)
    return generated


def generate_workflows(
    workflow_class: WorkflowClass,
    count: int,
    rng: random.Random,
    target_size: Optional[int] = None,
) -> List[GeneratedWorkflow]:
    """Generate a batch of workflows of one class."""
    return [
        generate_workflow(
            workflow_class,
            rng,
            target_size=target_size,
            name="%s-wf%d" % (workflow_class.name, index),
        )
        for index in range(1, count + 1)
    ]


def biologist_relevant(
    composed: ComposedWorkflow, rng: random.Random
) -> FrozenSet[str]:
    """Emulate a biologist's hand-picked relevant set (the UBio views).

    The scientifically central modules are flagged: the head of each loop
    (the analysis being repeated until satisfactory), the join of each
    parallel/synchronisation segment (the integration step), and roughly a
    quarter of the plain sequence modules; formatting glue stays
    non-relevant.  At least one module is always flagged.
    """
    relevant: Set[str] = set()
    sequence_modules: List[str] = []
    for pattern, fragment in composed.segments:
        if pattern.kind == "loop":
            relevant.add(fragment.modules[0])
        elif pattern.kind in ("parallel_process", "parallel_input", "synchronization"):
            relevant.add(fragment.modules[-1])  # the join module
        else:
            sequence_modules.extend(fragment.modules)
    quota = max(1, round(len(sequence_modules) * 0.25))
    if sequence_modules:
        relevant.update(rng.sample(sequence_modules, min(quota, len(sequence_modules))))
    if not relevant:  # pragma: no cover - only if spec had no modules
        relevant.add(sorted(composed.spec.modules)[0])
    return frozenset(relevant)


def random_relevant(
    spec: WorkflowSpec, fraction: float, rng: random.Random
) -> FrozenSet[str]:
    """Randomly flag a fraction of modules as relevant (the UV views).

    ``fraction`` of 0 yields the empty set (the UBlackBox limit) and 1
    flags every module (the UAdmin limit), matching the paper's 0-100 %
    sweeps in steps of 10.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1], got %r" % fraction)
    modules = sorted(spec.modules)
    count = round(fraction * len(modules))
    return frozenset(rng.sample(modules, count))
