"""A corpus of hand-built, realistic scientific workflow specifications.

The paper's Class 1 workload is a set of thirty real workflows collected
from collaborators and the literature — unavailable to us, so this module
provides the stand-in the DESIGN.md substitution table describes: concrete
bioinformatics pipelines modelled on published analyses, with the corpus's
headline statistics (mostly linear, around a dozen modules, sequence
patterns ~4x more frequent than loops).  Each entry carries a suggested
relevant set, playing the role of the biologist-picked UBio modules.

These are genuine specifications: every one validates, executes in the
simulator, and is exercised by the Class 1 benchmarks alongside
synthetically generated workflows of the same statistical profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from .phylogenomic import JOE_RELEVANT, phylogenomic_spec


@dataclass(frozen=True)
class LibraryWorkflow:
    """One corpus entry: a specification plus its UBio relevant set."""

    spec: WorkflowSpec
    relevant: FrozenSet[str]
    domain: str


def _spec(name: str, edges: List[Tuple[str, str]]) -> WorkflowSpec:
    modules = sorted(
        {n for edge in edges for n in edge} - {INPUT, OUTPUT}
    )
    return WorkflowSpec(modules, edges, name=name)


def sequence_annotation() -> LibraryWorkflow:
    """Gene-finding and functional annotation of a genomic region."""
    spec = _spec(
        "sequence-annotation",
        [
            (INPUT, "fetch_region"),
            ("fetch_region", "repeat_mask"),
            ("repeat_mask", "gene_predict"),
            ("gene_predict", "extract_proteins"),
            ("extract_proteins", "blast_search"),
            ("blast_search", "format_hits"),
            ("format_hits", "domain_scan"),
            ("domain_scan", "go_mapping"),
            ("go_mapping", "report"),
            ("report", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"gene_predict", "blast_search", "go_mapping"}),
        domain="genome annotation",
    )


def microarray_analysis() -> LibraryWorkflow:
    """Differential-expression analysis with an iterative normalisation."""
    spec = _spec(
        "microarray-analysis",
        [
            (INPUT, "load_cel"),
            (INPUT, "load_design"),
            ("load_cel", "qc_check"),
            ("qc_check", "normalize"),
            ("normalize", "assess_fit"),
            ("assess_fit", "normalize"),  # re-normalise until QC passes
            ("assess_fit", "fit_model"),
            ("load_design", "fit_model"),
            ("fit_model", "rank_genes"),
            ("rank_genes", "enrichment"),
            ("enrichment", "format_report"),
            ("format_report", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"normalize", "fit_model", "enrichment"}),
        domain="transcriptomics",
    )


def variant_calling() -> LibraryWorkflow:
    """Short-read variant calling with parallel per-sample alignment."""
    spec = _spec(
        "variant-calling",
        [
            (INPUT, "split_samples"),
            ("split_samples", "align_sample_a"),
            ("split_samples", "align_sample_b"),
            ("align_sample_a", "dedup_a"),
            ("align_sample_b", "dedup_b"),
            ("dedup_a", "merge_bams"),
            ("dedup_b", "merge_bams"),
            ("merge_bams", "call_variants"),
            ("call_variants", "filter_variants"),
            ("filter_variants", "annotate_variants"),
            ("annotate_variants", "export_vcf"),
            ("export_vcf", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"merge_bams", "call_variants", "annotate_variants"}),
        domain="genomics",
    )


def proteomics_identification() -> LibraryWorkflow:
    """Tandem-MS protein identification with decoy-based FDR control."""
    spec = _spec(
        "proteomics-id",
        [
            (INPUT, "convert_raw"),
            (INPUT, "build_decoy_db"),
            ("convert_raw", "pick_peaks"),
            ("pick_peaks", "db_search"),
            ("build_decoy_db", "db_search"),
            ("db_search", "score_psms"),
            ("score_psms", "fdr_filter"),
            ("fdr_filter", "infer_proteins"),
            ("infer_proteins", "quantify"),
            ("quantify", "format_tables"),
            ("format_tables", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"db_search", "fdr_filter", "infer_proteins"}),
        domain="proteomics",
    )


def chipseq_peaks() -> LibraryWorkflow:
    """ChIP-seq peak calling against an input control."""
    spec = _spec(
        "chipseq-peaks",
        [
            (INPUT, "trim_chip"),
            (INPUT, "trim_control"),
            ("trim_chip", "align_chip"),
            ("trim_control", "align_control"),
            ("align_chip", "call_peaks"),
            ("align_control", "call_peaks"),
            ("call_peaks", "filter_blacklist"),
            ("filter_blacklist", "motif_discovery"),
            ("motif_discovery", "annotate_targets"),
            ("annotate_targets", "render_tracks"),
            ("render_tracks", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"call_peaks", "motif_discovery", "annotate_targets"}),
        domain="epigenomics",
    )


def metagenomics_profile() -> LibraryWorkflow:
    """Community profiling with an iterative assembly refinement loop."""
    spec = _spec(
        "metagenomics-profile",
        [
            (INPUT, "quality_filter"),
            ("quality_filter", "host_removal"),
            ("host_removal", "assemble"),
            ("assemble", "evaluate_assembly"),
            ("evaluate_assembly", "assemble"),  # reassemble with new k-mers
            ("evaluate_assembly", "bin_contigs"),
            ("bin_contigs", "taxonomic_assign"),
            ("taxonomic_assign", "functional_profile"),
            ("functional_profile", "summary_report"),
            ("summary_report", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"assemble", "bin_contigs", "functional_profile"}),
        domain="metagenomics",
    )


def docking_screen() -> LibraryWorkflow:
    """Virtual screening: ligand docking with a refinement loop."""
    spec = _spec(
        "docking-screen",
        [
            (INPUT, "prepare_receptor"),
            (INPUT, "prepare_ligands"),
            ("prepare_receptor", "define_site"),
            ("define_site", "dock"),
            ("prepare_ligands", "dock"),
            ("dock", "score_poses"),
            ("score_poses", "refine_poses"),
            ("refine_poses", "dock"),  # re-dock refined conformers
            ("score_poses", "rank_compounds"),
            ("rank_compounds", "export_hits"),
            ("export_hits", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"dock", "rank_compounds"}),
        domain="cheminformatics",
    )


def rnaseq_quantification() -> LibraryWorkflow:
    """Bulk RNA-seq transcript quantification and pathway analysis."""
    spec = _spec(
        "rnaseq-quant",
        [
            (INPUT, "fetch_reads"),
            (INPUT, "fetch_transcriptome"),
            ("fetch_reads", "trim_adapters"),
            ("fetch_transcriptome", "build_index"),
            ("trim_adapters", "pseudoalign"),
            ("build_index", "pseudoalign"),
            ("pseudoalign", "aggregate_counts"),
            ("aggregate_counts", "filter_low_counts"),
            ("filter_low_counts", "differential_test"),
            ("differential_test", "pathway_analysis"),
            ("pathway_analysis", "format_figures"),
            ("format_figures", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"pseudoalign", "differential_test",
                            "pathway_analysis"}),
        domain="transcriptomics",
    )


def gwas_pipeline() -> LibraryWorkflow:
    """Genome-wide association with iterative population stratification."""
    spec = _spec(
        "gwas",
        [
            (INPUT, "load_genotypes"),
            (INPUT, "load_phenotypes"),
            ("load_genotypes", "qc_variants"),
            ("qc_variants", "compute_pcs"),
            ("compute_pcs", "check_stratification"),
            ("check_stratification", "compute_pcs"),  # add PCs until flat
            ("check_stratification", "association_test"),
            ("load_phenotypes", "association_test"),
            ("association_test", "genomic_control"),
            ("genomic_control", "clump_loci"),
            ("clump_loci", "annotate_loci"),
            ("annotate_loci", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"compute_pcs", "association_test", "clump_loci"}),
        domain="statistical genetics",
    )


def singlecell_clustering() -> LibraryWorkflow:
    """Single-cell RNA-seq clustering with a resolution-tuning loop."""
    spec = _spec(
        "singlecell-clustering",
        [
            (INPUT, "load_matrix"),
            ("load_matrix", "filter_cells"),
            ("filter_cells", "normalize_counts"),
            ("normalize_counts", "select_hvgs"),
            ("select_hvgs", "embed_pca"),
            ("embed_pca", "cluster"),
            ("cluster", "score_silhouette"),
            ("score_silhouette", "cluster"),  # retune resolution
            ("score_silhouette", "find_markers"),
            ("find_markers", "assign_celltypes"),
            ("assign_celltypes", "export_annotations"),
            ("export_annotations", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"cluster", "find_markers", "assign_celltypes"}),
        domain="single-cell genomics",
    )


def structure_prediction() -> LibraryWorkflow:
    """Comparative protein structure modelling with refinement."""
    spec = _spec(
        "structure-prediction",
        [
            (INPUT, "fetch_sequence"),
            ("fetch_sequence", "search_templates"),
            ("search_templates", "align_to_templates"),
            ("align_to_templates", "build_models"),
            ("build_models", "assess_models"),
            ("assess_models", "build_models"),  # remodel poor regions
            ("assess_models", "refine_sidechains"),
            ("refine_sidechains", "validate_geometry"),
            ("validate_geometry", "render_structure"),
            ("render_structure", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"search_templates", "build_models",
                            "validate_geometry"}),
        domain="structural biology",
    )


def md_analysis() -> LibraryWorkflow:
    """Molecular-dynamics trajectory analysis, parallel per observable."""
    spec = _spec(
        "md-analysis",
        [
            (INPUT, "load_trajectory"),
            ("load_trajectory", "strip_solvent"),
            ("strip_solvent", "compute_rmsd"),
            ("strip_solvent", "compute_contacts"),
            ("strip_solvent", "compute_sasa"),
            ("compute_rmsd", "merge_observables"),
            ("compute_contacts", "merge_observables"),
            ("compute_sasa", "merge_observables"),
            ("merge_observables", "cluster_conformers"),
            ("cluster_conformers", "summarize"),
            ("summarize", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"merge_observables", "cluster_conformers"}),
        domain="biophysics",
    )


def crispr_screen() -> LibraryWorkflow:
    """Pooled CRISPR screen: count guides, score genes, validate hits."""
    spec = _spec(
        "crispr-screen",
        [
            (INPUT, "demultiplex"),
            (INPUT, "load_library_map"),
            ("demultiplex", "count_guides"),
            ("load_library_map", "count_guides"),
            ("count_guides", "normalize_depth"),
            ("normalize_depth", "score_genes"),
            ("score_genes", "fdr_correct"),
            ("fdr_correct", "rank_hits"),
            ("rank_hits", "compare_to_controls"),
            ("compare_to_controls", "export_hits"),
            ("export_hits", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"count_guides", "score_genes", "rank_hits"}),
        domain="functional genomics",
    )


def metabolomics_profiling() -> LibraryWorkflow:
    """LC-MS metabolite profiling with iterative peak-picking tuning."""
    spec = _spec(
        "metabolomics-profiling",
        [
            (INPUT, "convert_vendor"),
            ("convert_vendor", "pick_peaks_ms"),
            ("pick_peaks_ms", "evaluate_peaks"),
            ("evaluate_peaks", "pick_peaks_ms"),  # retune parameters
            ("evaluate_peaks", "align_retention"),
            ("align_retention", "fill_gaps"),
            ("fill_gaps", "annotate_metabolites"),
            ("annotate_metabolites", "statistics"),
            ("statistics", "report_tables"),
            ("report_tables", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"pick_peaks_ms", "annotate_metabolites",
                            "statistics"}),
        domain="metabolomics",
    )


def comparative_genomics() -> LibraryWorkflow:
    """Whole-genome comparison: orthologs, synteny, selection tests."""
    spec = _spec(
        "comparative-genomics",
        [
            (INPUT, "fetch_genome_a"),
            (INPUT, "fetch_genome_b"),
            ("fetch_genome_a", "annotate_genes_a"),
            ("fetch_genome_b", "annotate_genes_b"),
            ("annotate_genes_a", "find_orthologs"),
            ("annotate_genes_b", "find_orthologs"),
            ("find_orthologs", "build_synteny"),
            ("find_orthologs", "codon_align"),
            ("codon_align", "selection_test"),
            ("build_synteny", "merge_report"),
            ("selection_test", "merge_report"),
            ("merge_report", OUTPUT),
        ],
    )
    return LibraryWorkflow(
        spec=spec,
        relevant=frozenset({"find_orthologs", "selection_test",
                            "merge_report"}),
        domain="comparative genomics",
    )


def phylogenomics() -> LibraryWorkflow:
    """The paper's own running example as a corpus entry."""
    return LibraryWorkflow(
        spec=phylogenomic_spec(),
        relevant=JOE_RELEVANT,
        domain="phylogenomics",
    )


def corpus() -> List[LibraryWorkflow]:
    """The full hand-built corpus, in a stable order."""
    return [
        phylogenomics(),
        sequence_annotation(),
        microarray_analysis(),
        variant_calling(),
        proteomics_identification(),
        chipseq_peaks(),
        metagenomics_profile(),
        docking_screen(),
        rnaseq_quantification(),
        gwas_pipeline(),
        singlecell_clustering(),
        structure_prediction(),
        md_analysis(),
        crispr_screen(),
        metabolomics_profiling(),
        comparative_genomics(),
    ]


def corpus_statistics() -> Dict[str, float]:
    """Headline statistics of the corpus (compare with the paper's text)."""
    specs = [entry.spec for entry in corpus()]
    sizes = [len(spec) for spec in specs]
    loops = sum(0 if spec.is_acyclic() else 1 for spec in specs)
    return {
        "workflows": len(specs),
        "avg_size": sum(sizes) / len(sizes),
        "max_size": max(sizes),
        "with_loops": loops,
    }
