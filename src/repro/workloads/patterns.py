"""Workflow patterns and their composition into specifications.

The paper builds its synthetic workload by combining the workflow patterns
observed in a corpus of thirty real scientific workflows — sequence,
(reflexive) loop, parallel process, parallel input and synchronisation, in
the sense of the van der Aalst workflow-patterns initiative — according to
per-class frequency profiles (Table I).  This module provides those
patterns as composable building blocks:

* :class:`SequencePattern` — a linear chain of modules;
* :class:`LoopPattern` — a chain closed by a back edge (the reflexive
  loop: repeat until the scientist is satisfied);
* :class:`ParallelProcessPattern` — an AND-split into parallel branches
  followed by an AND-join;
* :class:`ParallelInputPattern` — independent branches each fed directly
  by whatever precedes the pattern (the workflow input, when leading),
  merged by a join module;
* :class:`SynchronizationPattern` — branches of *unequal* length merged by
  a join module, so the join genuinely synchronises.

:func:`compose` chains a list of pattern instances into a single
:class:`~repro.core.spec.WorkflowSpec`; every exit of one segment feeds
every entry of the next.  Loops produced this way are never nested, which
is exactly what the execution simulator supports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..core.errors import SpecificationError
from ..core.spec import INPUT, OUTPUT, WorkflowSpec


@dataclass(frozen=True)
class Fragment:
    """A realised pattern: modules, internal edges, entry and exit points."""

    modules: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    entries: Tuple[str, ...]
    exits: Tuple[str, ...]


class ModuleNamer:
    """Allocates sequential ``M1, M2, ...`` module names."""

    def __init__(self, prefix: str = "M") -> None:
        self._prefix = prefix
        self._next = 1

    def take(self, count: int) -> List[str]:
        """Allocate ``count`` fresh names."""
        names = [
            "%s%d" % (self._prefix, self._next + offset) for offset in range(count)
        ]
        self._next += count
        return names


class Pattern(ABC):
    """A workflow pattern that can be realised into a graph fragment."""

    #: Short identifier used by the frequency profiles of Table I.
    kind: str = "pattern"

    @abstractmethod
    def size(self) -> int:
        """Number of modules the pattern contributes."""

    @abstractmethod
    def realize(self, namer: ModuleNamer) -> Fragment:
        """Instantiate the pattern with fresh module names."""


class SequencePattern(Pattern):
    """A chain of ``length`` modules."""

    kind = "sequence"

    def __init__(self, length: int) -> None:
        if length < 1:
            raise SpecificationError("sequence length must be >= 1")
        self.length = length

    def size(self) -> int:
        return self.length

    def realize(self, namer: ModuleNamer) -> Fragment:
        modules = namer.take(self.length)
        edges = tuple(zip(modules, modules[1:]))
        return Fragment(
            modules=tuple(modules),
            edges=edges,
            entries=(modules[0],),
            exits=(modules[-1],),
        )


class LoopPattern(Pattern):
    """A chain of ``length`` (>= 2) modules closed by a back edge.

    The back edge runs from the chain's last module to its first, giving
    the reflexive repeat-until-satisfied loop of the paper's running
    example (align, format, rectify, and back to align).
    """

    kind = "loop"

    def __init__(self, length: int) -> None:
        if length < 2:
            raise SpecificationError(
                "loop body needs >= 2 modules (self-loops are not allowed)"
            )
        self.length = length

    def size(self) -> int:
        return self.length

    def realize(self, namer: ModuleNamer) -> Fragment:
        modules = namer.take(self.length)
        edges = list(zip(modules, modules[1:]))
        edges.append((modules[-1], modules[0]))  # the back edge
        return Fragment(
            modules=tuple(modules),
            edges=tuple(edges),
            entries=(modules[0],),
            exits=(modules[-1],),
        )


class ParallelProcessPattern(Pattern):
    """An AND-split into equal branches followed by an AND-join."""

    kind = "parallel_process"

    def __init__(self, branches: int, branch_length: int) -> None:
        if branches < 2:
            raise SpecificationError("parallel process needs >= 2 branches")
        if branch_length < 1:
            raise SpecificationError("branch length must be >= 1")
        self.branches = branches
        self.branch_length = branch_length

    def size(self) -> int:
        return 2 + self.branches * self.branch_length

    def realize(self, namer: ModuleNamer) -> Fragment:
        split = namer.take(1)[0]
        join_edges: List[Tuple[str, str]] = []
        modules: List[str] = [split]
        for _branch in range(self.branches):
            chain = namer.take(self.branch_length)
            modules.extend(chain)
            join_edges.append((split, chain[0]))
            join_edges.extend(zip(chain, chain[1:]))
            join_edges.append((chain[-1], "__join__"))
        join = namer.take(1)[0]
        modules.append(join)
        edges = tuple(
            (src, join if dst == "__join__" else dst) for src, dst in join_edges
        )
        return Fragment(
            modules=tuple(modules),
            edges=edges,
            entries=(split,),
            exits=(join,),
        )


class ParallelInputPattern(Pattern):
    """Independent branches, each an entry point, merged by a join module.

    When this pattern leads the workflow, each branch is fed directly by
    the ``input`` node — the paper's "parallel input" shape, e.g. sequences
    and lab annotations arriving independently.
    """

    kind = "parallel_input"

    def __init__(self, branches: int, branch_length: int) -> None:
        if branches < 2:
            raise SpecificationError("parallel input needs >= 2 branches")
        if branch_length < 1:
            raise SpecificationError("branch length must be >= 1")
        self.branches = branches
        self.branch_length = branch_length

    def size(self) -> int:
        return 1 + self.branches * self.branch_length

    def realize(self, namer: ModuleNamer) -> Fragment:
        modules: List[str] = []
        entries: List[str] = []
        edges: List[Tuple[str, str]] = []
        tails: List[str] = []
        for _branch in range(self.branches):
            chain = namer.take(self.branch_length)
            modules.extend(chain)
            entries.append(chain[0])
            edges.extend(zip(chain, chain[1:]))
            tails.append(chain[-1])
        join = namer.take(1)[0]
        modules.append(join)
        edges.extend((tail, join) for tail in tails)
        return Fragment(
            modules=tuple(modules),
            edges=tuple(edges),
            entries=tuple(entries),
            exits=(join,),
        )


class SynchronizationPattern(Pattern):
    """Branches of unequal length synchronised by a join module."""

    kind = "synchronization"

    def __init__(self, branch_lengths: Sequence[int]) -> None:
        if len(branch_lengths) < 2:
            raise SpecificationError("synchronization needs >= 2 branches")
        if any(length < 1 for length in branch_lengths):
            raise SpecificationError("branch lengths must be >= 1")
        self.branch_lengths = tuple(branch_lengths)

    def size(self) -> int:
        return 1 + sum(self.branch_lengths)

    def realize(self, namer: ModuleNamer) -> Fragment:
        modules: List[str] = []
        entries: List[str] = []
        edges: List[Tuple[str, str]] = []
        tails: List[str] = []
        for length in self.branch_lengths:
            chain = namer.take(length)
            modules.extend(chain)
            entries.append(chain[0])
            edges.extend(zip(chain, chain[1:]))
            tails.append(chain[-1])
        join = namer.take(1)[0]
        modules.append(join)
        edges.extend((tail, join) for tail in tails)
        return Fragment(
            modules=tuple(modules),
            edges=tuple(edges),
            entries=tuple(entries),
            exits=(join,),
        )


@dataclass(frozen=True)
class ComposedWorkflow:
    """A composed specification together with its realised segments."""

    spec: WorkflowSpec
    segments: Tuple[Tuple[Pattern, Fragment], ...]

    def kind_of(self) -> dict:
        """Map each module to the kind of the pattern that produced it."""
        mapping: dict = {}
        for pattern, fragment in self.segments:
            for module in fragment.modules:
                mapping[module] = pattern.kind
        return mapping


def compose_detailed(
    patterns: Sequence[Pattern], name: str = "synthetic", prefix: str = "M"
) -> ComposedWorkflow:
    """Chain pattern instances, keeping per-segment realisation details.

    The first segment's entries hang off the ``input`` node; every exit of
    a segment feeds every entry of the next; the last segment's exits feed
    ``output``.
    """
    if not patterns:
        raise SpecificationError("cannot compose an empty pattern list")
    namer = ModuleNamer(prefix=prefix)
    modules: List[str] = []
    edges: List[Tuple[str, str]] = []
    current_exits: List[str] = [INPUT]
    segments: List[Tuple[Pattern, Fragment]] = []
    for pattern in patterns:
        fragment = pattern.realize(namer)
        segments.append((pattern, fragment))
        modules.extend(fragment.modules)
        edges.extend(fragment.edges)
        for exit_node in current_exits:
            for entry in fragment.entries:
                edges.append((exit_node, entry))
        current_exits = list(fragment.exits)
    for exit_node in current_exits:
        edges.append((exit_node, OUTPUT))
    spec = WorkflowSpec(modules, edges, name=name)
    return ComposedWorkflow(spec=spec, segments=tuple(segments))


def compose(
    patterns: Sequence[Pattern], name: str = "synthetic", prefix: str = "M"
) -> WorkflowSpec:
    """Chain pattern instances into a workflow specification."""
    return compose_detailed(patterns, name=name, prefix=prefix).spec


def pattern_census(patterns: Iterable[Pattern]) -> dict:
    """Frequency of each pattern kind in a list (for the Table I report)."""
    census: dict = {}
    for pattern in patterns:
        census[pattern.kind] = census.get(pattern.kind, 0) + 1
    return census
