"""The paper's running example: the phylogenomic workflow (Figs. 1-3).

This module reconstructs, exactly as described in the paper:

* the workflow specification of Fig. 1 — phylogenomic inference of protein
  biological function, with its formatting modules, the
  align/format/rectify loop and the annotation branches;
* the workflow run of Fig. 2 — one hundred input sequences (``d1``-``d100``),
  two iterations of the alignment loop, user-curated annotation edits
  (``d202``-``d206``), thirty-one lab annotations (``d415``-``d445``) and the
  final annotated tree ``d447``;
* Joe's and Mary's relevant sets and the user views of Fig. 3.

It doubles as an executable fixture: tests assert that
``RelevUserViewBuilder`` regenerates Joe's and Mary's views and that the
composite executions S11/S12/S13 behave exactly as Section II narrates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..core.view import UserView
from ..run.run import WorkflowRun

#: Human-readable task of each module in Fig. 1.
MODULE_TASKS: Dict[str, str] = {
    "M1": "Format entries (extract sequences and annotations)",
    "M2": "Annotations checking",
    "M3": "Run alignment",
    "M4": "Format alignment",
    "M5": "Rectify alignment",
    "M6": "Format lab annotations",
    "M7": "Build phylogenetic tree",
    "M8": "Format curated annotations",
}

#: Joe finds annotation checking, alignment and tree building relevant.
JOE_RELEVANT: FrozenSet[str] = frozenset({"M2", "M3", "M7"})

#: Mary additionally cares about the alignment rectification step.
MARY_RELEVANT: FrozenSet[str] = frozenset({"M2", "M3", "M5", "M7"})


def phylogenomic_spec() -> WorkflowSpec:
    """The Fig. 1 specification."""
    edges: List[Tuple[str, str]] = [
        (INPUT, "M1"),   # database entries selected by the user
        (INPUT, "M2"),   # user input for annotation curation
        (INPUT, "M6"),   # annotations from the user's lab
        ("M1", "M2"),    # extracted annotations
        ("M1", "M3"),    # extracted sequences
        ("M3", "M4"),    # raw alignment
        ("M4", "M5"),    # formatted alignment to rectify
        ("M5", "M3"),    # loop: re-align after rectification
        ("M4", "M7"),    # formatted alignment to the tree builder
        ("M2", "M8"),    # curated annotations
        ("M8", "M7"),    # formatted curated annotations
        ("M6", "M7"),    # formatted lab annotations
        ("M7", OUTPUT),  # annotated phylogenetic tree
    ]
    return WorkflowSpec(sorted(MODULE_TASKS), edges, name="phylogenomic")


def joe_view(spec: WorkflowSpec = None) -> UserView:
    """Joe's user view (Fig. 3a): M10 = {M3, M4, M5}, M9 = {M6, M7, M8}."""
    spec = spec or phylogenomic_spec()
    return UserView(
        spec,
        {
            "M1": ["M1"],
            "M2": ["M2"],
            "M10": ["M3", "M4", "M5"],
            "M9": ["M6", "M7", "M8"],
        },
        name="Joe",
    )


def mary_view(spec: WorkflowSpec = None) -> UserView:
    """Mary's user view (Fig. 3b): M11 = {M3, M4}, M5 stays visible."""
    spec = spec or phylogenomic_spec()
    return UserView(
        spec,
        {
            "M1": ["M1"],
            "M2": ["M2"],
            "M11": ["M3", "M4"],
            "M5": ["M5"],
            "M9": ["M6", "M7", "M8"],
        },
        name="Mary",
    )


def _drange(first: int, last: int) -> List[str]:
    """Data ids ``d<first>`` ... ``d<last>`` inclusive."""
    return ["d%d" % index for index in range(first, last + 1)]


def phylogenomic_run(spec: WorkflowSpec = None) -> WorkflowRun:
    """The Fig. 2 run, with the paper's step and data identifiers.

    The alignment loop executes twice (S2/S3, then S5/S6 after the
    rectification S4); the final output is the annotated tree ``d447``.
    """
    spec = spec or phylogenomic_spec()
    run = WorkflowRun(spec, run_id="phylogenomic-run")
    for step_id, module in [
        ("S1", "M1"),
        ("S2", "M3"),
        ("S3", "M4"),
        ("S4", "M5"),
        ("S5", "M3"),
        ("S6", "M4"),
        ("S7", "M2"),
        ("S8", "M8"),
        ("S9", "M6"),
        ("S10", "M7"),
    ]:
        run.add_step(step_id, module)
    # User inputs: the selected database entries, the curation edits and
    # the lab annotations.
    run.add_edge(INPUT, "S1", _drange(1, 100))
    run.add_edge(INPUT, "S7", _drange(202, 206))
    run.add_edge(INPUT, "S9", _drange(415, 445))
    # Formatting of the entries: annotations to checking, sequences to
    # alignment.
    run.add_edge("S1", "S7", _drange(101, 201))
    run.add_edge("S1", "S2", _drange(308, 408))
    # The alignment loop, iteration one: align, format, rectify.
    run.add_edge("S2", "S3", ["d409"])
    run.add_edge("S3", "S4", ["d410"])
    # Iteration two: the rectified alignment is re-aligned and re-formatted.
    run.add_edge("S4", "S5", ["d411"])
    run.add_edge("S5", "S6", ["d412"])
    run.add_edge("S6", "S10", ["d413"])
    # The annotation branches converge on the tree builder.
    run.add_edge("S7", "S8", _drange(207, 211))
    run.add_edge("S8", "S10", ["d414"])
    run.add_edge("S9", "S10", ["d446"])
    # The annotated phylogenetic tree.
    run.add_edge("S10", OUTPUT, ["d447"])
    run.validate()
    return run


def paper_example() -> Tuple[WorkflowSpec, WorkflowRun, UserView, UserView]:
    """Convenience bundle: (spec, run, Joe's view, Mary's view)."""
    spec = phylogenomic_spec()
    return spec, phylogenomic_run(spec), joe_view(spec), mary_view(spec)
