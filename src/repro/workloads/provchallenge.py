"""The First Provenance Challenge fMRI workflow.

The paper's provenance model grew out of the First Provenance Challenge
(Moreau et al., 2006 — the paper's reference [5]; the companion paper
"Addressing the Provenance Challenge using ZOOM" applies exactly this
system to it).  The challenge workload is a brain-imaging pipeline: four
anatomy images are aligned against a reference, resliced, averaged into an
atlas, and sliced/converted into three graphic images.

This module reconstructs the challenge workflow as a specification of this
library, provides a deterministic run mirroring the challenge's single
published execution, a view grouping each per-image chain into one
composite ("stage view"), and the challenge's core provenance queries
expressed against the public API.  It serves as a second fully-worked
real-world example beside the phylogenomic workflow.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.composite import CompositeRun
from ..core.spec import INPUT, OUTPUT, WorkflowSpec
from ..core.view import UserView
from ..provenance.queries import deep_provenance, reverse_provenance
from ..run.run import WorkflowRun

#: Number of anatomy-image chains in the challenge workflow.
N_IMAGES = 4

#: The axes along which the atlas is sliced at the end of the pipeline.
AXES = ("x", "y", "z")


def challenge_spec() -> WorkflowSpec:
    """The fMRI workflow: align_warp/reslice per image, softmean, slicer
    and convert per axis."""
    modules: List[str] = []
    edges: List[Tuple[str, str]] = []
    for index in range(1, N_IMAGES + 1):
        align = "align_warp_%d" % index
        reslice = "reslice_%d" % index
        modules.extend([align, reslice])
        edges.append((INPUT, align))        # anatomy image + header
        edges.append((align, reslice))      # warp parameters
        edges.append((reslice, "softmean"))
    modules.append("softmean")
    for axis in AXES:
        slicer = "slicer_%s" % axis
        convert = "convert_%s" % axis
        modules.extend([slicer, convert])
        edges.append(("softmean", slicer))  # atlas image + header
        edges.append((slicer, convert))     # atlas slice
        edges.append((convert, OUTPUT))     # graphic image
    return WorkflowSpec(modules, edges, name="provenance-challenge")


def stage_view(spec: Optional[WorkflowSpec] = None) -> UserView:
    """A user view grouping each per-image chain and each slicing chain.

    The relevant modules are ``softmean`` (the scientific core) plus each
    ``align_warp`` (the registration); reslicing folds into registration
    and each slicer/convert pair folds into one presentation composite.
    This is the view the ZOOM challenge paper advocates: per-stage
    granularity instead of per-invocation.
    """
    spec = spec or challenge_spec()
    composites: Dict[str, List[str]] = {"softmean": ["softmean"]}
    for index in range(1, N_IMAGES + 1):
        composites["registration_%d" % index] = [
            "align_warp_%d" % index, "reslice_%d" % index
        ]
    for axis in AXES:
        composites["graphic_%s" % axis] = [
            "slicer_%s" % axis, "convert_%s" % axis
        ]
    return UserView(spec, composites, name="StageView")


def stage_relevant() -> FrozenSet[str]:
    """A relevant set at the same granularity as :func:`stage_view`.

    Note that ``RelevUserViewBuilder`` run on this set yields a *different*
    good view of the same size (it folds the reslice steps into
    softmean's composite rather than into the registrations): good views
    satisfying Properties 1-3 are not unique, and the paper's architecture
    explicitly supports designer-provided view definitions like
    :func:`stage_view` alongside algorithmically built ones.
    """
    relevant = {"softmean"}
    relevant.update("align_warp_%d" % i for i in range(1, N_IMAGES + 1))
    relevant.update("convert_%s" % axis for axis in AXES)
    return frozenset(relevant)


def challenge_run(spec: Optional[WorkflowSpec] = None) -> WorkflowRun:
    """The challenge's canonical execution with readable data names.

    Data identifiers follow the challenge's artefact names: ``anatomy{i}``
    (image+header pairs are modelled as two objects), ``warp{i}``,
    ``resliced{i}``, ``atlas``, ``slice_{axis}`` and ``graphic_{axis}``.
    """
    spec = spec or challenge_spec()
    run = WorkflowRun(spec, run_id="challenge-run")
    for index in range(1, N_IMAGES + 1):
        align_step = "A%d" % index
        reslice_step = "R%d" % index
        run.add_step(align_step, "align_warp_%d" % index)
        run.add_step(reslice_step, "reslice_%d" % index)
        run.add_edge(INPUT, align_step,
                     ["anatomy%d_img" % index, "anatomy%d_hdr" % index,
                      "reference_img" if index == 1 else "ref_copy_%d" % index])
        run.add_edge(align_step, reslice_step, ["warp%d" % index])
    run.add_step("SM", "softmean")
    for index in range(1, N_IMAGES + 1):
        run.add_edge("R%d" % index, "SM",
                     ["resliced%d_img" % index, "resliced%d_hdr" % index])
    for axis in AXES:
        slicer_step = "SL%s" % axis
        convert_step = "CV%s" % axis
        run.add_step(slicer_step, "slicer_%s" % axis)
        run.add_step(convert_step, "convert_%s" % axis)
        run.add_edge("SM", slicer_step, ["atlas_img", "atlas_hdr"])
        run.add_edge(slicer_step, convert_step, ["slice_%s" % axis])
        run.add_edge(convert_step, OUTPUT, ["graphic_%s" % axis])
    run.validate()
    return run


# ----------------------------------------------------------------------
# The challenge's core queries, phrased against this library's API.
# The challenge defines nine; those below are the ones expressible in a
# pure workflow-provenance model (the others require annotations on data
# contents, which Section VI of the paper scopes out).
# ----------------------------------------------------------------------


def q1_process_that_led_to(composite_run: CompositeRun, data_id: str) -> Set[str]:
    """Challenge Q1: the entire process (steps) that led to a graphic."""
    return deep_provenance(composite_run, data_id).steps()


def q2_inputs_that_led_to(composite_run: CompositeRun, data_id: str) -> Set[str]:
    """Challenge Q2 (restriction): the original inputs behind a graphic."""
    return set(deep_provenance(composite_run, data_id).user_inputs)


def q3_stage_of(composite_run: CompositeRun, data_id: str) -> str:
    """Challenge Q3: the (virtual) step that produced a data object."""
    return composite_run.producer(data_id)


def q4_everything_derived_from(
    composite_run: CompositeRun, data_id: str
) -> Set[str]:
    """Challenge Q4: all data derived from a given anatomy image."""
    result = reverse_provenance(composite_run, data_id)
    return result.data() - {data_id}


def q5_outputs_affected_by(
    composite_run: CompositeRun, data_id: str
) -> Set[str]:
    """Challenge Q5: which final graphics are affected by an input."""
    return set(reverse_provenance(composite_run, data_id).final_outputs)


def q6_common_ancestry(
    composite_run: CompositeRun, first: str, second: str
) -> Set[str]:
    """Challenge Q6: shared provenance of two outputs (common steps)."""
    a = deep_provenance(composite_run, first).steps()
    b = deep_provenance(composite_run, second).steps()
    return a & b
