"""Run generation per the Table II run classes.

A run class prescribes the simulator's parameter ranges plus a cap on the
run's node and edge counts.  Because loop iterations are sampled, a
generated run can overshoot the cap; in that case the generator retries
with a geometrically narrowed loop-iteration range, falling back to
single-iteration loops — so generation always terminates and every
returned run respects its class's size band.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional

from ..core.errors import ExecutionError
from ..core.spec import WorkflowSpec
from ..run.executor import ExecutionParams, SimulationResult, simulate
from .classes import RunClass

#: How many shrink-and-retry rounds before forcing single-iteration loops.
_MAX_ATTEMPTS = 6


def generate_run(
    spec: WorkflowSpec,
    run_class: RunClass,
    rng: random.Random,
    run_id: str = "run1",
) -> SimulationResult:
    """Simulate one run of ``spec`` within the run class's size caps."""
    params = run_class.execution_params()
    for attempt in range(_MAX_ATTEMPTS + 1):
        if attempt == _MAX_ATTEMPTS:
            params = replace(params, loop_iterations_range=(1, 1))
        try:
            result = simulate(spec, params=params, rng=rng, run_id=run_id)
        except ExecutionError:
            params = _narrow_loops(params)
            continue
        if (
            result.run.num_steps() <= run_class.max_nodes
            and result.run.num_edges() <= run_class.max_edges
        ):
            return result
        params = _narrow_loops(params)
    raise ExecutionError(
        "could not fit a run of %r within %s caps (%d nodes / %d edges); "
        "the specification alone may exceed the class size"
        % (spec.name, run_class.name, run_class.max_nodes, run_class.max_edges)
    )


def _narrow_loops(params: ExecutionParams) -> ExecutionParams:
    """Halve the loop-iteration range (never below one iteration)."""
    lo, hi = params.loop_iterations_range
    return replace(
        params, loop_iterations_range=(max(1, lo // 2), max(1, hi // 2))
    )


def generate_runs(
    spec: WorkflowSpec,
    run_class: RunClass,
    count: int,
    rng: random.Random,
    run_id_prefix: Optional[str] = None,
) -> List[SimulationResult]:
    """Simulate a batch of runs of one specification and run class."""
    prefix = run_id_prefix or "%s-%s" % (spec.name, run_class.name)
    return [
        generate_run(spec, run_class, rng, run_id="%s-r%d" % (prefix, index))
        for index in range(1, count + 1)
    ]


def run_statistics(results: List[SimulationResult]) -> Dict[str, float]:
    """Aggregate size statistics of a batch (for the Table II report)."""
    if not results:
        return {}
    totals = {"steps": 0, "edges": 0, "data": 0, "user_inputs": 0, "loops": 0}
    max_steps = 0
    max_edges = 0
    for result in results:
        stats = result.run.stats()
        totals["steps"] += stats["steps"]
        totals["edges"] += stats["edges"]
        totals["data"] += stats["data"]
        totals["user_inputs"] += stats["user_inputs"]
        totals["loops"] += sum(result.iterations.values())
        max_steps = max(max_steps, stats["steps"])
        max_edges = max(max_edges, stats["edges"])
    count = len(results)
    return {
        "runs": count,
        "avg_steps": totals["steps"] / count,
        "avg_edges": totals["edges"] / count,
        "avg_data": totals["data"] / count,
        "avg_user_inputs": totals["user_inputs"] / count,
        "avg_loop_iterations": totals["loops"] / count,
        "max_steps": max_steps,
        "max_edges": max_edges,
    }
