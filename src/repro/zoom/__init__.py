"""ZOOM prototype layer: sessions, rendering, canned queries, access."""

from .access import AccessDenied, AuditRecord, GuardedWarehouse, ViewPolicy
from .canned import (
    data_with_in_provenance,
    depends_on,
    inputs_feeding,
    outputs_depending_on,
    provenance_difference,
    steps_producing,
    suppliers_of,
)
from .dot import composite_run_to_dot, provenance_to_dot, run_to_dot, spec_to_dot
from .report import (
    compress_ids,
    diff_report,
    plan_report,
    provenance_report,
    reverse_report,
)
from .session import RunWatch, Session, WatchUpdate

__all__ = [
    "AccessDenied",
    "AuditRecord",
    "GuardedWarehouse",
    "RunWatch",
    "Session",
    "ViewPolicy",
    "WatchUpdate",
    "composite_run_to_dot",
    "compress_ids",
    "data_with_in_provenance",
    "depends_on",
    "diff_report",
    "inputs_feeding",
    "outputs_depending_on",
    "plan_report",
    "provenance_difference",
    "provenance_report",
    "provenance_to_dot",
    "reverse_report",
    "run_to_dot",
    "spec_to_dot",
    "steps_producing",
    "suppliers_of",
]
