"""Multi-user access control over provenance, enforced through views.

The paper presents composite modules as a mechanism for "abstraction,
privacy, and reuse": a user view does not merely declutter — it *hides*
internal steps and intermediate data.  This module makes the privacy
reading operational: a :class:`ViewPolicy` assigns each user the views
they may query through, and a :class:`GuardedWarehouse` front-end refuses
any query outside the assigned granularity.

The enforcement point is the same machinery the rest of the system uses:
queries run over the composite run of an *assigned* view, so data internal
to its composite executions is unreachable by construction, not by
filtering answers after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import ZoomError
from ..core.view import UserView
from ..provenance.reasoner import ProvenanceReasoner
from ..provenance.result import ProvenanceResult, ReverseProvenanceResult
from ..warehouse.base import ProvenanceWarehouse


class AccessDenied(ZoomError):
    """The user is not entitled to the requested view or data."""


@dataclass
class ViewPolicy:
    """Assignment of users to the view ids they may query through.

    A user may hold several views (e.g. a coarse default plus a finer one
    for a sub-workflow they own); queries name the view explicitly or fall
    back to the user's default (their first grant).
    """

    _grants: Dict[str, List[str]] = field(default_factory=dict)

    def grant(self, user: str, view_id: str) -> None:
        """Allow ``user`` to query through ``view_id``."""
        views = self._grants.setdefault(user, [])
        if view_id not in views:
            views.append(view_id)

    def revoke(self, user: str, view_id: str) -> None:
        """Withdraw a grant (no-op if absent)."""
        views = self._grants.get(user, [])
        if view_id in views:
            views.remove(view_id)

    def views_of(self, user: str) -> List[str]:
        """View ids the user holds, in grant order."""
        return list(self._grants.get(user, []))

    def default_view(self, user: str) -> str:
        """The user's first-granted view."""
        views = self.views_of(user)
        if not views:
            raise AccessDenied("user %r holds no view grants" % user)
        return views[0]

    def check(self, user: str, view_id: str) -> None:
        """Raise :class:`AccessDenied` unless the grant exists."""
        if view_id not in self._grants.get(user, []):
            raise AccessDenied(
                "user %r may not query through view %r" % (user, view_id)
            )


@dataclass(frozen=True)
class AuditRecord:
    """One entry of the guarded warehouse's query audit log."""

    user: str
    view_id: str
    run_id: str
    query: str
    target: str
    tuples: int


class GuardedWarehouse:
    """A policy-enforcing facade over a warehouse and reasoner.

    All provenance queries go through :meth:`deep`, :meth:`immediate` and
    :meth:`reverse`, which (a) verify the user's grant, (b) answer at the
    granted view's granularity — so hidden data raises the same
    :class:`~repro.core.errors.HiddenDataError` it would for any view —
    and (c) append an audit record.
    """

    def __init__(
        self, warehouse: ProvenanceWarehouse, policy: ViewPolicy
    ) -> None:
        self.warehouse = warehouse
        self.policy = policy
        self.reasoner = ProvenanceReasoner(warehouse)
        self._audit: List[AuditRecord] = []

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------

    def _resolve_view(self, user: str, view_id: Optional[str]) -> Tuple[str, UserView]:
        resolved = view_id or self.policy.default_view(user)
        self.policy.check(user, resolved)
        return resolved, self.warehouse.get_view(resolved)

    def deep(
        self, user: str, run_id: str, data_id: str,
        view_id: Optional[str] = None,
    ) -> ProvenanceResult:
        """Deep provenance through one of the user's granted views."""
        resolved, view = self._resolve_view(user, view_id)
        result = self.reasoner.deep(run_id, data_id, view=view)
        self._record(user, resolved, run_id, "deep", data_id,
                     result.num_tuples())
        return result

    def immediate(
        self, user: str, run_id: str, data_id: str,
        view_id: Optional[str] = None,
    ) -> ProvenanceResult:
        """Immediate provenance through a granted view."""
        resolved, view = self._resolve_view(user, view_id)
        result = self.reasoner.immediate(run_id, data_id, view=view)
        self._record(user, resolved, run_id, "immediate", data_id,
                     result.num_tuples())
        return result

    def reverse(
        self, user: str, run_id: str, data_id: str,
        view_id: Optional[str] = None,
    ) -> ReverseProvenanceResult:
        """Forward (derived-from) provenance through a granted view."""
        resolved, view = self._resolve_view(user, view_id)
        result = self.reasoner.reverse(run_id, data_id, view=view)
        self._record(user, resolved, run_id, "reverse", data_id,
                     result.num_tuples())
        return result

    def visible_data(
        self, user: str, run_id: str, view_id: Optional[str] = None
    ) -> Set[str]:
        """The data objects the user's view exposes in a run."""
        _resolved, view = self._resolve_view(user, view_id)
        return self.reasoner.composite_run(run_id, view).visible_data()

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def _record(
        self, user: str, view_id: str, run_id: str,
        query: str, target: str, tuples: int,
    ) -> None:
        self._audit.append(AuditRecord(
            user=user, view_id=view_id, run_id=run_id,
            query=query, target=target, tuples=tuples,
        ))

    def audit_log(self, user: Optional[str] = None) -> List[AuditRecord]:
        """The query audit trail, optionally filtered to one user."""
        if user is None:
            return list(self._audit)
        return [record for record in self._audit if record.user == user]
