"""Canned provenance queries (Section IV, "ongoing work").

The prototype offers form-based queries on top of the core primitives;
these are their programmatic equivalents.  All respect the user view the
caller passes in, and all are answered through a
:class:`~repro.provenance.reasoner.ProvenanceReasoner` so they share its
caches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ..core.view import UserView
from ..provenance.reasoner import ProvenanceReasoner
from ..provenance.result import ProvenanceResult


def depends_on(
    reasoner: ProvenanceReasoner,
    run_id: str,
    target: str,
    source: str,
    view: Optional[UserView] = None,
) -> bool:
    """Whether ``source`` is in the (deep) provenance of ``target``."""
    result = reasoner.deep(run_id, target, view=view)
    return source in result.data()


def data_with_in_provenance(
    reasoner: ProvenanceReasoner,
    run_id: str,
    source: str,
    view: Optional[UserView] = None,
) -> Set[str]:
    """The paper's canned query: data objects whose provenance contains
    ``source``."""
    result = reasoner.reverse(run_id, source, view=view)
    derived = result.data()
    derived.discard(source)
    return derived


def outputs_depending_on(
    reasoner: ProvenanceReasoner,
    run_id: str,
    source: str,
    view: Optional[UserView] = None,
) -> Set[str]:
    """Final outputs of the run that depend on ``source``."""
    result = reasoner.reverse(run_id, source, view=view)
    outputs = set(result.final_outputs)
    if source in reasoner.warehouse.final_outputs(run_id):
        outputs.add(source)
    return outputs


def inputs_feeding(
    reasoner: ProvenanceReasoner,
    run_id: str,
    target: str,
    view: Optional[UserView] = None,
) -> Set[str]:
    """User inputs on which ``target`` transitively depends."""
    return set(reasoner.deep(run_id, target, view=view).user_inputs)


def steps_producing(
    reasoner: ProvenanceReasoner,
    run_id: str,
    target: str,
    view: Optional[UserView] = None,
) -> List[str]:
    """(Virtual) steps in the deep provenance of ``target``, sorted."""
    return sorted(reasoner.deep(run_id, target, view=view).steps())


def suppliers_of(
    reasoner: ProvenanceReasoner,
    run_id: str,
    target: str,
    view: Optional[UserView] = None,
) -> Dict[str, Set[str]]:
    """Who supplied the user inputs behind ``target``, grouped by supplier.

    Uses the warehouse's recorded user-input metadata (Section II: a user
    input's provenance is whatever metadata was recorded — e.g. who input
    the data).
    """
    inputs = reasoner.deep(run_id, target, view=view).user_inputs
    by_supplier: Dict[str, Set[str]] = {}
    for data_id in inputs:
        who = reasoner.warehouse.user_input_who(run_id, data_id)
        by_supplier.setdefault(who, set()).add(data_id)
    return by_supplier


def provenance_difference(
    coarse: ProvenanceResult, fine: ProvenanceResult
) -> Dict[str, FrozenSet[str]]:
    """What a finer view reveals beyond a coarser one for the same target.

    Returns the extra data objects and extra steps the fine answer exposes,
    and those of the coarse answer not literally present in the fine one
    (composite steps are renamed across views, so step sets are compared as
    identifiers, data objects as the stable currency).
    """
    if coarse.target != fine.target:
        raise ValueError(
            "results answer different targets: %r vs %r"
            % (coarse.target, fine.target)
        )
    return {
        "data_revealed": frozenset(fine.data() - coarse.data()),
        "data_hidden": frozenset(coarse.data() - fine.data()),
        "steps_revealed": frozenset(fine.steps() - coarse.steps()),
        "steps_hidden": frozenset(coarse.steps() - fine.steps()),
    }
